"""Neighbor sampling: wide sets (Definition 2) and deep walks (Definition 3).

Both samplers return small dataclasses holding parallel arrays of global node
ids and edge types.  WIDEN's neighbor state mutates *copies* of these during
downsampling; the samplers themselves are pure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.random_walk import random_walk
from repro.obs.tracing import span as trace_span
from repro.utils.rng import SeedLike, new_rng


@dataclass
class WideNeighborSet:
    """Sampled first-order neighborhood W(v_t) of a target node.

    ``nodes[n]`` is the global id of local-index-``n`` neighbor; ``etypes[n]``
    the type of the edge connecting it to the target.  Local indexes are
    implicit array positions (the paper's ``(n, i)`` tuples).
    """

    target: int
    nodes: np.ndarray
    etypes: np.ndarray

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        self.etypes = np.asarray(self.etypes, dtype=np.int64)
        if self.nodes.shape != self.etypes.shape:
            raise ValueError("nodes/etypes length mismatch")

    def __len__(self) -> int:
        return int(self.nodes.shape[0])

    def drop(self, local_index: int) -> "WideNeighborSet":
        """Return a copy without the neighbor at ``local_index`` (Alg. 1 core)."""
        if not 0 <= local_index < len(self):
            raise IndexError(f"local index {local_index} out of range 0..{len(self)-1}")
        keep = np.arange(len(self)) != local_index
        return WideNeighborSet(self.target, self.nodes[keep], self.etypes[keep])


@dataclass
class DeepNeighborSet:
    """A deep random-walk neighbor sequence D(v_t).

    ``nodes[s]`` is the s-th walk node (target excluded); ``etypes[s]`` types
    the edge to its predecessor (the target for ``s == 0``).  ``relays[s]``
    is ``None`` for ordinary edges, or a *relay recipe* — the list of message
    packs absorbed into a contextualized relay edge during pruning (Eq. 8).
    Each recipe entry is a ``(node_id, etype, inner_relays)`` tuple so the
    relay edge can be recomputed from current embeddings every forward pass,
    keeping it trainable.
    """

    target: int
    nodes: np.ndarray
    etypes: np.ndarray
    relays: List[object] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        self.etypes = np.asarray(self.etypes, dtype=np.int64)
        if self.nodes.shape != self.etypes.shape:
            raise ValueError("nodes/etypes length mismatch")
        if not self.relays:
            self.relays = [None] * len(self.nodes)
        if len(self.relays) != len(self.nodes):
            raise ValueError("relays length mismatch")

    def __len__(self) -> int:
        return int(self.nodes.shape[0])


def sample_wide(
    graph: HeteroGraph,
    target: int,
    num_wide: int,
    rng: SeedLike = None,
    unique: bool = False,
) -> WideNeighborSet:
    """Uniformly sample up to ``num_wide`` first-order neighbors of ``target``.

    Sampling is *without replacement* when the degree allows it, and with
    replacement otherwise (the GraphSAGE convention the paper builds on), so
    the returned set always has ``min(num_wide, 1) <= len <= num_wide`` except
    for isolated nodes which yield an empty set.

    With ``unique=True`` a below-cap node contributes each neighbor exactly
    once instead of being oversampled to the cap (``wide_sampling="unique"``
    in :class:`~repro.core.config.WidenConfig`): no duplicated messages, and
    pack lengths track true degrees — on skewed graphs most packs become
    much shorter than the cap, which is the regime the CSR sparse forward
    kernels are built for.
    """
    if num_wide < 1:
        raise ValueError(f"num_wide must be >= 1, got {num_wide}")
    rng = new_rng(rng)
    with trace_span("graph.sample_wide", target=int(target)):
        neighbors, etypes = graph.neighbors(target)
        if neighbors.size == 0:
            return WideNeighborSet(
                target, np.empty(0, np.int64), np.empty(0, np.int64)
            )
        if neighbors.size >= num_wide:
            pick = rng.choice(neighbors.size, size=num_wide, replace=False)
        elif unique:
            pick = np.arange(neighbors.size)
        else:
            pick = rng.choice(neighbors.size, size=num_wide, replace=True)
        return WideNeighborSet(target, neighbors[pick], etypes[pick])


def sample_deep(
    graph: HeteroGraph,
    target: int,
    num_deep: int,
    rng: SeedLike = None,
) -> DeepNeighborSet:
    """Sample one deep neighbor sequence: a random walk of length ``num_deep``."""
    if num_deep < 1:
        raise ValueError(f"num_deep must be >= 1, got {num_deep}")
    with trace_span("graph.sample_deep", target=int(target)):
        nodes, etypes = random_walk(graph, target, num_deep, rng=rng)
        return DeepNeighborSet(target, nodes, etypes)
