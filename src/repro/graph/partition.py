"""Graph partitioning — the reproduction's stand-in for METIS.

The paper partitions the Yelp graph with METIS so that full-graph baselines
(GCN, GAT, GTN, HAN, Node2Vec) can train one subgraph at a time.  We
implement the same role with a two-stage heuristic:

1. **BFS growth**: seed ``k`` parts with high-degree nodes and grow them in
   breadth-first waves, always extending the currently smallest part, which
   yields balanced, locally connected parts.
2. **Boundary refinement**: a Kernighan–Lin-flavoured pass that moves
   boundary nodes to the neighboring part where most of their edges live,
   subject to a balance constraint, reducing edge cut.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.utils.rng import SeedLike, new_rng


def partition_graph(
    graph: HeteroGraph,
    num_parts: int,
    refine_passes: int = 2,
    balance_slack: float = 1.3,
    rng: SeedLike = None,
) -> List[np.ndarray]:
    """Split nodes into ``num_parts`` balanced, low-edge-cut parts.

    Returns a list of node-id arrays covering every node exactly once.
    """
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    if num_parts == 1:
        return [np.arange(graph.num_nodes, dtype=np.int64)]
    if num_parts > graph.num_nodes:
        raise ValueError(
            f"cannot split {graph.num_nodes} nodes into {num_parts} parts"
        )
    rng = new_rng(rng)
    assignment = _bfs_grow(graph, num_parts, rng)
    max_size = int(balance_slack * np.ceil(graph.num_nodes / num_parts))
    for _ in range(refine_passes):
        moved = _refine(graph, assignment, num_parts, max_size)
        if not moved:
            break
    return [np.flatnonzero(assignment == part) for part in range(num_parts)]


def edge_cut(graph: HeteroGraph, parts: List[np.ndarray]) -> int:
    """Number of directed edges crossing part boundaries."""
    assignment = np.empty(graph.num_nodes, dtype=np.int64)
    for part_id, nodes in enumerate(parts):
        assignment[nodes] = part_id
    return int((assignment[graph._src] != assignment[graph.indices]).sum())


def _bfs_grow(graph: HeteroGraph, num_parts: int, rng) -> np.ndarray:
    degrees = graph.degrees()
    # Seed with distinct high-degree nodes, jittered for tie-breaking.
    seeds = np.argsort(-(degrees + rng.random(graph.num_nodes)))[:num_parts]
    assignment = np.full(graph.num_nodes, -1, dtype=np.int64)
    frontiers = [deque([int(seed)]) for seed in seeds]
    sizes = np.zeros(num_parts, dtype=np.int64)
    for part, seed in enumerate(seeds):
        assignment[seed] = part
        sizes[part] = 1
    remaining = graph.num_nodes - num_parts
    while remaining > 0:
        part = int(np.argmin(np.where([len(f) > 0 for f in frontiers], sizes, np.iinfo(np.int64).max)))
        if not frontiers[part]:
            # All frontiers empty but nodes remain (disconnected components):
            # assign an arbitrary unvisited node to the smallest part.
            part = int(np.argmin(sizes))
            unassigned = np.flatnonzero(assignment == -1)
            node = int(unassigned[rng.integers(unassigned.size)])
            assignment[node] = part
            sizes[part] += 1
            frontiers[part].append(node)
            remaining -= 1
            continue
        node = frontiers[part].popleft()
        neighbors, _ = graph.neighbors(node)
        for neighbor in neighbors:
            neighbor = int(neighbor)
            if assignment[neighbor] == -1:
                assignment[neighbor] = part
                sizes[part] += 1
                frontiers[part].append(neighbor)
                remaining -= 1
    return assignment


def _refine(graph: HeteroGraph, assignment: np.ndarray, num_parts: int, max_size: int) -> int:
    sizes = np.bincount(assignment, minlength=num_parts)
    moved = 0
    for node in range(graph.num_nodes):
        neighbors, _ = graph.neighbors(node)
        if neighbors.size == 0:
            continue
        current = assignment[node]
        counts = np.bincount(assignment[neighbors], minlength=num_parts)
        best = int(np.argmax(counts))
        gain = counts[best] - counts[current]
        if best != current and gain > 0 and sizes[best] < max_size and sizes[current] > 1:
            assignment[node] = best
            sizes[current] -= 1
            sizes[best] += 1
            moved += 1
    return moved
