"""The :class:`HeteroGraph` data structure.

A heterogeneous graph (Definition 1 of the paper) with typed nodes and typed
edges.  Adjacency is stored in CSR form for O(1) neighborhood slicing — the
access pattern that dominates neighbor sampling and random walks.  Edge types
are stored aligned with the CSR ``indices`` array so a neighbor lookup returns
``(neighbor_ids, edge_types)`` in one slice.

Alongside the *real* edge types, the graph allocates one **self-loop edge
type per node type** — WIDEN learns a self-loop edge embedding ``e_{t,t}``
between nodes of the same type (Section 3.1), and baselines reuse the same
vocabulary.  ``num_edge_types`` counts real types only;
``num_edge_types_with_loops`` includes the self-loop types.

The graph is *append-only*: the streaming serving path (``repro.serve``)
extends it in place through :meth:`add_nodes` / :meth:`add_edges`, which
keep the type vocabularies fixed (the model's edge-type embedding tables
are sized at training time), bump the monotone :attr:`version` counter and
fire registered mutation hooks — the invalidation signal for anything that
caches per-node derived state (embedding caches, sampled neighbor stores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass
class MutationEvent:
    """What a mutation actually changed, for fine-grained invalidation.

    Mutation hooks receive the graph; the event of the mutation that fired
    them is available as :attr:`HeteroGraph.last_mutation`.  ``kind`` is one
    of:

    - ``"add_nodes"`` — ``nodes`` holds the freshly appended ids.  No
      existing adjacency list changed, so nothing previously cached can be
      stale.
    - ``"add_edges"`` — ``sources`` holds every node whose out-edge list
      grew (for symmetric insertion that is both endpoints).  Anything whose
      sampled neighborhood can reach a changed list within the model's walk
      depth must recompute; everything else stays valid.
    - ``"rewire"`` — a structural rebuild with unknown extent; consumers
      must fall back to full invalidation unless ``sources`` narrows it.
    """

    kind: str
    nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    sources: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))


class HeteroGraph:
    """Typed graph with CSR adjacency; append-only under streaming arrivals.

    Construct via :class:`~repro.graph.builder.GraphBuilder`; the raw
    constructor expects already-validated arrays.

    Parameters
    ----------
    node_types:
        ``(n,)`` int array; ``node_types[i]`` indexes into ``node_type_names``.
    src, dst, edge_types:
        Parallel ``(m,)`` int arrays, one entry per *directed* edge.
        Undirected graphs store both directions.
    node_type_names, edge_type_names:
        Human-readable names; positions define the integer encodings.
    features:
        Optional ``(n, d0)`` float feature matrix.
    labels:
        Optional ``(n,)`` int labels; ``-1`` marks unlabeled nodes.
    num_classes:
        Number of distinct classes among labeled nodes.
    """

    def __init__(
        self,
        node_types: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        edge_types: np.ndarray,
        node_type_names: Sequence[str],
        edge_type_names: Sequence[str],
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        num_classes: int = 0,
    ) -> None:
        self.node_types = np.asarray(node_types, dtype=np.int64)
        self.num_nodes = int(self.node_types.shape[0])
        self.node_type_names = list(node_type_names)
        self.edge_type_names = list(edge_type_names)
        self.num_node_types = len(self.node_type_names)
        self.num_edge_types = len(self.edge_type_names)
        self.features = None if features is None else np.asarray(features, dtype=np.float64)
        self.labels = (
            np.full(self.num_nodes, -1, dtype=np.int64)
            if labels is None
            else np.asarray(labels, dtype=np.int64)
        )
        self.num_classes = int(num_classes)
        self.version = 0
        self.last_mutation: Optional[MutationEvent] = None
        self._mutation_hooks: List[Callable[["HeteroGraph"], None]] = []
        self._rebuild_csr(
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(edge_types, dtype=np.int64),
        )

    def _rebuild_csr(
        self, src: np.ndarray, dst: np.ndarray, edge_types: np.ndarray
    ) -> None:
        """(Re)build the CSR arrays from COO edges; used by ``__init__`` and
        by the streaming mutation path."""
        self.num_edges = int(src.shape[0])
        # Build CSR: sort edges by source, then cumulative counts.
        order = np.argsort(src, kind="stable")
        sorted_src = src[order]
        self.indices = dst[order]
        self.edge_type_of = edge_types[order]
        counts = np.bincount(sorted_src, minlength=self.num_nodes)
        self.indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        # Keep COO around for adjacency-matrix construction.
        self._src = sorted_src

    # ------------------------------------------------------------------
    # Self-loop edge-type vocabulary (one per node type)
    # ------------------------------------------------------------------

    @property
    def num_edge_types_with_loops(self) -> int:
        """Real edge types plus one self-loop type per node type."""
        return self.num_edge_types + self.num_node_types

    def self_loop_type(self, node: int) -> int:
        """Edge-type id of the self-loop for ``node``'s node type."""
        return self.num_edge_types + int(self.node_types[node])

    def self_loop_types(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`self_loop_type`."""
        return self.num_edge_types + self.node_types[np.asarray(nodes)]

    # ------------------------------------------------------------------
    # Streaming mutation (serving path)
    # ------------------------------------------------------------------

    def add_mutation_hook(
        self, hook: Callable[["HeteroGraph"], None]
    ) -> Callable[["HeteroGraph"], None]:
        """Register ``hook(graph)`` to fire after every mutation.

        Hooks run after :attr:`version` is bumped, so they observe the new
        version.  Returns ``hook`` so callers can keep a handle for
        :meth:`remove_mutation_hook`.
        """
        self._mutation_hooks.append(hook)
        return hook

    def remove_mutation_hook(self, hook: Callable[["HeteroGraph"], None]) -> None:
        self._mutation_hooks.remove(hook)

    def _fire_mutation(self, event: Optional[MutationEvent] = None) -> None:
        self.version += 1
        self.last_mutation = event
        for hook in list(self._mutation_hooks):
            hook(self)

    def add_nodes(
        self,
        type_name: str,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Append ``count`` nodes of an *existing* type; return their new ids.

        The node-type vocabulary is fixed after construction — WIDEN's edge
        embeddings (including the per-node-type self-loop types) are sized at
        training time, so a brand-new type could not be embedded anyway.
        ``features`` is required when the graph carries features; ``labels``
        defaults to unlabeled (``-1``) — arriving production nodes have no
        ground truth.
        """
        if type_name not in self.node_type_names:
            raise ValueError(
                f"unknown node type {type_name!r}; streaming arrivals must "
                f"use one of {self.node_type_names} (the model's type "
                "vocabulary is fixed at training time)"
            )
        type_id = self.node_type_names.index(type_name)
        if features is not None:
            features = np.atleast_2d(np.asarray(features, dtype=np.float64))
            if count is None:
                count = features.shape[0]
            elif count != features.shape[0]:
                raise ValueError(
                    f"count ({count}) != feature rows ({features.shape[0]})"
                )
        elif count is None:
            count = 1
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if self.features is not None:
            if features is None:
                raise ValueError("graph has features; arriving nodes need them")
            if features.shape[1] != self.features.shape[1]:
                raise ValueError(
                    f"feature dim {features.shape[1]} != graph's "
                    f"{self.features.shape[1]}"
                )
        if labels is None:
            labels = np.full(count, -1, dtype=np.int64)
        else:
            labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
            if labels.shape != (count,):
                raise ValueError(f"labels shape {labels.shape} != ({count},)")
            if labels.max(initial=-1) >= self.num_classes:
                raise ValueError(
                    f"label {labels.max()} out of range for "
                    f"{self.num_classes} classes"
                )
        start = self.num_nodes
        self.node_types = np.concatenate(
            [self.node_types, np.full(count, type_id, dtype=np.int64)]
        )
        self.num_nodes += count
        if self.features is not None:
            self.features = np.concatenate([self.features, features])
        self.labels = np.concatenate([self.labels, labels])
        # New nodes start isolated: extend indptr with the terminal offset.
        self.indptr = np.concatenate(
            [self.indptr, np.full(count, self.indptr[-1], dtype=np.int64)]
        )
        new_ids = np.arange(start, start + count, dtype=np.int64)
        self._fire_mutation(MutationEvent(kind="add_nodes", nodes=new_ids))
        return new_ids

    def add_edges(
        self,
        edge_type: str,
        src: np.ndarray,
        dst: np.ndarray,
        symmetric: bool = True,
    ) -> None:
        """Append edges of an *existing* type (same contract as the builder:
        endpoints must exist, explicit self-loops are rejected, ``symmetric``
        also stores the reverse direction)."""
        if edge_type not in self.edge_type_names:
            raise ValueError(
                f"unknown edge type {edge_type!r}; streaming arrivals must "
                f"use one of {self.edge_type_names}"
            )
        etype_id = self.edge_type_names.index(edge_type)
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
        if src.shape != dst.shape:
            raise ValueError(f"src/dst shapes differ: {src.shape} vs {dst.shape}")
        if src.size == 0:
            return
        if src.min() < 0 or dst.min() < 0 or max(src.max(), dst.max()) >= self.num_nodes:
            raise IndexError(f"edge endpoints out of range [0, {self.num_nodes})")
        if np.any(src == dst):
            raise ValueError("explicit self-loop edges are not allowed")
        if symmetric:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        all_src = np.concatenate([self._src, src])
        all_dst = np.concatenate([self.indices, dst])
        all_etype = np.concatenate(
            [self.edge_type_of, np.full(src.shape, etype_id, dtype=np.int64)]
        )
        self._rebuild_csr(all_src, all_dst, all_etype)
        self._fire_mutation(
            MutationEvent(kind="add_edges", sources=np.unique(src))
        )

    def replace_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        edge_types: np.ndarray,
        changed_sources: Optional[np.ndarray] = None,
    ) -> None:
        """Swap the entire edge set in place (sharded-serving halo repair).

        Unlike :meth:`add_edges` this may rewrite any adjacency list, so it
        fires a ``"rewire"`` mutation event.  ``changed_sources`` — the node
        ids whose out-edge lists actually differ from before — lets
        fine-grained consumers invalidate only the affected reach; when
        omitted, consumers must assume everything changed.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        edge_types = np.asarray(edge_types, dtype=np.int64)
        if not (src.shape == dst.shape == edge_types.shape):
            raise ValueError("src/dst/edge_types shapes differ")
        if src.size and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= self.num_nodes
        ):
            raise IndexError(f"edge endpoints out of range [0, {self.num_nodes})")
        self._rebuild_csr(src, dst, edge_types)
        event = MutationEvent(kind="rewire")
        if changed_sources is not None:
            event.sources = np.unique(np.asarray(changed_sources, dtype=np.int64))
        self._fire_mutation(event)

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------

    def neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, edge_types)`` of ``node``'s out-edges."""
        start, stop = self.indptr[node], self.indptr[node + 1]
        return self.indices[start:stop], self.edge_type_of[start:stop]

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.diff(self.indptr)

    def nodes_of_type(self, type_name: str) -> np.ndarray:
        """All node ids whose type is ``type_name``."""
        type_id = self.node_type_names.index(type_name)
        return np.flatnonzero(self.node_types == type_id)

    def edge_type_id(self, type_name: str) -> int:
        return self.edge_type_names.index(type_name)

    def labeled_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.labels >= 0)

    # ------------------------------------------------------------------
    # Matrix views (baselines)
    # ------------------------------------------------------------------

    def adjacency(
        self, edge_type: Optional[int] = None, add_self_loops: bool = False
    ) -> sp.csr_matrix:
        """Sparse adjacency, optionally restricted to one edge type.

        ``add_self_loops`` adds the identity (GCN's ``A + I``).
        """
        if edge_type is None:
            mask = slice(None)
        else:
            mask = self.edge_type_of == edge_type
        src = self._src[mask]
        dst = self.indices[mask]
        data = np.ones(len(src))
        adj = sp.csr_matrix(
            (data, (src, dst)), shape=(self.num_nodes, self.num_nodes)
        )
        # Duplicate (parallel) edges collapse to weight >= 1; clip to binary.
        adj.data = np.minimum(adj.data, 1.0)
        if add_self_loops:
            adj = adj + sp.eye(self.num_nodes, format="csr")
        return adj

    def normalized_adjacency(self, add_self_loops: bool = True) -> sp.csr_matrix:
        """Symmetric GCN normalization ``D^-1/2 (A + I) D^-1/2``."""
        adj = self.adjacency(add_self_loops=add_self_loops)
        degree = np.asarray(adj.sum(axis=1)).reshape(-1)
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
        d_mat = sp.diags(inv_sqrt)
        return (d_mat @ adj @ d_mat).tocsr()

    # ------------------------------------------------------------------
    # Subgraphs (inductive protocol, partition training, scalability sweep)
    # ------------------------------------------------------------------

    def subgraph(self, keep: np.ndarray) -> Tuple["HeteroGraph", np.ndarray]:
        """Induced subgraph on node set ``keep``.

        Returns ``(subgraph, mapping)`` where ``mapping[new_id] == old_id``.
        Features and labels are carried over; edges with either endpoint
        outside ``keep`` are dropped.
        """
        keep = np.unique(np.asarray(keep, dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_nodes):
            raise IndexError("subgraph node ids out of range")
        new_id = np.full(self.num_nodes, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size)
        edge_keep = (new_id[self._src] >= 0) & (new_id[self.indices] >= 0)
        sub = HeteroGraph(
            node_types=self.node_types[keep],
            src=new_id[self._src[edge_keep]],
            dst=new_id[self.indices[edge_keep]],
            edge_types=self.edge_type_of[edge_keep],
            node_type_names=self.node_type_names,
            edge_type_names=self.edge_type_names,
            features=None if self.features is None else self.features[keep],
            labels=self.labels[keep],
            num_classes=self.num_classes,
        )
        return sub, keep

    def remove_nodes(self, drop: np.ndarray) -> Tuple["HeteroGraph", np.ndarray]:
        """Complement of :meth:`subgraph`: drop ``drop``, keep the rest."""
        mask = np.ones(self.num_nodes, dtype=bool)
        mask[np.asarray(drop, dtype=np.int64)] = False
        return self.subgraph(np.flatnonzero(mask))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> Dict[str, object]:
        """Dataset statistics in the shape of the paper's Table 1."""
        return {
            "num_nodes": self.num_nodes,
            "num_node_types": self.num_node_types,
            "num_edges": self.num_edges,
            "num_edge_types": self.num_edge_types,
            "num_features": 0 if self.features is None else self.features.shape[1],
            "num_classes": self.num_classes,
            "nodes_per_type": {
                name: int((self.node_types == i).sum())
                for i, name in enumerate(self.node_type_names)
            },
            "edges_per_type": {
                name: int((self.edge_type_of == i).sum())
                for i, name in enumerate(self.edge_type_names)
            },
        }

    def to_networkx(self):
        """Export to a ``networkx.MultiDiGraph`` (testing/visualization aid)."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for node in range(self.num_nodes):
            graph.add_node(node, node_type=self.node_type_names[self.node_types[node]])
        for node in range(self.num_nodes):
            neighbors, etypes = self.neighbors(node)
            for neighbor, etype in zip(neighbors, etypes):
                graph.add_edge(node, int(neighbor), edge_type=self.edge_type_names[etype])
        return graph

    def __repr__(self) -> str:
        return (
            f"HeteroGraph(nodes={self.num_nodes} ({self.num_node_types} types), "
            f"edges={self.num_edges} ({self.num_edge_types} types), "
            f"classes={self.num_classes})"
        )
