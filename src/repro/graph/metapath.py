"""Meta-path utilities for the HAN and GTN baselines.

A meta path is a sequence of edge types, e.g. ``("paper-author",
"paper-author")`` realizes author–paper–author (APA) when traversed
symmetrically.  HAN needs, for each meta path, the *meta-path-based neighbor
graph* — which node pairs are connected by at least one path instance.  GTN
learns a soft selection over edge types and *composes* the selected
adjacencies by sparse multiplication; :func:`compose_adjacency` is that
product for a concrete selection.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.hetero_graph import HeteroGraph


def metapath_adjacency(
    graph: HeteroGraph,
    edge_types: Sequence[str],
    binary: bool = True,
) -> sp.csr_matrix:
    """Adjacency of the meta-path-based neighbor graph.

    ``edge_types`` names the edge-type sequence of the path.  The result's
    ``(i, j)`` entry counts path instances from ``i`` to ``j`` (or is clipped
    to 1 when ``binary``).  Diagonal entries (closed paths back to the start)
    are kept — HAN treats each node as its own meta-path neighbor.
    """
    if not edge_types:
        raise ValueError("meta path needs at least one edge type")
    product = None
    for name in edge_types:
        adj = graph.adjacency(edge_type=graph.edge_type_id(name))
        product = adj if product is None else (product @ adj).tocsr()
    if binary:
        product = product.copy()
        product.data = np.ones_like(product.data)
    return product.tocsr()


def metapath_neighbors(
    graph: HeteroGraph, edge_types: Sequence[str], node: int
) -> np.ndarray:
    """Node ids reachable from ``node`` along the meta path."""
    adj = metapath_adjacency(graph, edge_types)
    start, stop = adj.indptr[node], adj.indptr[node + 1]
    return adj.indices[start:stop].astype(np.int64)


def compose_adjacency(
    adjacencies: Sequence[sp.csr_matrix],
    weights_per_hop: Sequence[np.ndarray],
) -> sp.csr_matrix:
    """GTN-style soft meta-path adjacency.

    Each hop mixes the per-edge-type adjacencies with a convex weight vector
    (softmaxed selection in the real model), then consecutive hops are
    matrix-multiplied: ``A_path = (Σ_r w1_r A_r) (Σ_r w2_r A_r) …``.
    """
    if not weights_per_hop:
        raise ValueError("need at least one hop")
    product = None
    for weights in weights_per_hop:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != len(adjacencies):
            raise ValueError(
                f"{len(weights)} weights for {len(adjacencies)} adjacencies"
            )
        mixed = None
        for weight, adj in zip(weights, adjacencies):
            term = adj.multiply(weight)
            mixed = term if mixed is None else mixed + term
        mixed = mixed.tocsr()
        product = mixed if product is None else (product @ mixed).tocsr()
    return product


def row_normalize(adj: sp.csr_matrix) -> sp.csr_matrix:
    """``D^-1 A`` row normalization used on composed meta-path graphs."""
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv = np.where(degree > 0, 1.0 / np.maximum(degree, 1e-12), 0.0)
    return (sp.diags(inv) @ adj).tocsr()
