"""k-hop reachability helpers for halo replication and cache invalidation.

WIDEN's serving path is local by construction: embedding a target samples a
wide (1-hop) neighbor set and Φ random walks of length ``num_deep``, so the
computation only ever *queries the adjacency list* of nodes within
``num_deep - 1`` out-hops of the target and only ever *reads the features*
of nodes within ``num_deep`` hops.  Two consequences, both computed here
with vectorized multi-source BFS:

- **Halo replication** (``repro.cluster``): a shard that materializes every
  out-edge of nodes within ``reach - 1`` hops of its owned set can serve any
  owned node bit-identically to a whole-graph server — the sampled
  neighborhoods are shard-local.  :func:`k_hop_out` computes that reach.
- **Fine-grained invalidation** (``repro.serve``): an ``add_edges`` mutation
  changes the adjacency lists of its endpoints only; the embeddings that can
  observe the change are exactly the nodes within ``reach - 1`` *in*-hops of
  a changed list.  :func:`mutation_frontier` computes that set so the rest
  of the embedding cache stays warm.
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero_graph import HeteroGraph


def _as_seed_array(seeds) -> np.ndarray:
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    return seeds


def k_hop_out(graph: HeteroGraph, seeds, depth: int) -> np.ndarray:
    """Nodes reachable from ``seeds`` within ``depth`` out-hops (inclusive).

    Returns a sorted id array that always contains ``seeds`` themselves
    (depth 0).  Runs one vectorized frontier expansion per level — no
    per-node python loops — so it is cheap enough to recompute per mutation.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    seeds = _as_seed_array(seeds)
    if seeds.size and (seeds[0] < 0 or seeds[-1] >= graph.num_nodes):
        raise IndexError("seed ids out of range")
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[seeds] = True
    frontier = seeds
    for _ in range(depth):
        if frontier.size == 0:
            break
        starts = graph.indptr[frontier]
        stops = graph.indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather the concatenation of every frontier node's neighbor slice.
        offsets = np.repeat(starts, counts) + (
            np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        )
        neighbors = graph.indices[offsets]
        fresh = neighbors[~visited[neighbors]]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        visited[frontier] = True
    return np.flatnonzero(visited)


def k_hop_in(graph: HeteroGraph, seeds, depth: int) -> np.ndarray:
    """Nodes that can *reach* ``seeds`` within ``depth`` out-hops (inclusive).

    The reverse of :func:`k_hop_out`: BFS along in-edges.  Each level is one
    ``isin`` scan over the edge array — O(E) per level, no reverse CSR kept.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    seeds = _as_seed_array(seeds)
    if seeds.size and (seeds[0] < 0 or seeds[-1] >= graph.num_nodes):
        raise IndexError("seed ids out of range")
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[seeds] = True
    frontier_mask = np.zeros(graph.num_nodes, dtype=bool)
    frontier_mask[seeds] = True
    for _ in range(depth):
        if not frontier_mask.any():
            break
        into_frontier = frontier_mask[graph.indices]
        predecessors = graph._src[into_frontier]
        frontier_mask = np.zeros(graph.num_nodes, dtype=bool)
        frontier_mask[predecessors] = True
        frontier_mask &= ~visited
        visited |= frontier_mask
    return np.flatnonzero(visited)


def mutation_frontier(graph: HeteroGraph, changed_sources, reach: int) -> np.ndarray:
    """Node ids whose served embedding may observe changed adjacency lists.

    ``changed_sources`` are the nodes whose out-edge lists were mutated;
    ``reach`` is the model's sampling reach (walk length): a target queries
    adjacency lists up to ``reach - 1`` hops out, so the affected set is
    everything within ``reach - 1`` in-hops of a changed list.  Computed on
    the *post-mutation* graph, whose edge set is a superset of the
    pre-mutation one, so the answer over-approximates safely.
    """
    if reach < 1:
        raise ValueError(f"reach must be >= 1, got {reach}")
    return k_hop_in(graph, changed_sources, reach - 1)
