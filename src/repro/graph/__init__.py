"""Heterogeneous graph substrate.

Provides the typed-graph data structure (Definition 1 of the paper), a
validating builder, neighbor sampling (wide sets, Definition 2; deep
random-walk sequences, Definition 3), subgraph extraction for the inductive
protocol, a graph partitioner (the paper's METIS role), and meta-path
utilities for the HAN/GTN baselines.
"""

from repro.graph.hetero_graph import HeteroGraph, MutationEvent
from repro.graph.builder import GraphBuilder
from repro.graph.halo import k_hop_in, k_hop_out, mutation_frontier
from repro.graph.random_walk import random_walk, node2vec_walk
from repro.graph.sampling import (
    DeepNeighborSet,
    WideNeighborSet,
    sample_deep,
    sample_wide,
)
from repro.graph.partition import partition_graph, edge_cut
from repro.graph.metapath import (
    compose_adjacency,
    metapath_adjacency,
    metapath_neighbors,
)

__all__ = [
    "HeteroGraph",
    "MutationEvent",
    "GraphBuilder",
    "k_hop_in",
    "k_hop_out",
    "mutation_frontier",
    "random_walk",
    "node2vec_walk",
    "WideNeighborSet",
    "DeepNeighborSet",
    "sample_wide",
    "sample_deep",
    "partition_graph",
    "edge_cut",
    "compose_adjacency",
    "metapath_adjacency",
    "metapath_neighbors",
]
