"""A validating, incremental builder for :class:`HeteroGraph`.

Usage::

    builder = GraphBuilder()
    papers = builder.add_nodes("paper", 100)
    authors = builder.add_nodes("author", 40)
    builder.add_edge_type("paper-author")
    builder.add_edges("paper-author", papers[:40], authors, symmetric=True)
    graph = builder.finalize(features=x, labels=y, num_classes=3)

``add_nodes`` returns the global id range allocated to the new nodes, so
dataset generators can wire edges without tracking offsets themselves.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.hetero_graph import HeteroGraph


class GraphBuilder:
    """Accumulates typed nodes and edges, validates, and emits a graph."""

    def __init__(self) -> None:
        self._node_type_names: List[str] = []
        self._node_type_of_range: List[int] = []  # parallel to ranges
        self._range_starts: List[int] = []
        self._range_sizes: List[int] = []
        self._num_nodes = 0
        self._edge_type_names: List[str] = []
        self._src: List[np.ndarray] = []
        self._dst: List[np.ndarray] = []
        self._etype: List[np.ndarray] = []

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def add_nodes(self, type_name: str, count: int) -> np.ndarray:
        """Allocate ``count`` nodes of ``type_name``; return their global ids."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if type_name not in self._node_type_names:
            self._node_type_names.append(type_name)
        type_id = self._node_type_names.index(type_name)
        start = self._num_nodes
        self._range_starts.append(start)
        self._range_sizes.append(count)
        self._node_type_of_range.append(type_id)
        self._num_nodes += count
        return np.arange(start, start + count, dtype=np.int64)

    def add_edge_type(self, type_name: str) -> int:
        """Register an edge type; returns its id.  Idempotent."""
        if type_name not in self._edge_type_names:
            self._edge_type_names.append(type_name)
        return self._edge_type_names.index(type_name)

    def add_edges(
        self,
        edge_type: str,
        src: np.ndarray,
        dst: np.ndarray,
        symmetric: bool = True,
    ) -> None:
        """Add edges of ``edge_type``; ``symmetric`` also stores the reverse.

        All node ids must already be allocated.  Self-loop edges are rejected
        — WIDEN models self-loops through dedicated per-node-type embeddings,
        never as explicit graph edges.
        """
        etype_id = self.add_edge_type(edge_type)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError(f"src/dst shapes differ: {src.shape} vs {dst.shape}")
        if src.size == 0:
            return
        if src.min() < 0 or dst.min() < 0 or max(src.max(), dst.max()) >= self._num_nodes:
            raise IndexError(
                f"edge endpoints out of range [0, {self._num_nodes})"
            )
        if np.any(src == dst):
            raise ValueError("explicit self-loop edges are not allowed")
        self._src.append(src)
        self._dst.append(dst)
        self._etype.append(np.full(src.shape, etype_id, dtype=np.int64))
        if symmetric:
            self._src.append(dst)
            self._dst.append(src)
            self._etype.append(np.full(src.shape, etype_id, dtype=np.int64))

    def finalize(
        self,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        num_classes: int = 0,
    ) -> HeteroGraph:
        """Validate accumulated state and construct the graph."""
        if self._num_nodes == 0:
            raise ValueError("graph has no nodes")
        node_types = np.empty(self._num_nodes, dtype=np.int64)
        for start, size, type_id in zip(
            self._range_starts, self._range_sizes, self._node_type_of_range
        ):
            node_types[start : start + size] = type_id
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.shape[0] != self._num_nodes:
                raise ValueError(
                    f"features rows ({features.shape[0]}) != nodes ({self._num_nodes})"
                )
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (self._num_nodes,):
                raise ValueError(
                    f"labels shape {labels.shape} != ({self._num_nodes},)"
                )
            observed = labels[labels >= 0]
            if observed.size and num_classes <= observed.max():
                raise ValueError(
                    f"num_classes={num_classes} too small for max label {observed.max()}"
                )
        src = np.concatenate(self._src) if self._src else np.empty(0, dtype=np.int64)
        dst = np.concatenate(self._dst) if self._dst else np.empty(0, dtype=np.int64)
        etype = np.concatenate(self._etype) if self._etype else np.empty(0, dtype=np.int64)
        return HeteroGraph(
            node_types=node_types,
            src=src,
            dst=dst,
            edge_types=etype,
            node_type_names=self._node_type_names,
            edge_type_names=self._edge_type_names,
            features=features,
            labels=labels,
            num_classes=num_classes,
        )
