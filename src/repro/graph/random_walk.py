"""Random walks over heterogeneous graphs.

Two walk flavours:

- :func:`random_walk` — uniform walks that also record the edge type taken at
  each step.  This is the walk underlying WIDEN's deep neighbor sets
  (Definition 3): each position carries the edge linking it to its
  predecessor, which message packaging (Eq. 2) consumes.
- :func:`node2vec_walk` — second-order biased walks (return parameter ``p``,
  in-out parameter ``q``) for the Node2Vec baseline.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.obs.tracing import span as trace_span
from repro.utils.rng import SeedLike, new_rng


def random_walk(
    graph: HeteroGraph,
    start: int,
    length: int,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform random walk of ``length`` steps from ``start``.

    Returns ``(nodes, edge_types)`` — both of length <= ``length`` (shorter
    only when the walk hits a node with no outgoing edges).  ``nodes``
    excludes ``start`` itself; ``edge_types[s]`` is the type of the edge
    between ``nodes[s]`` and its predecessor (``start`` for ``s == 0``),
    exactly the ``e_{s,s-1}`` of Eq. 2.
    """
    rng = new_rng(rng)
    with trace_span("graph.random_walk", start=int(start), length=int(length)):
        nodes: List[int] = []
        etypes: List[int] = []
        current = start
        for _ in range(length):
            neighbors, edge_types = graph.neighbors(current)
            if neighbors.size == 0:
                break
            pick = rng.integers(neighbors.size)
            current = int(neighbors[pick])
            nodes.append(current)
            etypes.append(int(edge_types[pick]))
        return np.asarray(nodes, dtype=np.int64), np.asarray(etypes, dtype=np.int64)


def node2vec_walk(
    graph: HeteroGraph,
    start: int,
    length: int,
    p: float = 1.0,
    q: float = 1.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Second-order biased walk from Grover & Leskovec (2016).

    Transition weights relative to the previous node ``t``:
    ``1/p`` to return to ``t``, ``1`` to a common neighbor of ``t``,
    ``1/q`` to move farther away.  Returns the node sequence including
    ``start``.
    """
    if p <= 0 or q <= 0:
        raise ValueError(f"p and q must be positive, got p={p}, q={q}")
    rng = new_rng(rng)
    walk = [start]
    previous = -1
    for _ in range(length):
        current = walk[-1]
        neighbors, _ = graph.neighbors(current)
        if neighbors.size == 0:
            break
        if previous < 0:
            pick = int(neighbors[rng.integers(neighbors.size)])
        else:
            prev_neighbors = set(graph.neighbors(previous)[0].tolist())
            weights = np.empty(neighbors.size)
            for i, candidate in enumerate(neighbors):
                if candidate == previous:
                    weights[i] = 1.0 / p
                elif int(candidate) in prev_neighbors:
                    weights[i] = 1.0
                else:
                    weights[i] = 1.0 / q
            weights /= weights.sum()
            pick = int(neighbors[rng.choice(neighbors.size, p=weights)])
        previous = current
        walk.append(pick)
    return np.asarray(walk, dtype=np.int64)
