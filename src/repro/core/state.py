"""Per-target-node neighbor state.

Algorithm 3 samples each node's wide set and Φ deep sequences **once** at
initialization (line 3) and then only ever *downsamples* them.  The trainer
therefore keeps persistent state per target node: the current neighbor sets
plus the attention distributions of the previous epoch, which the
KL-divergence trigger (Eq. 9) compares against.

A *signature* accompanies every stored distribution: KL is only meaningful
when the neighbor set is unchanged between epochs ("otherwise +∞" in Eq. 9),
so a set mutation invalidates the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph import HeteroGraph, sample_deep, sample_wide
from repro.graph.sampling import DeepNeighborSet, WideNeighborSet
from repro.utils.rng import SeedLike, new_rng


@dataclass
class NeighborState:
    """Wide + deep neighbor sets of one target node, plus trigger memory."""

    wide: WideNeighborSet
    deep: List[DeepNeighborSet]
    prev_wide_attention: Optional[np.ndarray] = None
    prev_wide_signature: Optional[tuple] = None
    prev_deep_attention: List[Optional[np.ndarray]] = field(default_factory=list)
    prev_deep_signature: List[Optional[tuple]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.prev_deep_attention:
            self.prev_deep_attention = [None] * len(self.deep)
        if not self.prev_deep_signature:
            self.prev_deep_signature = [None] * len(self.deep)

    def wide_signature(self) -> tuple:
        return tuple(self.wide.nodes.tolist())

    def deep_signature(self, phi: int) -> tuple:
        deep = self.deep[phi]
        relay_marks = tuple(relay is not None for relay in deep.relays)
        return tuple(deep.nodes.tolist()) + relay_marks


class NeighborStateStore:
    """Lazily samples and caches :class:`NeighborState` per node id."""

    def __init__(
        self,
        graph: HeteroGraph,
        num_wide: int,
        num_deep: int,
        num_deep_walks: int,
        rng: SeedLike = None,
        wide_sampling: str = "replace",
        sample_seeding: str = "stream",
    ) -> None:
        if wide_sampling not in ("replace", "unique"):
            raise ValueError(f"unknown wide_sampling {wide_sampling!r}")
        if sample_seeding not in ("stream", "per_node"):
            raise ValueError(f"unknown sample_seeding {sample_seeding!r}")
        self.graph = graph
        self.num_wide = num_wide
        self.num_deep = num_deep
        self.num_deep_walks = num_deep_walks
        self.wide_sampling = wide_sampling
        self.sample_seeding = sample_seeding
        self._rng = new_rng(rng)
        # Per-node seeding: one base seed drawn from the stream rng at
        # construction, then every node samples from its own
        # ``default_rng((base_seed, node))`` — the initial sets become a
        # pure function of the node id, independent of first-touch order.
        # That is what lets a partition-local shard draw bit-identical
        # sets to a whole-graph trainer (the shard graph's adjacency lists
        # are verbatim within its closure; see repro.cluster.planner).
        self._base_seed: Optional[int] = None
        if sample_seeding == "per_node":
            self._base_seed = int(self._rng.integers(2**63 - 1))
        self._states: Dict[int, NeighborState] = {}

    def get(self, node: int) -> NeighborState:
        node = int(node)
        state = self._states.get(node)
        if state is None:
            state = self.sample_fresh(node)
            self._states[node] = state
        return state

    def sample_fresh(self, node: int) -> NeighborState:
        """Sample wide + Φ deep sets for ``node`` (no caching)."""
        rng = self._rng
        if self._base_seed is not None:
            rng = np.random.default_rng((self._base_seed, int(node)))
        wide = sample_wide(
            self.graph, node, self.num_wide, rng=rng,
            unique=self.wide_sampling == "unique",
        )
        deep = [
            sample_deep(self.graph, node, self.num_deep, rng=rng)
            for _ in range(self.num_deep_walks)
        ]
        return NeighborState(wide=wide, deep=deep)

    def rng_state(self) -> dict:
        """Serializable snapshot of the sampling rng.

        The historical (stream-seeded) shape is the raw bit-generator state
        dict, kept as-is so existing checkpoints round-trip unchanged;
        per-node seeding wraps it to carry the base seed too.
        """
        if self._base_seed is None:
            return self._rng.bit_generator.state
        return {
            "stream": self._rng.bit_generator.state,
            "base_seed": int(self._base_seed),
        }

    def load_rng_state(self, state: dict) -> None:
        if "stream" in state and "bit_generator" not in state:
            self._rng.bit_generator.state = state["stream"]
            self._base_seed = int(state["base_seed"])
        else:
            self._rng.bit_generator.state = state

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, node: int) -> bool:
        return int(node) in self._states
