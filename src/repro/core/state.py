"""Per-target-node neighbor state.

Algorithm 3 samples each node's wide set and Φ deep sequences **once** at
initialization (line 3) and then only ever *downsamples* them.  The trainer
therefore keeps persistent state per target node: the current neighbor sets
plus the attention distributions of the previous epoch, which the
KL-divergence trigger (Eq. 9) compares against.

A *signature* accompanies every stored distribution: KL is only meaningful
when the neighbor set is unchanged between epochs ("otherwise +∞" in Eq. 9),
so a set mutation invalidates the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph import HeteroGraph, sample_deep, sample_wide
from repro.graph.sampling import DeepNeighborSet, WideNeighborSet
from repro.utils.rng import SeedLike, new_rng


@dataclass
class NeighborState:
    """Wide + deep neighbor sets of one target node, plus trigger memory."""

    wide: WideNeighborSet
    deep: List[DeepNeighborSet]
    prev_wide_attention: Optional[np.ndarray] = None
    prev_wide_signature: Optional[tuple] = None
    prev_deep_attention: List[Optional[np.ndarray]] = field(default_factory=list)
    prev_deep_signature: List[Optional[tuple]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.prev_deep_attention:
            self.prev_deep_attention = [None] * len(self.deep)
        if not self.prev_deep_signature:
            self.prev_deep_signature = [None] * len(self.deep)

    def wide_signature(self) -> tuple:
        return tuple(self.wide.nodes.tolist())

    def deep_signature(self, phi: int) -> tuple:
        deep = self.deep[phi]
        relay_marks = tuple(relay is not None for relay in deep.relays)
        return tuple(deep.nodes.tolist()) + relay_marks


class NeighborStateStore:
    """Lazily samples and caches :class:`NeighborState` per node id."""

    def __init__(
        self,
        graph: HeteroGraph,
        num_wide: int,
        num_deep: int,
        num_deep_walks: int,
        rng: SeedLike = None,
        wide_sampling: str = "replace",
    ) -> None:
        if wide_sampling not in ("replace", "unique"):
            raise ValueError(f"unknown wide_sampling {wide_sampling!r}")
        self.graph = graph
        self.num_wide = num_wide
        self.num_deep = num_deep
        self.num_deep_walks = num_deep_walks
        self.wide_sampling = wide_sampling
        self._rng = new_rng(rng)
        self._states: Dict[int, NeighborState] = {}

    def get(self, node: int) -> NeighborState:
        node = int(node)
        state = self._states.get(node)
        if state is None:
            state = self.sample_fresh(node)
            self._states[node] = state
        return state

    def sample_fresh(self, node: int) -> NeighborState:
        """Sample wide + Φ deep sets for ``node`` (no caching)."""
        wide = sample_wide(
            self.graph, node, self.num_wide, rng=self._rng,
            unique=self.wide_sampling == "unique",
        )
        deep = [
            sample_deep(self.graph, node, self.num_deep, rng=self._rng)
            for _ in range(self.num_deep_walks)
        ]
        return NeighborState(wide=wide, deep=deep)

    def rng_state(self) -> dict:
        """Serializable bit-generator state of the sampling rng."""
        return self._rng.bit_generator.state

    def load_rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, node: int) -> bool:
        return int(node) in self._states
