"""Hyperparameters and ablation switches for WIDEN.

Defaults follow Section 4.4's unified setting, scaled down for single-CPU
experiments (the paper uses d=128, N_w=N_d=20, Φ=10 on a GPU).  Every
architectural ablation of Table 4 corresponds to one switch here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WidenConfig:
    """Configuration for :class:`~repro.core.model.WidenModel` and trainer."""

    # -- architecture ---------------------------------------------------
    dim: int = 32
    """Latent dimension d."""
    num_wide: int = 10
    """Initial wide neighbor sample size N_w (Definition 2)."""
    num_deep: int = 8
    """Deep random-walk length N_d (Definition 3)."""
    num_deep_walks: int = 2
    """Number of deep walk sequences Φ per target node."""
    num_heads: int = 1
    """Attention heads in PASS°/PASS▷ (1 reproduces the paper's Eq. 3/5;
    more heads is the standard multi-head extension)."""
    dropout: float = 0.3
    """Feature dropout on message packs and the fused hidden layer during
    training.  Algorithm 3 fixes each node's neighbor sets across epochs, so
    without dropout the attention memorizes specific neighborhoods of the
    (small) labeled set; pack dropout is the standard mitigation."""

    # -- optimization (Algorithm 3) --------------------------------------
    learning_rate: float = 5e-3
    """τ.  The paper uses 1e-4 with many epochs; we scale up for few epochs."""
    weight_decay: float = 1e-4
    """L2 strength γ."""
    batch_size: int = 32
    """Minibatch size B."""
    grad_clip: float = 5.0
    """Global-norm gradient clip (0 disables)."""
    forward_mode: str = "batched"
    """``"batched"`` runs minibatches through the vectorized
    :meth:`~repro.core.model.WidenModel.forward_batch` path (padded batch
    tensors, one attention call per stage); ``"sparse"`` runs the same
    minibatch mathematics over flat CSR pack arrays
    (:meth:`~repro.core.model.WidenModel.forward_batch_sparse` — work
    proportional to real pack rows, no ``[B, L_max, d]`` padding, results
    within 1e-10 of the padded path); ``"auto"`` picks padded vs sparse
    per batch from its would-be padding waste and the per-host
    kernel-selection table (:mod:`repro.tensor.kernels`); ``"per_node"``
    keeps the original one-target-at-a-time reference path.  All compute
    the same mathematics.  In ``"replace"`` embedding mode the minibatched
    paths apply synchronous minibatch semantics (all rows of a minibatch
    read the pre-batch state table), whereas the per-node path updates the
    table after every single forward."""
    wide_sampling: str = "replace"
    """``"replace"`` oversamples below-cap nodes to exactly ``num_wide``
    neighbors with replacement (the GraphSAGE convention; every pack is
    cap-length).  ``"unique"`` takes each neighbor at most once, so pack
    lengths track true degrees — on power-law graphs most packs become far
    shorter than the cap, the regime where ``forward_mode="sparse"``/"auto"
    pays (padded grids would be mostly padding)."""
    sample_seeding: str = "stream"
    """How the trainer's neighbor-state store seeds its sampling draws.

    ``"stream"`` (default) pulls every wide/deep sample from one sequential
    rng stream in first-touch order — the historical behavior, preserved
    bit-for-bit.  ``"per_node"`` derives an independent rng per target node
    from ``(base_seed, node_id)``, making each node's initial neighbor sets
    a pure function of the node id: visit order, minibatch composition and
    — critically — *which shard of a partitioned graph samples the node* no
    longer matter.  Distributed data-parallel training uses this mode when
    it must match a single-process run beyond loss-curve tolerance."""
    embedding_mode: str = "project"
    """How neighbor representations v_n enter message packs (Eq. 1-2).

    ``"project"`` — v_n is a fresh, trainable feature projection x_n G^node
    every forward pass (reading Section 2's "Embedding Initialization" as the
    definition of the current representation).  Gradients reach G^node
    through every pack, which trains markedly better at our scale.

    ``"replace"`` — Algorithm 3's literal update rule: each processed node's
    output v_t' overwrites a persistent embedding table, and neighbors read
    (detached) refined embeddings from it, spreading multi-hop information
    across epochs.  ``refresh_fraction`` controls how much of the rest of V
    is refreshed per epoch.  Kept for fidelity and exposed in the ablation
    benches."""
    refresh_fraction: float = 0.5
    """Fraction of non-training nodes whose embedding row is refreshed
    (forward-only, no gradient) each epoch.  Algorithm 3 iterates all of V
    while masking unlabeled nodes from the loss; refreshing a random subset
    per epoch approximates that at reduced cost.  0 disables."""

    # -- active downsampling ---------------------------------------------
    downsample_mode: str = "attentive"
    """``"attentive"`` (Algorithms 1-2), ``"random"`` (Table 4 rows 7-8) or
    ``"off"`` (Table 4 row 2, "No Downsampling")."""
    wide_downsample: str = ""
    """Per-side override for the wide set; empty inherits ``downsample_mode``.
    Table 4's "Random Downsampling for W(t)" randomizes only this side."""
    deep_downsample: str = ""
    """Per-side override for deep sequences; empty inherits
    ``downsample_mode``."""
    trigger: str = "kl"
    """``"kl"`` (Eq. 9), ``"always"`` or ``"never"`` — the KL trigger
    ablation called out in DESIGN.md."""
    wide_threshold: float = 1e-3
    """r° — KL threshold for wide downsampling."""
    deep_threshold: float = 1e-3
    """r▷ — KL threshold for deep downsampling."""
    wide_floor: int = 5
    """k° — minimum wide neighbor count preserved."""
    deep_floor: int = 5
    """k▷ — minimum deep sequence length preserved."""

    # -- architecture ablations (Table 4) ---------------------------------
    use_wide: bool = True
    """False reproduces "Removing Wide Neighbors"."""
    use_deep: bool = True
    """False reproduces "Removing Deep Neighbors"."""
    use_successive: bool = True
    """False removes the successive self-attention of Eq. 4."""
    use_relay: bool = True
    """False reproduces "Removing Relay Edges" (deep packs are dropped
    without contextualized relays)."""

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.num_wide < 1 or self.num_deep < 1:
            raise ValueError("num_wide and num_deep must be >= 1")
        if self.num_deep_walks < 1:
            raise ValueError(f"num_deep_walks must be >= 1, got {self.num_deep_walks}")
        if self.num_heads < 1 or self.dim % self.num_heads != 0:
            raise ValueError(
                f"num_heads ({self.num_heads}) must be >= 1 and divide dim ({self.dim})"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.embedding_mode not in ("project", "replace"):
            raise ValueError(f"unknown embedding_mode {self.embedding_mode!r}")
        if self.forward_mode not in ("batched", "sparse", "auto", "per_node"):
            raise ValueError(f"unknown forward_mode {self.forward_mode!r}")
        if self.wide_sampling not in ("replace", "unique"):
            raise ValueError(f"unknown wide_sampling {self.wide_sampling!r}")
        if self.sample_seeding not in ("stream", "per_node"):
            raise ValueError(f"unknown sample_seeding {self.sample_seeding!r}")
        if not 0.0 <= self.refresh_fraction <= 1.0:
            raise ValueError(
                f"refresh_fraction must be in [0, 1], got {self.refresh_fraction}"
            )
        if self.downsample_mode not in ("attentive", "random", "off"):
            raise ValueError(f"unknown downsample_mode {self.downsample_mode!r}")
        for side in (self.wide_downsample, self.deep_downsample):
            if side not in ("", "attentive", "random", "off"):
                raise ValueError(f"unknown per-side downsample mode {side!r}")
        if self.trigger not in ("kl", "always", "never"):
            raise ValueError(f"unknown trigger {self.trigger!r}")
        if not (self.use_wide or self.use_deep):
            raise ValueError("at least one of use_wide/use_deep must be on")
        if self.wide_floor < 1 or self.deep_floor < 1:
            raise ValueError("downsampling floors must be >= 1 (paper: k >= 1)")

    @property
    def serving_reach(self) -> int:
        """Out-hop radius the identity-free serving path can touch.

        ``embed_for_serving`` samples a 1-hop wide set plus walks of length
        ``num_deep``, so it reads features up to ``num_deep`` hops out and
        queries adjacency lists up to ``num_deep - 1`` hops out.  In
        ``"replace"`` embedding mode the warm-up pass additionally embeds the
        sampled neighbors themselves, doubling the radius.  Halo replication
        (``repro.cluster``) and fine-grained cache invalidation
        (``repro.serve``) both size their BFS from this number.
        """
        reach = self.num_deep
        if self.embedding_mode == "replace":
            reach *= 2
        return reach

    @property
    def effective_wide_mode(self) -> str:
        """Downsampling mode applied to wide sets."""
        return self.wide_downsample or self.downsample_mode

    @property
    def effective_deep_mode(self) -> str:
        """Downsampling mode applied to deep sequences."""
        return self.deep_downsample or self.downsample_mode
