"""Link prediction with WIDEN embeddings — the paper's second task.

Section 1 names link prediction alongside node classification as the
downstream tasks node embeddings serve, and Section 3.4 notes WIDEN "can be
optimized for different downstream tasks".  This module realizes that:

- :func:`split_edges` holds out a fraction of edges (with sampled
  non-edges as negatives) for evaluation, removing them from the training
  graph so the model cannot cheat.
- :class:`LinkPredictionTrainer` optimizes WIDEN with a binary
  cross-entropy objective on bilinear edge scores ``σ(v_u W v_v^T)`` with
  negative sampling, instead of Eq. 10's classification loss.  (A trainable
  bilinear form replaces the raw dot product because WIDEN's embeddings are
  L2-normalized (Eq. 7), which caps dot-product logits at ±1 and starves the
  BCE gradient.)
- Evaluation reports ROC-AUC over the held-out positives/negatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import WidenConfig
from repro.core.model import WidenModel
from repro.core.state import NeighborStateStore
from repro.graph import HeteroGraph
from repro.optim import Adam, clip_grad_norm
from repro.tensor import functional as F, no_grad, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


@dataclass
class EdgeSplit:
    """Training graph + evaluation edge sets for link prediction."""

    train_graph: HeteroGraph
    positive_edges: np.ndarray  # (m, 2) held-out true edges
    negative_edges: np.ndarray  # (m, 2) sampled non-edges


def split_edges(
    graph: HeteroGraph, holdout_fraction: float = 0.1, rng: SeedLike = None
) -> EdgeSplit:
    """Hold out ``holdout_fraction`` of undirected edges for evaluation.

    The held-out edges (both directions) are removed from the training
    graph; an equal number of uniformly sampled non-edges become negatives.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError(f"holdout_fraction must be in (0, 1), got {holdout_fraction}")
    rng = new_rng(rng)
    # Work with canonical (u < v) undirected pairs.
    src, dst = graph._src, graph.indices
    canonical = src < dst
    pairs = np.stack([src[canonical], dst[canonical]], axis=1)
    etypes = graph.edge_type_of[canonical]
    count = max(1, int(round(holdout_fraction * pairs.shape[0])))
    order = rng.permutation(pairs.shape[0])
    held, kept = order[:count], order[count:]

    existing = set(map(tuple, pairs.tolist()))
    negatives: List[Tuple[int, int]] = []
    while len(negatives) < count:
        u = int(rng.integers(graph.num_nodes))
        v = int(rng.integers(graph.num_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in existing:
            negatives.append(key)

    kept_pairs, kept_types = pairs[kept], etypes[kept]
    train_graph = HeteroGraph(
        node_types=graph.node_types,
        src=np.concatenate([kept_pairs[:, 0], kept_pairs[:, 1]]),
        dst=np.concatenate([kept_pairs[:, 1], kept_pairs[:, 0]]),
        edge_types=np.concatenate([kept_types, kept_types]),
        node_type_names=graph.node_type_names,
        edge_type_names=graph.edge_type_names,
        features=graph.features,
        labels=graph.labels,
        num_classes=graph.num_classes,
    )
    return EdgeSplit(
        train_graph=train_graph,
        positive_edges=pairs[held],
        negative_edges=np.asarray(negatives, dtype=np.int64),
    )


class LinkPredictionTrainer:
    """Optimizes WIDEN embeddings for edge existence."""

    def __init__(
        self,
        model: WidenModel,
        graph: HeteroGraph,
        config: WidenConfig,
        negatives_per_edge: int = 1,
        seed: SeedLike = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config
        self.negatives_per_edge = negatives_per_edge
        sample_rng, self._rng, head_rng = spawn_rngs(seed, 3)
        self.store = NeighborStateStore(
            graph, config.num_wide, config.num_deep, config.num_deep_walks,
            rng=sample_rng, wide_sampling=config.wide_sampling,
        )
        from repro.nn import Linear

        self.bilinear = Linear(config.dim, config.dim, bias=False, rng=head_rng)
        self.optimizer = Adam(
            model.parameters() + self.bilinear.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self.losses: List[float] = []

    def fit(self, epochs: int, edges_per_epoch: int = 128) -> "LinkPredictionTrainer":
        """Train on sampled positive edges + uniform negatives."""
        src_all, dst_all = self.graph._src, self.graph.indices
        if src_all.size == 0:
            raise ValueError("training graph has no edges")
        for _ in range(epochs):
            picks = self._rng.integers(src_all.size, size=edges_per_epoch)
            epoch_loss = 0.0
            batch_size = self.config.batch_size
            for start in range(0, edges_per_epoch, batch_size):
                chunk = picks[start : start + batch_size]
                loss = self._step(src_all[chunk], dst_all[chunk])
                epoch_loss += loss * chunk.size
            self.losses.append(epoch_loss / edges_per_epoch)
        return self

    def _step(self, src: np.ndarray, dst: np.ndarray) -> float:
        negatives = self._rng.integers(
            self.graph.num_nodes, size=src.size * self.negatives_per_edge
        )
        nodes = np.unique(np.concatenate([src, dst, negatives]))
        embedding_of = {}
        rows = []
        for index, node in enumerate(nodes):
            state = self.store.get(int(node))
            embedding, _, _ = self.model(int(node), state, self.graph)
            rows.append(embedding)
            embedding_of[int(node)] = index
        table = ops.stack(rows)

        def score(u_ids, v_ids):
            u = table[np.array([embedding_of[int(n)] for n in u_ids])]
            v = table[np.array([embedding_of[int(n)] for n in v_ids])]
            return ops.sum(self.bilinear(u) * v, axis=1) * 4.0

        positive_scores = score(src, dst)
        negative_scores = score(
            np.repeat(src, self.negatives_per_edge), negatives
        )
        scores = ops.concat([positive_scores, negative_scores], axis=0)
        targets = np.concatenate(
            [np.ones(src.size), np.zeros(negatives.size)]
        )
        loss = F.binary_cross_entropy_with_logits(scores, targets)
        self.optimizer.zero_grad()
        loss.backward()
        if self.config.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return loss.item()

    def score_edges(self, edges: np.ndarray) -> np.ndarray:
        """Dot-product scores for ``(m, 2)`` node-id pairs."""
        edges = np.asarray(edges, dtype=np.int64)
        nodes = np.unique(edges.reshape(-1))
        self.model.eval()
        embeddings = {}
        with no_grad():
            for node in nodes:
                state = self.store.get(int(node))
                embedding, _, _ = self.model(int(node), state, self.graph)
                embeddings[int(node)] = embedding.data
        self.model.train()
        weight = self.bilinear.weight.data
        return np.array(
            [float(embeddings[int(u)] @ weight @ embeddings[int(v)]) for u, v in edges]
        )
