"""WIDEN's trainer — the graph-bound phases of Algorithm 3.

The trainer owns the persistent neighbor states (sampled once, line 3), the
model replica and the optimizer, and after every per-node forward decides —
via the KL-divergence trigger of Eq. 9 — whether to actively downsample that
node's wide set (Algorithm 1) or deep sequences (Algorithm 2).

Epoch sequencing lives in :class:`~repro.core.train_loop.TrainLoop`; this
class exposes Algorithm 3 as composable phases the loop drives:

- :meth:`WidenTrainer.epoch_begin` — neighbor-state refresh + the epoch's
  shuffled minibatch schedule (plus an optional owned-node filter for
  partition-local training);
- :meth:`WidenTrainer.run_microbatch` — forward/backward over one schedule
  slice, gradients left on the parameters;
- :meth:`WidenTrainer.export_grads` / :meth:`WidenTrainer.apply_update` —
  the gradient-reduction seam: grads out, (reduced grads, global norm) in,
  then clipped optimizer step;
- :meth:`WidenTrainer.epoch_finish` — per-epoch stats payload.

:meth:`WidenTrainer.fit` is the classic entry point, now a thin wrapper
running a single-client :class:`~repro.core.train_loop.TrainLoop` — the
same driver distributed training uses over a fleet of shard engines.

Inference helpers:

- :meth:`WidenTrainer.embed` — embeddings of arbitrary nodes in the training
  graph (transductive evaluation).
- :meth:`WidenTrainer.embed_inductive` — embeddings of nodes in a *different*
  graph (the full graph with held-out nodes restored); neighbor sets are
  sampled fresh, nothing is looked up by node identity, which is exactly what
  makes WIDEN inductive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import WidenConfig
from repro.core.model import WidenModel
from repro.core.relay import prune_deep, shrink_wide
from repro.core.state import NeighborState, NeighborStateStore
from repro.core.train_loop import LocalTrainClient, TrainHistory, TrainLoop
from repro.graph import HeteroGraph
from repro.obs import MetricsRegistry, get_registry
from repro.obs.tracing import span as trace_span
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, functional as F, no_grad, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs

__all__ = ["TrainHistory", "WidenTrainer"]


def _entropy(distribution: np.ndarray) -> float:
    """Shannon entropy of an attention distribution (nats)."""
    p = np.clip(distribution, 1e-12, None)
    return float(-(p * np.log(p)).sum())


class WidenTrainer:
    """Trains a :class:`WidenModel` on one graph (Algorithm 3)."""

    def __init__(
        self,
        model: WidenModel,
        graph: HeteroGraph,
        config: Optional[WidenConfig] = None,
        seed: SeedLike = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config or model.config
        # Per-epoch scalars/series go to this registry (the process-wide one
        # unless a private registry is injected, e.g. by tests).
        self.registry = registry if registry is not None else get_registry()
        sample_rng, self._shuffle_rng, self._drop_rng = spawn_rngs(seed, 3)
        self.store = NeighborStateStore(
            graph,
            num_wide=self.config.num_wide,
            num_deep=self.config.num_deep,
            num_deep_walks=self.config.num_deep_walks,
            wide_sampling=self.config.wide_sampling,
            sample_seeding=self.config.sample_seeding,
            rng=sample_rng,
        )
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainHistory()
        self._epoch = 0
        # Hoisted instruments: one dict lookup at construction, plain
        # attribute access on the per-node hot path.
        self._bind_instruments()
        # Per-epoch trigger accounting, reset by epoch_begin.
        self._trigger_checks = 0
        self._trigger_fired = 0
        self._kl_values: List[float] = []
        # Phase state between epoch_begin and epoch_finish.
        self._schedule: Optional[np.ndarray] = None
        self._owned_lookup: Optional[np.ndarray] = None
        self._label_chunks: List[np.ndarray] = []
        self._prediction_chunks: List[np.ndarray] = []
        self._acc_loss_sum = 0.0
        self._acc_nodes = 0
        self._acc_wide_drops = 0
        self._acc_deep_drops = 0
        self._acc_wide_messages = 0
        self._acc_deep_messages = 0
        # Algorithm 3's current representations v_t ("replace" mode): every
        # processed node's embedding replaces its row, so neighbors read
        # refined embeddings.  In "project" mode neighbors are fresh feature
        # projections and no table is kept.
        self.node_state = (
            model.initial_node_state(graph)
            if self.config.embedding_mode == "replace"
            else None
        )

    def _bind_instruments(self) -> None:
        self._wide_entropy = self.registry.histogram(
            "train_attention_entropy", path="wide"
        )
        self._deep_entropy = self.registry.histogram(
            "train_attention_entropy", path="deep"
        )
        self._kl_hist = self.registry.histogram("train_kl_divergence")

    def set_registry(self, registry: MetricsRegistry) -> None:
        """Repoint per-epoch series and hot-path instruments at ``registry``.

        Shard engines rebuild their trainer through ``WidenClassifier.bind``
        (which constructs it against the process-wide registry) and then
        attach their private, mergeable registry here so training telemetry
        flows through the same per-shard snapshot path serving uses.
        """
        self.registry = registry
        self._bind_instruments()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, train_nodes: np.ndarray, epochs: int) -> TrainHistory:
        """Run ``epochs`` training epochs over ``train_nodes`` (labeled ids).

        Drives a single-client :class:`~repro.core.train_loop.TrainLoop`
        over this trainer's phases — the same sequencing code distributed
        training runs over a shard fleet, taking the exact single-process
        path through gradient reduction (one contributor → grads untouched).
        """
        train_nodes = np.asarray(train_nodes, dtype=np.int64)
        labels = self.graph.labels[train_nodes]
        if (labels < 0).any():
            raise ValueError("all training nodes must be labeled")
        loop = TrainLoop(
            [LocalTrainClient(self)],
            self.config,
            registry=self.registry,
            history=self.history,
        )
        return loop.run(train_nodes, epochs)

    # ------------------------------------------------------------------
    # Training phases (driven by TrainLoop)
    # ------------------------------------------------------------------

    def epoch_begin(
        self, train_nodes: np.ndarray, owned: Optional[np.ndarray] = None
    ) -> dict:
        """Phase 1: neighbor-state refresh + this epoch's minibatch schedule.

        Consumes the epoch's ``shuffle_rng`` draws (refresh sample and the
        schedule permutation), so replicas restored from the same checkpoint
        compute the *same* schedule locally — a distributed microbatch is
        just a start offset.  ``owned`` (global node ids) restricts which
        schedule rows this trainer actually computes; the schedule itself is
        always global so offsets mean the same thing on every shard.
        """
        train_nodes = np.asarray(train_nodes, dtype=np.int64)
        self.model.train()
        with trace_span("trainer.refresh_states"):
            self._refresh_states(train_nodes)
        order = self._shuffle_rng.permutation(train_nodes.size)
        self._schedule = train_nodes[order]
        if owned is None:
            self._owned_lookup = None
        else:
            lookup = np.zeros(self.graph.num_nodes, dtype=bool)
            lookup[np.asarray(owned, dtype=np.int64)] = True
            self._owned_lookup = lookup
        self._trigger_checks = 0
        self._trigger_fired = 0
        self._kl_values = []
        self._label_chunks = []
        self._prediction_chunks = []
        self._acc_loss_sum = 0.0
        self._acc_nodes = 0
        self._acc_wide_drops = 0
        self._acc_deep_drops = 0
        self._acc_wide_messages = 0
        self._acc_deep_messages = 0
        return {"epoch": int(self._epoch), "num_nodes": int(self._schedule.size)}

    def run_microbatch(self, start: int) -> dict:
        """Phase 2: forward/backward over one schedule slice (owned rows).

        Leaves the batch's gradients on the parameters — clipping and the
        optimizer step happen in :meth:`apply_update` once the loop has
        reduced gradients across contributors.  Returns the number of rows
        this trainer actually computed (its reduction weight).
        """
        if self._schedule is None:
            raise RuntimeError("run_microbatch called before epoch_begin")
        batch = self._schedule[int(start) : int(start) + self.config.batch_size]
        if self._owned_lookup is not None:
            batch = batch[self._owned_lookup[batch]]
        if batch.size == 0:
            return {"count": 0, "loss_sum": 0.0}
        batched = self.config.forward_mode != "per_node"
        with trace_span("trainer.batch", size=int(batch.size)):
            states = [self.store.get(int(node)) for node in batch]
            if self.config.use_wide:
                # Every pack in M° (wide set + target) is one message
                # through PASS° — the unit of Fig. 4's volume axis.
                self._acc_wide_messages += sum(len(s.wide) + 1 for s in states)
            if self.config.use_deep:
                self._acc_deep_messages += sum(
                    len(deep) + 1 for s in states for deep in s.deep
                )
            if batched:
                stacked, wide_atts, deep_att_lists = self.model.forward_batch(
                    batch, states, self.graph, self.node_state
                )
                if self.node_state is not None:
                    # Line 8 of Algorithm 3, synchronous minibatch form:
                    # the outputs replace every v_t of the batch at once.
                    self.node_state[batch] = stacked.data
            else:
                embeddings: List[Tensor] = []
                wide_atts = []
                deep_att_lists = []
                for node, state in zip(batch, states):
                    embedding, wide_att, deep_atts = self.model(
                        int(node), state, self.graph, self.node_state
                    )
                    embeddings.append(embedding)
                    if self.node_state is not None:
                        # Line 8 of Algorithm 3: the output replaces v_t.
                        self.node_state[int(node)] = embedding.data
                    wide_atts.append(wide_att)
                    deep_att_lists.append(deep_atts)
                stacked = ops.stack(embeddings)
            for state, wide_att, deep_atts in zip(states, wide_atts, deep_att_lists):
                if wide_att is not None:
                    self._wide_entropy.observe(_entropy(wide_att))
                for att in deep_atts:
                    self._deep_entropy.observe(_entropy(att))
                dropped = self._maybe_downsample(state, wide_att, deep_atts)
                self._acc_wide_drops += dropped[0]
                self._acc_deep_drops += dropped[1]
            logits = self.model.logits(stacked)
            loss = F.cross_entropy(logits, self.graph.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            loss_sum = loss.item() * batch.size
            self._label_chunks.append(self.graph.labels[batch])
            self._prediction_chunks.append(logits.data.argmax(axis=1))
            self._acc_loss_sum += loss_sum
            self._acc_nodes += int(batch.size)
        return {"count": int(batch.size), "loss_sum": float(loss_sum)}

    def export_grads(self) -> List[Optional[np.ndarray]]:
        """Phase 3a: current gradients, one entry per parameter.

        Entries are live references (``None`` where nothing flowed); the
        local path hands them straight back through :meth:`apply_update`
        untouched, the distributed path pickles them across the transport.
        """
        return [param.grad for param in self.model.parameters()]

    def apply_update(
        self,
        grads: Optional[List[Optional[np.ndarray]]] = None,
        norm: Optional[float] = None,
    ) -> None:
        """Phase 3b: install reduced gradients, clip, and step the optimizer.

        ``norm`` is the globally agreed pre-clip norm — every replica must
        scale by the same factor or they drift.  Called with ``grads=None``
        the trainer clips/steps its own backward's gradients (the pre-phase
        monolith's behavior).  The step runs even when this shard contributed
        no rows: Adam's bias correction counts steps, so replicas step in
        lockstep.
        """
        if grads is not None:
            parameters = self.model.parameters()
            if len(grads) != len(parameters):
                raise ValueError(
                    f"got {len(grads)} gradients for {len(parameters)} parameters"
                )
            for param, grad in zip(parameters, grads):
                param.grad = grad
        if self.config.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.config.grad_clip, norm=norm)
        self.optimizer.step()

    def epoch_finish(self) -> dict:
        """Phase 4: close the epoch and return its stats payload.

        Labels/predictions come back in schedule order (owned rows only) so
        the loop can pool confusion-matrix F1 across shards; KL values come
        back raw for the same reason.  Advances the epoch counter — the KL
        trigger and refresh schedules key off it.
        """
        if self._schedule is None:
            raise RuntimeError("epoch_finish called before epoch_begin")
        empty = np.empty(0, dtype=np.int64)
        payload = {
            "loss_sum": float(self._acc_loss_sum),
            "node_count": int(self._acc_nodes),
            "wide_drops": int(self._acc_wide_drops),
            "deep_drops": int(self._acc_deep_drops),
            "wide_messages": int(self._acc_wide_messages),
            "deep_messages": int(self._acc_deep_messages),
            "trigger_checks": int(self._trigger_checks),
            "trigger_fires": int(self._trigger_fired),
            "kl_values": [float(value) for value in self._kl_values],
            "labels": (
                np.concatenate(self._label_chunks) if self._label_chunks else empty
            ),
            "predictions": (
                np.concatenate(self._prediction_chunks)
                if self._prediction_chunks
                else empty
            ),
        }
        self._schedule = None
        self._owned_lookup = None
        self._label_chunks = []
        self._prediction_chunks = []
        self._epoch += 1
        return payload

    def _refresh_states(self, train_nodes: np.ndarray) -> None:
        """Forward-only embedding refresh for a sample of non-training nodes.

        Algorithm 3 iterates over all of V, updating every node's embedding
        while masking unlabeled nodes from the loss.  Refreshing a random
        ``refresh_fraction`` of the remaining nodes per epoch reproduces that
        propagation (multi-hop information spreads through the state table)
        at a fraction of the cost.
        """
        fraction = self.config.refresh_fraction
        if self.node_state is None or fraction <= 0 or self._epoch == 0:
            # Skip in epoch 0: every row is still the (normalized) feature
            # projection, and the model has not learned anything to propagate.
            return
        others = np.setdiff1d(
            np.arange(self.graph.num_nodes), np.asarray(train_nodes)
        )
        count = int(round(fraction * others.size))
        if count == 0:
            return
        sample = others[self._shuffle_rng.permutation(others.size)[:count]]
        with no_grad():
            if self.config.forward_mode != "per_node":
                batch_size = max(1, self.config.batch_size)
                for start in range(0, sample.size, batch_size):
                    chunk = sample[start : start + batch_size]
                    states = [self.store.get(int(node)) for node in chunk]
                    embeddings, _, _ = self.model.forward_batch(
                        chunk, states, self.graph, self.node_state
                    )
                    self.node_state[chunk] = embeddings.data
            else:
                for node in sample:
                    state = self.store.get(int(node))
                    embedding, _, _ = self.model(
                        int(node), state, self.graph, self.node_state
                    )
                    self.node_state[int(node)] = embedding.data

    # ------------------------------------------------------------------
    # Active downsampling (Algorithms 1-2 + Eq. 9 trigger)
    # ------------------------------------------------------------------

    def _maybe_downsample(
        self,
        state: NeighborState,
        wide_att: Optional[np.ndarray],
        deep_atts: List[np.ndarray],
    ):
        config = self.config
        wide_drops = deep_drops = 0

        wide_mode = config.effective_wide_mode
        if (
            config.use_wide
            and wide_mode != "off"
            and wide_att is not None
            and len(state.wide) > config.wide_floor
        ):
            # Random downsampling (Table 4) removes the KL trigger entirely.
            trigger = "always" if wide_mode == "random" else config.trigger
            signature = state.wide_signature()
            if self._trigger_fires(
                trigger,
                state.prev_wide_attention,
                state.prev_wide_signature,
                wide_att,
                signature,
                config.wide_threshold,
            ):
                if wide_mode == "attentive":
                    state.wide = shrink_wide(state.wide, wide_att)
                else:
                    victim = int(self._drop_rng.integers(len(state.wide)))
                    state.wide = state.wide.drop(victim)
                wide_drops += 1
                state.prev_wide_attention = None
                state.prev_wide_signature = None
            else:
                state.prev_wide_attention = wide_att
                state.prev_wide_signature = signature

        deep_mode = config.effective_deep_mode
        if config.use_deep and deep_mode != "off":
            trigger = "always" if deep_mode == "random" else config.trigger
            for phi, att in enumerate(deep_atts):
                deep = state.deep[phi]
                if len(deep) <= config.deep_floor:
                    continue
                signature = state.deep_signature(phi)
                if self._trigger_fires(
                    trigger,
                    state.prev_deep_attention[phi],
                    state.prev_deep_signature[phi],
                    att,
                    signature,
                    config.deep_threshold,
                ):
                    if deep_mode == "attentive":
                        state.deep[phi] = prune_deep(deep, att, use_relay=config.use_relay)
                    else:
                        victim = int(self._drop_rng.integers(len(deep)))
                        fake_att = np.ones(len(deep) + 1)
                        fake_att[victim + 1] = 0.0  # force the random victim
                        state.deep[phi] = prune_deep(
                            deep, fake_att, use_relay=config.use_relay
                        )
                    deep_drops += 1
                    state.prev_deep_attention[phi] = None
                    state.prev_deep_signature[phi] = None
                else:
                    state.prev_deep_attention[phi] = att
                    state.prev_deep_signature[phi] = signature
        return wide_drops, deep_drops

    def _trigger_fires(
        self,
        trigger: str,
        prev_att: Optional[np.ndarray],
        prev_signature: Optional[tuple],
        current_att: np.ndarray,
        current_signature: tuple,
        threshold: float,
    ) -> bool:
        """Eq. 9: KL between epochs' attention distributions over the SAME
        neighbor set; +∞ (no fire) when the set changed.

        Side accounting for the efficiency story: every actual KL evaluation
        counts as a *trigger check* (the value lands in the
        ``train_kl_divergence`` histogram), every ``True`` return as a
        *trigger fire* — ``metrics.jsonl`` then shows when in training the
        downsampler became active.
        """
        if trigger == "never":
            return False
        if trigger == "always":
            self._trigger_fired += 1
            return True
        if self._epoch < 1 or prev_att is None:
            return False  # Algorithm 3 line 9: only from the second epoch on
        if prev_signature != current_signature or prev_att.shape != current_att.shape:
            return False  # Eq. 9's "+∞ otherwise" branch
        divergence = F.kl_divergence(prev_att, current_att)
        self._trigger_checks += 1
        self._kl_values.append(divergence)
        self._kl_hist.observe(divergence)
        fired = divergence < threshold
        if fired:
            self._trigger_fired += 1
        return fired

    # ------------------------------------------------------------------
    # Rng persistence
    # ------------------------------------------------------------------

    def rng_state(self) -> dict:
        """Serializable snapshot of every rng stream training consumes.

        Covers epoch shuffling, random-mode downsampling victims, neighbor
        sampling and both dropout masks — restoring it makes the *stochastic
        decisions* of subsequent epochs identical to an uninterrupted run.
        (Bit-identical resume additionally needs the optimizer moments and
        the mutated neighbor sets themselves; those are separate concerns —
        see ROADMAP.)
        """
        return {
            "shuffle": self._shuffle_rng.bit_generator.state,
            "drop": self._drop_rng.bit_generator.state,
            "store": self.store.rng_state(),
            "pack_dropout": self.model.pack_dropout.rng_state(),
            "hidden_dropout": self.model.hidden_dropout.rng_state(),
        }

    def load_rng_state(self, state: dict) -> None:
        """Restore a :meth:`rng_state` snapshot onto the live generators."""
        self._shuffle_rng.bit_generator.state = state["shuffle"]
        self._drop_rng.bit_generator.state = state["drop"]
        self.store.load_rng_state(state["store"])
        self.model.pack_dropout.load_rng_state(state["pack_dropout"])
        self.model.hidden_dropout.load_rng_state(state["hidden_dropout"])

    # ------------------------------------------------------------------
    # Training-progress persistence (checkpoint format v3)
    # ------------------------------------------------------------------

    def training_state(self) -> dict:
        """Everything beyond parameters + rng that exact resume needs.

        Optimizer moments/step count drive the next update's magnitude; the
        epoch counter gates the KL trigger and state-refresh schedules; the
        neighbor store's cached (and possibly downsampled) per-node sets
        plus the refined node-state table are the training-time state the
        next epoch reads.  Together with :meth:`rng_state` this makes
        ``fit(n); save; load; fit(m)`` bit-identical to ``fit(n + m)`` on
        the same graph.
        """
        return {
            "epoch": int(self._epoch),
            "optimizer": self.optimizer.state_dict(),
            "store_states": dict(self.store._states),
            "node_state": (
                None if self.node_state is None else self.node_state.copy()
            ),
        }

    def load_training_state(self, state: dict) -> None:
        """Restore a :meth:`training_state` snapshot.

        Only valid against a graph equivalent to the one the snapshot was
        taken on — neighbor sets reference node ids and the node-state
        table is indexed by them.  The serving path is unaffected either
        way (it always samples fresh stores).
        """
        self._epoch = int(state["epoch"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.store._states = dict(state["store_states"])
        node_state = state.get("node_state")
        if node_state is not None:
            if self.node_state is None or self.node_state.shape != node_state.shape:
                raise ValueError(
                    "checkpoint carries a node-state table that does not "
                    "match this trainer's (embedding_mode/graph mismatch)"
                )
            np.copyto(self.node_state, node_state)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def embed(self, nodes: Sequence[int]) -> np.ndarray:
        """Embeddings for nodes of the training graph (persistent states).

        Evaluation reads the refined node-state table but never mutates it.
        """
        return self._embed_with(self.store, self.graph, self.node_state, nodes)

    def embed_inductive(
        self,
        graph: HeteroGraph,
        nodes: Sequence[int],
        rng: SeedLike = None,
        warmup_passes: int = 1,
    ) -> np.ndarray:
        """Embeddings for nodes of an *unseen* graph (fresh neighbor sets).

        This is the paper's inductive protocol: the model was trained with
        these nodes absent, and now embeds them purely from features and
        sampled neighborhoods — no identity lookup anywhere.

        ``warmup_passes`` refinement rounds are first run over the requested
        nodes' sampled neighbors so their table entries approximate the
        refined representations they would carry after training — the
        streaming analogue of Algorithm 3's embedding replacement.
        """
        store = NeighborStateStore(
            graph,
            num_wide=self.config.num_wide,
            num_deep=self.config.num_deep,
            num_deep_walks=self.config.num_deep_walks,
            wide_sampling=self.config.wide_sampling,
            rng=new_rng(rng),
        )
        if self.config.embedding_mode != "replace":
            return self._embed_with(store, graph, None, nodes)
        node_state = self.model.initial_node_state(graph)
        frontier = set()
        for node in nodes:
            state = store.get(int(node))
            frontier.update(state.wide.nodes.tolist())
            for deep in state.deep:
                frontier.update(deep.nodes.tolist())
        frontier -= set(int(v) for v in nodes)
        self.model.eval()
        batched = self.config.forward_mode != "per_node"
        batch_size = max(1, self.config.batch_size)
        warm_nodes = np.asarray(sorted(frontier), dtype=np.int64)
        with no_grad():
            for _ in range(max(0, warmup_passes)):
                if batched and warm_nodes.size:
                    for start in range(0, warm_nodes.size, batch_size):
                        chunk = warm_nodes[start : start + batch_size]
                        chunk_states = [store.get(int(n)) for n in chunk]
                        embeddings, _, _ = self.model.forward_batch(
                            chunk, chunk_states, graph, node_state
                        )
                        node_state[chunk] = embeddings.data
                else:
                    for node in warm_nodes:
                        state = store.get(int(node))
                        embedding, _, _ = self.model(int(node), state, graph, node_state)
                        node_state[int(node)] = embedding.data
        self.model.train()
        return self._embed_with(store, graph, node_state, nodes)

    def _embed_with(
        self,
        store: NeighborStateStore,
        graph: HeteroGraph,
        node_state: Optional[np.ndarray],
        nodes: Sequence[int],
    ) -> np.ndarray:
        self.model.eval()
        node_ids = np.asarray([int(node) for node in nodes], dtype=np.int64)
        rows = []
        with no_grad():
            if self.config.forward_mode != "per_node" and node_ids.size:
                batch_size = max(1, self.config.batch_size)
                for start in range(0, node_ids.size, batch_size):
                    chunk = node_ids[start : start + batch_size]
                    states = [store.get(int(n)) for n in chunk]
                    embeddings, _, _ = self.model.forward_batch(
                        chunk, states, graph, node_state
                    )
                    rows.append(embeddings.data)
                result = np.concatenate(rows, axis=0)
            else:
                for node in node_ids:
                    state = store.get(int(node))
                    embedding, _, _ = self.model(int(node), state, graph, node_state)
                    rows.append(embedding.data)
                result = np.stack(rows)
        self.model.train()
        return result

    def predict(self, embeddings: np.ndarray) -> np.ndarray:
        """Class predictions from embeddings."""
        with no_grad():
            logits = self.model.logits(Tensor(embeddings))
        return logits.data.argmax(axis=1)
