"""Named WIDEN variants reproducing every row of the paper's Table 4.

Each entry maps the paper's row label to :class:`WidenConfig` overrides;
:func:`make_variant_config` applies them to a base config.  The two random-
downsampling rows randomize exactly one side (the KL trigger is bypassed for
that side, as the paper specifies) while the other side keeps the default
attentive strategy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.config import WidenConfig

ABLATION_VARIANTS: Dict[str, Dict[str, object]] = {
    "default": {},
    "no_downsampling": {"downsample_mode": "off"},
    "no_wide": {"use_wide": False},
    "no_deep": {"use_deep": False},
    "no_successive": {"use_successive": False},
    "no_relay": {"use_relay": False},
    "random_wide_downsampling": {"wide_downsample": "random"},
    "random_deep_downsampling": {"deep_downsample": "random"},
}
"""Variant name -> config overrides (paper Table 4 row labels)."""

PAPER_ROW_LABELS: Dict[str, str] = {
    "default": "Default",
    "no_downsampling": "No Downsampling",
    "no_wide": "Removing Wide Neighbors",
    "no_deep": "Removing Deep Neighbors",
    "no_successive": "Removing Successive Self-Attention",
    "no_relay": "Removing Relay Edges",
    "random_wide_downsampling": "Random Downsampling for W(t)",
    "random_deep_downsampling": "Random Downsampling for D(t)",
}


def make_variant_config(base: WidenConfig, variant: str) -> WidenConfig:
    """Return a copy of ``base`` realizing a Table-4 variant."""
    if variant not in ABLATION_VARIANTS:
        raise KeyError(
            f"unknown ablation variant {variant!r}; choose from "
            f"{sorted(ABLATION_VARIANTS)}"
        )
    return dataclasses.replace(base, **ABLATION_VARIANTS[variant])
