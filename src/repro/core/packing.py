"""Batch packing for the vectorized forward path.

The per-node reference path (:meth:`WidenModel.forward`) builds one small
``(L + 1, d)`` pack matrix per target and per walk and runs attention on
each — thousands of tiny op calls per epoch.  This module assembles the
*indices* for a whole minibatch up front so the model can execute the same
mathematics as a handful of batched tensor ops:

- every wide set becomes one row of a padded ``(B, Lw)`` index/etype grid;
- every deep walk becomes one row of a padded ``(B·Φ, Ld)`` grid;
- validity masks (1/0) zero out padded node rows at gather time, and
  additive attention masks (0/-inf) give padded slots exactly zero softmax
  weight — so padding is numerically inert, not approximately so.

Relay edges (Eq. 8) cannot be table lookups: they are re-evaluated against
current parameters each forward.  The pack records their flat positions so
:meth:`WidenModel.forward_batch` can splice the evaluated rows into the
edge matrix with one ``scatter_rows``.

Dropout reproducibility: the per-node path draws one mask per pack matrix
(wide, then each walk, then the hidden vector) in target order.  When the
dropout modules are passed in, :func:`pack_batch` consumes the rng streams
in exactly that order and assembles the draws into padded batch masks, so
the batched path's training losses are bit-identical to the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import WidenConfig
from repro.core.relay import RelayRecipe
from repro.core.state import NeighborState
from repro.graph import HeteroGraph
from repro.obs.metrics import get_registry

_NEG_INF = float("-inf")

# width -> strictly-lower-triangular -inf base for deep_causal_mask.
_CAUSAL_BASES: Dict[int, np.ndarray] = {}


@dataclass
class PackRows:
    """One target's materialized pack matrices, trimmed to true lengths.

    ``wide`` is the ``(|W| + 1, d)`` matrix ``M°`` (Eq. 1) and ``deep``
    holds Φ matrices ``M▷`` (Eq. 2), each ``(|D_j| + 1, d)`` with the
    target pack in row 0 — exactly the values :func:`pad_gather_mul`
    produces in eval mode, before any attention.  These rows are what
    ``repro.store`` persists: re-running attention + fuse over them
    (:meth:`WidenModel.forward_from_rows`) reproduces the full forward
    bit-for-bit without sampling, feature projection or edge gathers.
    """

    wide: Optional[np.ndarray]
    deep: List[np.ndarray]

    def nbytes(self) -> int:
        total = 0 if self.wide is None else self.wide.nbytes
        return total + sum(walk.nbytes for walk in self.deep)


def pad_pack_rows(rows: Sequence[np.ndarray], dim: int):
    """Stack trimmed pack matrices into a padded batch tensor + masks.

    Returns ``(padded, valid, attn_mask, lengths)`` with the identical
    padding convention as :func:`pack_batch`: padded slots are exactly
    zero and carry ``-inf`` additive mask entries, so attention over the
    reassembled tensor is bit-equal to attention over the original
    gather output — padding is numerically inert, not approximately so.
    """
    lengths = np.array([row.shape[0] for row in rows], np.int64)
    width = int(lengths.max())
    padded = np.zeros((len(rows), width, dim))
    valid = np.zeros((len(rows), width))
    for i, row in enumerate(rows):
        padded[i, : row.shape[0]] = row
        valid[i, : row.shape[0]] = 1.0
    attn_mask = np.where(valid > 0.0, 0.0, _NEG_INF)
    return padded, valid, attn_mask, lengths


def pad_block_masks(lengths: np.ndarray, width: int):
    """``(valid, attn_mask)`` for capacity-padded blocks, no Python loops.

    Store blocks are persisted zero-padded to a fixed capacity, so the
    serving hot path never re-packs rows — it only needs masks derived
    from the true lengths.  Padding to capacity instead of the batch
    maximum is numerically inert for the same reason :func:`pad_pack_rows`
    padding is: padded slots are exactly zero, carry ``-inf`` mask
    entries, and appending exact zeros to a summation changes nothing.
    """
    valid = (
        np.arange(width) < np.asarray(lengths, np.int64).reshape(-1, 1)
    ).astype(float)
    attn_mask = np.where(valid > 0.0, 0.0, _NEG_INF)
    return valid, attn_mask


def deep_causal_mask(valid: np.ndarray, attn_mask: np.ndarray) -> np.ndarray:
    """Causal mask Θ (Eq. 6) plus key padding for a padded walk batch.

    Padded *rows* would see only -inf (causal keeps j >= i, all of which
    are padding), which NaNs the softmax — let them attend to themselves
    instead: their packs are exactly zero, so the refined row stays zero
    and carries no gradient.
    """
    width = valid.shape[1]
    causal = _CAUSAL_BASES.get(width)
    if causal is None:
        # One strictly-lower-triangular -inf template per width; widths
        # are bounded by the deep sampling cap, so the cache stays tiny
        # while the serving hot path skips the tril rebuild per batch.
        causal = np.zeros((width, width))
        causal[np.tril_indices(width, k=-1)] = _NEG_INF
        _CAUSAL_BASES[width] = causal
    mask = causal[np.newaxis] + attn_mask[:, np.newaxis, :]
    pad_w, pad_i = np.nonzero(valid == 0.0)
    mask[pad_w, pad_i, pad_i] = 0.0
    return mask


def segment_offsets(lengths: np.ndarray) -> np.ndarray:
    """CSR boundaries ``(S + 1,)`` for segments of the given lengths."""
    lengths = np.asarray(lengths, np.int64)
    offsets = np.zeros(lengths.size + 1, np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Flat ``(P,)`` map from entry position to segment index."""
    offsets = np.asarray(offsets, np.int64)
    return np.repeat(
        np.arange(offsets.size - 1, dtype=np.int64), np.diff(offsets)
    )


def causal_pairs(offsets: np.ndarray):
    """Enumerate the (row, col) pairs the causal mask Θ (Eq. 6) keeps.

    For each flat pack row ``i`` in a segment ``[start, end)``, the causal
    self-attention attends to cols ``i..end-1`` (information flows from the
    walk's end back toward the target).  Returns
    ``(pair_rows, pair_cols, pair_offsets)`` where ``pair_offsets`` has one
    segment per *attending row* — exactly the pairs the padded kernel's
    ``tril(-inf)`` mask leaves finite, with no ``(W, Ld, Ld)`` grid.
    """
    offsets = np.asarray(offsets, np.int64)
    total = int(offsets[-1])
    lengths = np.diff(offsets)
    rows_range = np.arange(total, dtype=np.int64)
    counts = np.repeat(offsets[1:], lengths) - rows_range
    pair_offsets = np.zeros(total + 1, np.int64)
    np.cumsum(counts, out=pair_offsets[1:])
    pair_rows = np.repeat(rows_range, counts)
    pair_cols = (
        np.arange(int(pair_offsets[-1]), dtype=np.int64)
        - np.repeat(pair_offsets[:-1], counts)
        + pair_rows
    )
    return pair_rows, pair_cols, pair_offsets


def flat_slot_indices(lengths: np.ndarray, starts: np.ndarray):
    """Gather indices selecting the first ``lengths[i]`` slots per segment.

    ``starts[i]`` is segment ``i``'s base position in some flat row matrix
    (e.g. a capacity-padded store block reshaped to ``(B·R, d)``).  Returns
    ``(indices, offsets)`` where ``indices`` picks the valid slots of every
    segment back-to-back — the bridge from capacity-padded storage to the
    CSR kernels.
    """
    lengths = np.asarray(lengths, np.int64)
    starts = np.asarray(starts, np.int64)
    offsets = segment_offsets(lengths)
    total = int(offsets[-1])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lengths)
    return np.repeat(starts, lengths) + within, offsets


def _observe_padding(
    path: str, lengths: np.ndarray, width: int, materialized: bool
) -> None:
    """Export the padding-waste share of a pack's ``[B, L_max]`` grid.

    ``pack_padding_waste`` is the fraction of grid slots that are padding
    for this batch's geometry — the sparse packer reports the same number
    (the waste it *avoided*), so the gauge describes the workload's skew
    regardless of the active path.  The ``pack_slots_total`` counters only
    count slots actually materialized: under the sparse path the
    ``padding`` series stays flat, which is the observable win.
    """
    registry = get_registry()
    slots = int(lengths.shape[0]) * int(width)
    used = int(lengths.sum())
    waste = 0.0 if slots == 0 else 1.0 - used / slots
    registry.gauge("pack_padding_waste", path=path).set(waste)
    registry.counter("pack_slots_total", path=path, kind="valid").inc(used)
    if materialized:
        registry.counter("pack_slots_total", path=path, kind="padding").inc(
            slots - used
        )


def padded_waste(states: Sequence[NeighborState], config: WidenConfig) -> float:
    """Padding fraction the padded grids would carry for these states.

    The ``forward_mode="auto"`` dispatch compares this against the
    kernel-selection table's ``sparse_min_waste`` without building any
    grid: high-skew batches (a few hubs stretching ``L_max``) route to the
    CSR kernels, near-uniform ones keep the gemm-friendly padded path.
    """
    slots = 0
    used = 0
    if config.use_wide:
        lengths = [len(state.wide) + 1 for state in states]
        slots += len(lengths) * max(lengths)
        used += sum(lengths)
    if config.use_deep:
        lengths = [
            len(deep) + 1 for state in states for deep in state.deep
        ]
        if lengths:
            slots += len(lengths) * max(lengths)
            used += sum(lengths)
    return 0.0 if slots == 0 else 1.0 - used / slots


@dataclass
class PackedBatch:
    """Index-level description of a minibatch forward pass.

    Flat node-vector rows are laid out as ``[fresh target projections (B);
    unique neighbor embeddings (U)]``: slot indices below ``B`` address a
    target's trainable projection, the rest address ``neighbor_nodes``.
    All arrays are plain numpy — no gradients flow through the pack itself.
    """

    targets: np.ndarray            # (B,) target node ids
    neighbor_nodes: np.ndarray     # (U,) unique neighbor ids -> flat rows B..B+U-1

    # Wide grids, padded to Lw = max(|W_b| + 1); row layout: target pack first.
    wide_index: Optional[np.ndarray] = None       # (B, Lw) flat row per slot
    wide_valid: Optional[np.ndarray] = None       # (B, Lw) 1.0 valid / 0.0 pad
    wide_etypes: Optional[np.ndarray] = None      # (B, Lw) edge-type ids (pad: 0)
    wide_attn_mask: Optional[np.ndarray] = None   # (B, Lw) additive 0 / -inf
    wide_lengths: Optional[np.ndarray] = None     # (B,) valid packs incl. target

    # Deep grids: the B×Φ walks flatten to W = B·Φ rows, padded to Ld.
    num_walks: int = 0
    deep_index: Optional[np.ndarray] = None       # (W, Ld)
    deep_valid: Optional[np.ndarray] = None       # (W, Ld)
    deep_etypes: Optional[np.ndarray] = None      # (W, Ld)
    deep_attn_mask: Optional[np.ndarray] = None   # (W, Ld) for PASS▷'s query
    deep_causal_mask: Optional[np.ndarray] = None # (W, Ld, Ld) Θ + key padding
    deep_lengths: Optional[np.ndarray] = None     # (W,)
    deep_relay_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64)
    )                                             # flat rows into (W·Ld, d)
    deep_relays: List[RelayRecipe] = field(default_factory=list)

    # Scaled dropout masks drawn in per-node rng order (None in eval mode).
    wide_dropout: Optional[np.ndarray] = None     # (B, Lw, d)
    deep_dropout: Optional[np.ndarray] = None     # (W, Ld, d)
    hidden_dropout: Optional[np.ndarray] = None   # (B, d)

    @property
    def batch_size(self) -> int:
        return int(self.targets.shape[0])


def _draw(dropout, shape):
    return None if dropout is None else dropout.draw_mask(shape)


def pack_batch(
    targets: Sequence[int],
    states: Sequence[NeighborState],
    graph: HeteroGraph,
    config: WidenConfig,
    pack_dropout=None,
    hidden_dropout=None,
    dim: Optional[int] = None,
) -> PackedBatch:
    """Assemble padded index grids and masks for ``B`` targets.

    ``pack_dropout``/``hidden_dropout`` are the model's :class:`Dropout`
    modules (or ``None``); their rng streams are consumed in per-node order
    so training stays bit-identical with the reference path.  ``dim``
    defaults to ``config.dim`` and sizes the dropout masks.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch = targets.shape[0]
    if batch == 0:
        raise ValueError("pack_batch requires at least one target")
    if len(states) != batch:
        raise ValueError(f"{batch} targets but {len(states)} neighbor states")
    d = int(dim if dim is not None else config.dim)
    loop_types = graph.self_loop_types(targets)

    # ---- unique neighbor rows -----------------------------------------
    chunks: List[np.ndarray] = []
    if config.use_wide:
        chunks.extend(state.wide.nodes for state in states)
    if config.use_deep:
        chunks.extend(deep.nodes for state in states for deep in state.deep)
    if chunks:
        neighbor_nodes = np.unique(np.concatenate(chunks))
    else:
        neighbor_nodes = np.empty(0, np.int64)

    def flat_rows(nodes: np.ndarray) -> np.ndarray:
        return batch + np.searchsorted(neighbor_nodes, nodes)

    pack = PackedBatch(targets=targets, neighbor_nodes=neighbor_nodes)

    # ---- wide grids ----------------------------------------------------
    if config.use_wide:
        lengths = np.array([len(state.wide) + 1 for state in states], np.int64)
        width = int(lengths.max())
        index = np.zeros((batch, width), np.int64)
        valid = np.zeros((batch, width))
        etypes = np.zeros((batch, width), np.int64)
        index[:, 0] = np.arange(batch)
        etypes[:, 0] = loop_types
        for b, state in enumerate(states):
            wide = state.wide
            n = len(wide)
            if n:
                index[b, 1 : n + 1] = flat_rows(wide.nodes)
                etypes[b, 1 : n + 1] = wide.etypes
            valid[b, : n + 1] = 1.0
        pack.wide_index = index
        pack.wide_valid = valid
        pack.wide_etypes = etypes
        pack.wide_attn_mask = np.where(valid > 0.0, 0.0, _NEG_INF)
        pack.wide_lengths = lengths

    # ---- deep grids ----------------------------------------------------
    if config.use_deep:
        num_walks = len(states[0].deep)
        for state in states:
            if len(state.deep) != num_walks:
                raise ValueError("all targets must carry the same walk count Φ")
        pack.num_walks = num_walks
        walks = [deep for state in states for deep in state.deep]
        total = len(walks)
        lengths = np.array([len(deep) + 1 for deep in walks], np.int64)
        width = int(lengths.max())
        index = np.zeros((total, width), np.int64)
        valid = np.zeros((total, width))
        etypes = np.zeros((total, width), np.int64)
        relay_rows: List[int] = []
        relays: List[RelayRecipe] = []
        for w, deep in enumerate(walks):
            b = w // num_walks
            n = len(deep)
            index[w, 0] = b
            etypes[w, 0] = loop_types[b]
            if n:
                index[w, 1 : n + 1] = flat_rows(deep.nodes)
                etypes[w, 1 : n + 1] = deep.etypes
            valid[w, : n + 1] = 1.0
            for position, relay in enumerate(deep.relays):
                if relay is not None:
                    relay_rows.append(w * width + position + 1)
                    relays.append(relay)
        pack.deep_index = index
        pack.deep_valid = valid
        pack.deep_etypes = etypes
        pack.deep_attn_mask = np.where(valid > 0.0, 0.0, _NEG_INF)
        pack.deep_lengths = lengths
        pack.deep_relay_rows = np.asarray(relay_rows, np.int64)
        pack.deep_relays = relays

        pack.deep_causal_mask = deep_causal_mask(valid, pack.deep_attn_mask)

    if config.use_wide:
        _observe_padding(
            "wide", pack.wide_lengths, pack.wide_index.shape[1], True
        )
    if config.use_deep:
        _observe_padding(
            "deep", pack.deep_lengths, pack.deep_index.shape[1], True
        )

    # ---- dropout draws in per-node order -------------------------------
    wide_drop = deep_drop = hidden_drop = None
    for b in range(batch):
        if config.use_wide:
            mask = _draw(pack_dropout, (int(pack.wide_lengths[b]), d))
            if mask is not None:
                if wide_drop is None:
                    wide_drop = np.ones((batch,) + pack.wide_index.shape[1:] + (d,))
                wide_drop[b, : mask.shape[0]] = mask
        if config.use_deep:
            for j in range(pack.num_walks):
                w = b * pack.num_walks + j
                mask = _draw(pack_dropout, (int(pack.deep_lengths[w]), d))
                if mask is not None:
                    if deep_drop is None:
                        deep_drop = np.ones(
                            (total,) + pack.deep_index.shape[1:] + (d,)
                        )
                    deep_drop[w, : mask.shape[0]] = mask
        mask = _draw(hidden_dropout, (d,))
        if mask is not None:
            if hidden_drop is None:
                hidden_drop = np.ones((batch, d))
            hidden_drop[b] = mask
    pack.wide_dropout = wide_drop
    pack.deep_dropout = deep_drop
    pack.hidden_dropout = hidden_drop
    return pack


@dataclass
class SparseBatch:
    """CSR description of a minibatch forward — flat edge arrays, no grids.

    Same flat node-row convention as :class:`PackedBatch` (``[fresh target
    projections (B); unique neighbor embeddings (U)]``), but pack rows live
    in flat ``(E,)`` arrays segmented by CSR ``offsets`` instead of padded
    ``[B, L_max]`` grids.  Work downstream is proportional to real pack
    rows, so high-skew batches pay nothing for their hubs' long tails.
    """

    targets: np.ndarray            # (B,) target node ids
    neighbor_nodes: np.ndarray     # (U,) unique neighbor ids -> flat rows B..B+U-1

    # Wide CSR: segment b = target b's pack rows, target pack first.
    wide_src: Optional[np.ndarray] = None       # (Ew,) flat node row per pack
    wide_etypes: Optional[np.ndarray] = None    # (Ew,) edge-type ids
    wide_offsets: Optional[np.ndarray] = None   # (B + 1,)
    wide_seg_ids: Optional[np.ndarray] = None   # (Ew,) pack -> target
    wide_lengths: Optional[np.ndarray] = None   # (B,) incl. target pack

    # Deep CSR: segment w = walk w's pack rows (w = b * Φ + j).
    num_walks: int = 0
    deep_src: Optional[np.ndarray] = None       # (Ed,)
    deep_etypes: Optional[np.ndarray] = None    # (Ed,)
    deep_offsets: Optional[np.ndarray] = None   # (W + 1,)
    deep_seg_ids: Optional[np.ndarray] = None   # (Ed,) pack -> walk
    deep_lengths: Optional[np.ndarray] = None   # (W,)
    # Causal pair arrays for the successive self-attention (Eq. 4/6);
    # None when config.use_successive is off.
    pair_rows: Optional[np.ndarray] = None      # (P,)
    pair_cols: Optional[np.ndarray] = None      # (P,)
    pair_offsets: Optional[np.ndarray] = None   # (Ed + 1,)
    deep_relay_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64)
    )                                           # flat rows into (Ed, d)
    deep_relays: List[RelayRecipe] = field(default_factory=list)

    # Scaled dropout masks drawn in per-node rng order (None in eval mode).
    wide_dropout: Optional[np.ndarray] = None   # (Ew, d)
    deep_dropout: Optional[np.ndarray] = None   # (Ed, d)
    hidden_dropout: Optional[np.ndarray] = None # (B, d)

    @property
    def batch_size(self) -> int:
        return int(self.targets.shape[0])


def pack_batch_sparse(
    targets: Sequence[int],
    states: Sequence[NeighborState],
    graph: HeteroGraph,
    config: WidenConfig,
    pack_dropout=None,
    hidden_dropout=None,
    dim: Optional[int] = None,
) -> SparseBatch:
    """Assemble flat CSR pack arrays for ``B`` targets — no padding.

    Row layout inside each segment matches :func:`pack_batch` (target pack
    first, then sampled neighbors in state order), and the dropout rng
    streams are consumed in the identical per-node order with the identical
    true-length shapes — so the drawn masks equal the padded masks at every
    valid slot, bit for bit, and training losses agree across paths.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch = targets.shape[0]
    if batch == 0:
        raise ValueError("pack_batch_sparse requires at least one target")
    if len(states) != batch:
        raise ValueError(f"{batch} targets but {len(states)} neighbor states")
    d = int(dim if dim is not None else config.dim)
    loop_types = graph.self_loop_types(targets)

    chunks: List[np.ndarray] = []
    if config.use_wide:
        chunks.extend(state.wide.nodes for state in states)
    if config.use_deep:
        chunks.extend(deep.nodes for state in states for deep in state.deep)
    if chunks:
        neighbor_nodes = np.unique(np.concatenate(chunks))
    else:
        neighbor_nodes = np.empty(0, np.int64)

    def flat_rows(nodes: np.ndarray) -> np.ndarray:
        return batch + np.searchsorted(neighbor_nodes, nodes)

    pack = SparseBatch(targets=targets, neighbor_nodes=neighbor_nodes)

    # ---- wide CSR ------------------------------------------------------
    if config.use_wide:
        lengths = np.array([len(state.wide) + 1 for state in states], np.int64)
        offsets = segment_offsets(lengths)
        src = np.empty(int(offsets[-1]), np.int64)
        etypes = np.empty(int(offsets[-1]), np.int64)
        for b, state in enumerate(states):
            start = int(offsets[b])
            src[start] = b
            etypes[start] = loop_types[b]
            wide = state.wide
            n = len(wide)
            if n:
                src[start + 1 : start + 1 + n] = flat_rows(wide.nodes)
                etypes[start + 1 : start + 1 + n] = wide.etypes
        pack.wide_src = src
        pack.wide_etypes = etypes
        pack.wide_offsets = offsets
        pack.wide_seg_ids = segment_ids(offsets)
        pack.wide_lengths = lengths
        _observe_padding("wide", lengths, int(lengths.max()), False)

    # ---- deep CSR ------------------------------------------------------
    if config.use_deep:
        num_walks = len(states[0].deep)
        for state in states:
            if len(state.deep) != num_walks:
                raise ValueError("all targets must carry the same walk count Φ")
        pack.num_walks = num_walks
        walks = [deep for state in states for deep in state.deep]
        lengths = np.array([len(deep) + 1 for deep in walks], np.int64)
        offsets = segment_offsets(lengths)
        src = np.empty(int(offsets[-1]), np.int64)
        etypes = np.empty(int(offsets[-1]), np.int64)
        relay_rows: List[int] = []
        relays: List[RelayRecipe] = []
        for w, deep in enumerate(walks):
            b = w // num_walks
            start = int(offsets[w])
            src[start] = b
            etypes[start] = loop_types[b]
            n = len(deep)
            if n:
                src[start + 1 : start + 1 + n] = flat_rows(deep.nodes)
                etypes[start + 1 : start + 1 + n] = deep.etypes
            for position, relay in enumerate(deep.relays):
                if relay is not None:
                    relay_rows.append(start + position + 1)
                    relays.append(relay)
        pack.deep_src = src
        pack.deep_etypes = etypes
        pack.deep_offsets = offsets
        pack.deep_seg_ids = segment_ids(offsets)
        pack.deep_lengths = lengths
        pack.deep_relay_rows = np.asarray(relay_rows, np.int64)
        pack.deep_relays = relays
        if config.use_successive:
            pack.pair_rows, pack.pair_cols, pack.pair_offsets = causal_pairs(
                offsets
            )
        _observe_padding("deep", lengths, int(lengths.max()), False)

    # ---- dropout draws in per-node order -------------------------------
    wide_drop = deep_drop = hidden_drop = None
    for b in range(batch):
        if config.use_wide:
            mask = _draw(pack_dropout, (int(pack.wide_lengths[b]), d))
            if mask is not None:
                if wide_drop is None:
                    wide_drop = np.ones((int(pack.wide_offsets[-1]), d))
                start = int(pack.wide_offsets[b])
                wide_drop[start : start + mask.shape[0]] = mask
        if config.use_deep:
            for j in range(pack.num_walks):
                w = b * pack.num_walks + j
                mask = _draw(pack_dropout, (int(pack.deep_lengths[w]), d))
                if mask is not None:
                    if deep_drop is None:
                        deep_drop = np.ones((int(pack.deep_offsets[-1]), d))
                    start = int(pack.deep_offsets[w])
                    deep_drop[start : start + mask.shape[0]] = mask
        mask = _draw(hidden_dropout, (d,))
        if mask is not None:
            if hidden_drop is None:
                hidden_drop = np.ones((batch, d))
            hidden_drop[b] = mask
    pack.wide_dropout = wide_drop
    pack.deep_dropout = deep_drop
    pack.hidden_dropout = hidden_drop
    return pack
