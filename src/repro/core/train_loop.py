"""Phase-driven training loop shared by single-process and distributed runs.

:class:`~repro.core.trainer.WidenTrainer` decomposes Algorithm 3 into
composable phases — neighbor-state setup + minibatch schedule
(``epoch_begin``), local forward/backward (``run_microbatch``), gradient
export (``export_grads``), clipped optimizer step (``apply_update``) and
the per-epoch stats barrier (``epoch_finish``).  :class:`TrainLoop` is the
driver that sequences those phases over one or many *clients*:

- a single :class:`LocalTrainClient` wrapping a trainer in this process —
  the classic ``WidenTrainer.fit`` path, bit-identical to the pre-phase
  monolith (losses, F1 series, rng-consumption order, trigger fires);
- a fleet of :class:`~repro.cluster.train.TrainWorker` stubs, each backed
  by a partition-local :class:`~repro.cluster.train.TrainEngine` behind a
  pluggable transport (``inline``/``thread``/``mp``/``socket``).

The data-parallel contract mirrors the serving cluster's: every client
holds a full model replica and consumes identical rng streams, so the
epoch schedule (one ``shuffle_rng.permutation`` per epoch) is computed
*locally and identically* on every shard — a microbatch crosses the wire
as nothing but its start offset.  Each shard trains on the slice of the
global microbatch it owns; the loop gathers contributor gradients,
reduces them by row-count weights (``Σ (n_i / n) · g_i`` — exactly the
gradient of the full batch's mean loss), computes ONE global norm
(:func:`repro.optim.global_grad_norm`), and ships ``(grads, norm)`` back
to every client.  All replicas therefore apply the same clipped update
and the same Adam step count every global step, which keeps them bitwise
aligned for the whole run.  With a single client the reduction
short-circuits to the client's own gradient arrays, unscaled — the
1-shard configuration *is* the single-process loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.eval.metrics import macro_f1, micro_f1
from repro.obs import MetricsRegistry, Timer, get_registry
from repro.obs.tracing import span as trace_span
from repro.optim import global_grad_norm

__all__ = [
    "LocalTrainClient",
    "TrainHistory",
    "TrainLoop",
    "reduce_gradients",
]


@dataclass
class TrainHistory:
    """Per-epoch records produced by :meth:`WidenTrainer.fit`.

    ``wide_messages`` / ``deep_messages`` count the message packs that
    actually flowed through PASS° / PASS▷ that epoch (set size + 1 target
    pack per forward) — the structural quantity behind the paper's
    efficiency figures, and what the downsampling tests assert on instead
    of wall-clock seconds.
    """

    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    wide_drops: List[int] = field(default_factory=list)
    deep_drops: List[int] = field(default_factory=list)
    wide_messages: List[int] = field(default_factory=list)
    deep_messages: List[int] = field(default_factory=list)
    trigger_checks: List[int] = field(default_factory=list)
    trigger_fires: List[int] = field(default_factory=list)
    train_micro_f1: List[float] = field(default_factory=list)
    train_macro_f1: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.losses)

    @property
    def messages(self) -> List[int]:
        """Total packs per epoch (wide + deep)."""
        return [w + d for w, d in zip(self.wide_messages, self.deep_messages)]


class _Immediate:
    """Pending-reply shim for results that already exist (local clients)."""

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        self._value = value

    def result(self, timeout: Optional[float] = None):
        return self._value


class LocalTrainClient:
    """A :class:`TrainLoop` client driving a trainer in this process.

    Every method returns a pending-style handle (``.result()``) so the
    loop's scatter-gather code is identical for local trainers and remote
    :class:`~repro.cluster.train.TrainWorker` stubs.  Gradients cross this
    "boundary" as live array references — zero copies, zero overhead —
    which is what keeps the phase-based single-process path bit-identical
    to (and as fast as) the old monolithic epoch loop.
    """

    def __init__(self, trainer) -> None:
        self.trainer = trainer

    def begin_epoch(self, train_nodes: np.ndarray) -> _Immediate:
        return _Immediate(self.trainer.epoch_begin(train_nodes))

    def run_microbatch(self, start: int) -> _Immediate:
        return _Immediate(self.trainer.run_microbatch(start))

    def export_grads(self) -> _Immediate:
        return _Immediate(self.trainer.export_grads())

    def apply_update(self, grads, norm: Optional[float]) -> _Immediate:
        self.trainer.apply_update(grads, norm=norm)
        return _Immediate(None)

    def finish_epoch(self) -> _Immediate:
        return _Immediate(self.trainer.epoch_finish())


def reduce_gradients(
    grad_lists: Sequence[list], counts: Sequence[int], total: int
) -> list:
    """Row-count-weighted mean of per-shard gradient lists.

    Each contributor's loss is the *mean* over its own rows, so the full
    batch's mean-loss gradient is ``Σ (n_i / total) · g_i`` per parameter.
    A parameter some shard never touched contributes ``None`` and is
    treated as zero; all-``None`` stays ``None`` (the optimizer skips it).
    A single contributor returns its gradient arrays untouched — no
    ``1.0 *`` rescale — so the 1-shard path carries the exact bits of a
    single-process backward.
    """
    if len(grad_lists) == 1:
        return list(grad_lists[0])
    lengths = {len(grads) for grads in grad_lists}
    if len(lengths) != 1:
        raise ValueError(f"gradient lists disagree on length: {sorted(lengths)}")
    reduced = []
    for slot in range(lengths.pop()):
        accumulated = None
        for grads, count in zip(grad_lists, counts):
            grad = grads[slot]
            if grad is None:
                continue
            term = (count / total) * grad
            accumulated = term if accumulated is None else accumulated + term
        reduced.append(accumulated)
    return reduced


class TrainLoop:
    """Drives training phases over one or many clients (Algorithm 3).

    One instance owns the epoch-level bookkeeping the old monolithic
    ``WidenTrainer.fit`` did: the :class:`TrainHistory`, the per-epoch
    metric series, the message counters.  Clients own everything
    graph-bound: neighbor states, forwards/backwards, the optimizer.
    """

    def __init__(
        self,
        clients: Sequence,
        config,
        *,
        registry: Optional[MetricsRegistry] = None,
        history: Optional[TrainHistory] = None,
        request_timeout: Optional[float] = 600.0,
    ) -> None:
        if not clients:
            raise ValueError("TrainLoop needs at least one client")
        self.clients = list(clients)
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.history = history if history is not None else TrainHistory()
        self.request_timeout = request_timeout
        self._distributed = len(self.clients) > 1
        # Logical service clock (same convention as the serving cluster
        # bench): per phase, the span is the *slowest client's measured
        # compute* — engines stamp their handler time into each reply —
        # plus the coordinator's sequential gather/reduce/ship wall time.
        # On a multi-core host this tracks the wall clock; on a 1-core CI
        # box it is where shard parallelism shows up honestly, as span
        # compression rather than wishful wall-clock arithmetic.  Local
        # clients stamp no compute time, so this stays ~0 single-process.
        self.logical_seconds = 0.0
        # Sync observability, meaningful only when gradients cross a shard
        # boundary: reduction wall-clock and bytes moved per global step.
        self._reduce_seconds = None
        self._sync_bytes = None
        if self._distributed:
            self._reduce_seconds = self.registry.histogram(
                "train_grad_reduce_seconds"
            )
            self._sync_bytes = self.registry.counter("train_sync_bytes_total")

    # ------------------------------------------------------------------
    # Scatter-gather plumbing
    # ------------------------------------------------------------------

    def _gather(self, pendings: list) -> list:
        return [pending.result(self.request_timeout) for pending in pendings]

    @staticmethod
    def _slowest(replies: list) -> float:
        """Max engine-stamped compute seconds across a gathered phase."""
        return max(
            (float(reply.get("seconds") or 0.0) for reply in replies),
            default=0.0,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def run(self, train_nodes: np.ndarray, epochs: int) -> TrainHistory:
        """Run ``epochs`` epochs of ``train_nodes`` over every client."""
        train_nodes = np.asarray(train_nodes, dtype=np.int64)
        for _ in range(epochs):
            self._run_epoch(train_nodes)
        return self.history

    def _run_epoch(self, train_nodes: np.ndarray) -> None:
        with Timer() as timer:
            begins = self._gather(
                [client.begin_epoch(train_nodes) for client in self.clients]
            )
            epochs = {int(begin["epoch"]) for begin in begins}
            sizes = {int(begin["num_nodes"]) for begin in begins}
            if len(epochs) != 1 or len(sizes) != 1:
                raise RuntimeError(
                    f"clients disagree on epoch schedule: epochs={sorted(epochs)}, "
                    f"sizes={sorted(sizes)} — replicas have diverged"
                )
            epoch = epochs.pop()
            size = sizes.pop()
            self.logical_seconds += self._slowest(begins)
            with trace_span("trainer.epoch", epoch=epoch):
                batch_size = max(1, int(self.config.batch_size))
                for start in range(0, size, batch_size):
                    self._run_step(start)
                finishes = self._gather(
                    [client.finish_epoch() for client in self.clients]
                )
            self.logical_seconds += self._slowest(finishes)
        seconds = timer.laps[-1]
        stats, loss = self._merge_epoch(finishes)
        self._record_epoch(epoch, loss, seconds, stats)

    def _run_step(self, start: int) -> None:
        """One global microbatch: local backward everywhere, one reduction,
        one synchronized clipped optimizer step on every replica."""
        replies = self._gather(
            [client.run_microbatch(start) for client in self.clients]
        )
        self.logical_seconds += self._slowest(replies)
        counts = [int(reply["count"]) for reply in replies]
        total = sum(counts)
        contributors = [i for i, count in enumerate(counts) if count > 0]
        if not contributors:
            raise RuntimeError(
                f"no client owns any node of the microbatch at offset {start}"
            )
        with Timer() as reduce_timer:
            grad_lists = self._gather(
                [self.clients[i].export_grads() for i in contributors]
            )
            reduced = reduce_gradients(
                grad_lists, [counts[i] for i in contributors], total
            )
            norm = (
                global_grad_norm(reduced)
                if self.config.grad_clip > 0
                else None
            )
            self._gather(
                [client.apply_update(reduced, norm) for client in self.clients]
            )
        # The sync leg (gather + reduce + norm + ship/apply) is coordinator
        # wall time — sequential by construction, so it goes on the logical
        # clock at face value.
        self.logical_seconds += reduce_timer.laps[-1]
        if self._distributed:
            self._reduce_seconds.observe(reduce_timer.laps[-1])
            gathered = sum(
                grad.nbytes
                for grads in grad_lists
                for grad in grads
                if grad is not None
            )
            shipped = sum(
                grad.nbytes for grad in reduced if grad is not None
            ) * len(self.clients)
            self._sync_bytes.inc(gathered + shipped)

    # ------------------------------------------------------------------
    # Epoch merge + recording
    # ------------------------------------------------------------------

    @staticmethod
    def _merge_epoch(finishes: List[dict]):
        """Merge per-client epoch payloads into one stats dict.

        Loss is the node-weighted mean (``Σ loss_sum / Σ nodes``), counters
        sum, and F1 is computed over the concatenated (label, prediction)
        pairs — micro/macro F1 are pooled confusion-matrix metrics, so pair
        order cannot change the answer; with one client the concatenation
        *is* the single-process epoch's array, bit for bit.
        """
        loss_sum = sum(float(finish["loss_sum"]) for finish in finishes)
        node_count = sum(int(finish["node_count"]) for finish in finishes)
        labels = np.concatenate(
            [np.asarray(finish["labels"], dtype=np.int64) for finish in finishes]
        )
        predictions = np.concatenate(
            [
                np.asarray(finish["predictions"], dtype=np.int64)
                for finish in finishes
            ]
        )
        kl_values = [
            float(value) for finish in finishes for value in finish["kl_values"]
        ]
        stats = {
            "wide_drops": sum(int(f["wide_drops"]) for f in finishes),
            "deep_drops": sum(int(f["deep_drops"]) for f in finishes),
            "wide_messages": sum(int(f["wide_messages"]) for f in finishes),
            "deep_messages": sum(int(f["deep_messages"]) for f in finishes),
            "trigger_checks": sum(int(f["trigger_checks"]) for f in finishes),
            "trigger_fires": sum(int(f["trigger_fires"]) for f in finishes),
            "kl_mean": float(np.mean(kl_values)) if kl_values else None,
            "micro_f1": micro_f1(labels, predictions),
            "macro_f1": macro_f1(labels, predictions),
        }
        return stats, loss_sum / max(node_count, 1)

    def _record_epoch(
        self, epoch: int, loss: float, seconds: float, stats: dict
    ) -> None:
        history = self.history
        registry = self.registry
        history.losses.append(loss)
        history.epoch_seconds.append(seconds)
        history.wide_drops.append(stats["wide_drops"])
        history.deep_drops.append(stats["deep_drops"])
        history.wide_messages.append(stats["wide_messages"])
        history.deep_messages.append(stats["deep_messages"])
        history.trigger_checks.append(stats["trigger_checks"])
        history.trigger_fires.append(stats["trigger_fires"])
        history.train_micro_f1.append(stats["micro_f1"])
        history.train_macro_f1.append(stats["macro_f1"])
        # Stepped series: the Fig.-4/5-style efficiency story, one point
        # per epoch, replayable straight out of metrics.jsonl.
        registry.emit("train/loss", loss, step=epoch)
        registry.emit("train/epoch_seconds", seconds, step=epoch)
        registry.emit("train/micro_f1", stats["micro_f1"], step=epoch)
        registry.emit("train/macro_f1", stats["macro_f1"], step=epoch)
        registry.emit(
            "train/messages", stats["wide_messages"], step=epoch, path="wide"
        )
        registry.emit(
            "train/messages", stats["deep_messages"], step=epoch, path="deep"
        )
        registry.emit("train/drops", stats["wide_drops"], step=epoch, path="wide")
        registry.emit("train/drops", stats["deep_drops"], step=epoch, path="deep")
        registry.emit("train/kl_trigger_checks", stats["trigger_checks"], step=epoch)
        registry.emit("train/kl_trigger_fires", stats["trigger_fires"], step=epoch)
        if stats["kl_mean"] is not None:
            registry.emit("train/kl_divergence_mean", stats["kl_mean"], step=epoch)
        registry.counter("train_messages_total", path="wide").inc(
            stats["wide_messages"]
        )
        registry.counter("train_messages_total", path="deep").inc(
            stats["deep_messages"]
        )
