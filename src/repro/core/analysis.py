"""Post-hoc analysis of what WIDEN's attention learned.

The paper's central mechanism claim is that the self-attentive message
passing "distinguish[es] the varied contributions from all heterogeneous
message packs" — i.e. the model learns which *relations* matter.  These
utilities make that inspectable: they aggregate attention mass per edge type
across many target nodes, which both the tests and downstream users can use
to verify that informative relations (e.g. authorship) receive more weight
than noisy ones (e.g. broad subject tags).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.trainer import WidenTrainer
from repro.tensor import no_grad


def edge_type_attention_profile(
    trainer: WidenTrainer, nodes: Sequence[int]
) -> Dict[str, float]:
    """Mean wide-attention weight per edge type across ``nodes``.

    For each target node, runs a forward pass and attributes each neighbor
    pack's attention weight to the edge type connecting it.  Returns
    ``{edge_type_name: mean weight}`` (plus ``"self"`` for the target's own
    pack), normalized so a type attracting more attention *per pack* scores
    higher regardless of how many packs it contributes.
    """
    graph = trainer.graph
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    trainer.model.eval()
    with no_grad():
        for node in nodes:
            state = trainer.store.get(int(node))
            _, wide_attention, _ = trainer.model(
                int(node), state, graph, trainer.node_state
            )
            if wide_attention is None:
                continue
            totals["self"] = totals.get("self", 0.0) + float(wide_attention[0])
            counts["self"] = counts.get("self", 0) + 1
            for weight, etype in zip(wide_attention[1:], state.wide.etypes):
                name = graph.edge_type_names[int(etype)]
                totals[name] = totals.get(name, 0.0) + float(weight)
                counts[name] = counts.get(name, 0) + 1
    trainer.model.train()
    return {name: totals[name] / counts[name] for name in totals}


def downsampling_summary(trainer: WidenTrainer, nodes: Sequence[int]) -> Dict[str, float]:
    """How far active downsampling compressed the neighbor sets.

    Returns mean wide/deep set sizes, relay counts, and maximum relay
    nesting depth over ``nodes`` — the structural footprint of Algorithms
    1-2 after training.
    """
    from repro.core.relay import RelayRecipe

    wide_sizes = []
    deep_sizes = []
    relay_count = 0
    max_depth = 0
    for node in nodes:
        state = trainer.store.get(int(node))
        wide_sizes.append(len(state.wide))
        for deep in state.deep:
            deep_sizes.append(len(deep))
            for relay in deep.relays:
                if isinstance(relay, RelayRecipe):
                    relay_count += 1
                    max_depth = max(max_depth, relay.depth())
    return {
        "mean_wide_size": float(np.mean(wide_sizes)) if wide_sizes else 0.0,
        "mean_deep_size": float(np.mean(deep_sizes)) if deep_sizes else 0.0,
        "relay_count": float(relay_count),
        "max_relay_depth": float(max_depth),
    }
