"""Downsampling steps: Algorithm 1 (wide) and Algorithm 2 (deep).

The deep pruning step implements **contextualized relay edges** (Eq. 8 and
Fig. 2 of the paper).  When the pack at position ``s'`` is deleted from a
deep sequence, its successor's edge must not simply rejoin the sequence —
that would fabricate a relation that never existed ("T. Kipf authored ResNet
Paper" in the paper's example).  Instead the successor's edge becomes::

    relay = maxpool(e_{s'+1,s'}, m_{s'})        # Eq. 8
    m_{s'+1} <- v_{s'+1} ⊙ relay

Because ``m_{s'}`` is computed from *trainable* node projections and edge
embeddings, we do not bake the relay into a constant vector.  We store a
:class:`RelayRecipe` — the symbolic composition — and re-evaluate it with
current parameters on every forward pass, keeping the relay differentiable
end to end.  Repeated prunes nest recipes naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.graph.sampling import DeepNeighborSet, WideNeighborSet

EdgeSpecLike = Union[int, "RelayRecipe"]


@dataclass(frozen=True)
class RelayRecipe:
    """Symbolic contextualized relay edge.

    Evaluates (in :meth:`WidenModel.edge_vector`) to::

        maxpool(edge_vector(outer), v[deleted_node] ⊙ edge_vector(deleted))

    ``outer`` is the surviving pack's previous edge spec (``e_{s'+1,s'}``);
    ``deleted_node``/``deleted`` reconstruct the deleted pack ``m_{s'}``.
    Specs are either plain edge-type ids or nested recipes from earlier
    prunes.
    """

    outer: EdgeSpecLike
    deleted_node: int
    deleted: EdgeSpecLike

    def depth(self) -> int:
        """Nesting depth (1 for a first prune), used in tests/diagnostics."""
        inner = 0
        for spec in (self.outer, self.deleted):
            if isinstance(spec, RelayRecipe):
                inner = max(inner, spec.depth())
        return inner + 1


def shrink_wide(wide: WideNeighborSet, weights: np.ndarray) -> WideNeighborSet:
    """Algorithm 1: drop the wide neighbor with the smallest attention.

    ``weights`` is the full attention distribution over ``len(wide) + 1``
    packs, position 0 being the target's own pack ``m_t°`` (excluded from
    deletion, line 3 of Algorithm 1).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(wide) + 1,):
        raise ValueError(
            f"expected {len(wide) + 1} attention weights, got {weights.shape}"
        )
    if len(wide) == 0:
        raise ValueError("cannot shrink an empty wide neighbor set")
    victim = int(np.argmin(weights[1:]))
    return wide.drop(victim)


def prune_deep(
    deep: DeepNeighborSet, weights: np.ndarray, use_relay: bool = True
) -> DeepNeighborSet:
    """Algorithm 2: prune one deep pack, installing a relay edge (Eq. 8).

    ``weights`` covers ``len(deep) + 1`` packs with the target's pack first.
    With ``use_relay=False`` (the Table-4 "Removing Relay Edges" ablation)
    the deleted pack is discarded outright and the successor keeps — i.e.
    falsifies — its original edge.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(deep) + 1,):
        raise ValueError(
            f"expected {len(deep) + 1} attention weights, got {weights.shape}"
        )
    if len(deep) == 0:
        raise ValueError("cannot prune an empty deep neighbor set")
    victim = int(np.argmin(weights[1:]))

    nodes = np.delete(deep.nodes, victim)
    etypes = np.delete(deep.etypes, victim)
    relays = list(deep.relays)
    deleted_node = int(deep.nodes[victim])
    deleted_spec: EdgeSpecLike = (
        relays[victim] if relays[victim] is not None else int(deep.etypes[victim])
    )
    del relays[victim]
    if use_relay and victim < len(deep) - 1:
        # The old position victim+1 is now at index `victim` after deletion.
        successor_old_spec: EdgeSpecLike = (
            relays[victim] if relays[victim] is not None else int(etypes[victim])
        )
        relays[victim] = RelayRecipe(
            outer=successor_old_spec,
            deleted_node=deleted_node,
            deleted=deleted_spec,
        )
    return DeepNeighborSet(deep.target, nodes, etypes, relays)
