"""Adapter exposing WIDEN through the shared baseline interface.

Benchmarks and protocol runners treat every model as a
:class:`~repro.baselines.common.BaseClassifier`; this wraps
:class:`WidenModel` + :class:`WidenTrainer` behind that interface so WIDEN
slots into the same harness rows as the baselines.

Persistence: :meth:`WidenClassifier.save` writes a *self-describing*
checkpoint — parameters plus hyperparameters, seed and the dataset schema
the model was trained against — and :meth:`WidenClassifier.load` rebuilds a
ready-to-serve classifier from it without a training graph.  This replaces
the old ``fit(graph, nodes, epochs=0)`` build-only hack;
:meth:`~repro.nn.module.Module.save`/``load`` remain the low-level
parameter-array layer underneath.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
from typing import Optional

import numpy as np

from repro.baselines.common import BaseClassifier
from repro.core.config import WidenConfig
from repro.core.model import WidenModel
from repro.core.state import NeighborStateStore
from repro.core.trainer import WidenTrainer
from repro.graph import HeteroGraph
from repro.tensor import no_grad
from repro.utils.rng import SeedLike, new_rng, spawn_rngs

CHECKPOINT_KEY = "__checkpoint__"
TRAINER_STATE_KEY = "__trainer_state__"
# Array keys that are checkpoint plumbing, not model parameters.
RESERVED_KEYS = frozenset({CHECKPOINT_KEY, TRAINER_STATE_KEY})
# v2 added the trainer's rng stream snapshot ("trainer_rng"); v3 adds the
# training-progress blob (optimizer moments + step count, epoch counter,
# neighbor-store states, node-state table) so training resumes *exactly*.
# Readers accept any version <= current (each addition is optional on
# read) and refuse newer ones; ``migrate_checkpoint`` rewrites old files
# in the current layout.
CHECKPOINT_FORMAT_VERSION = 3


class WidenClassifier(BaseClassifier):
    """WIDEN as a drop-in classifier."""

    name = "widen"

    def __init__(
        self,
        config: Optional[WidenConfig] = None,
        seed: SeedLike = None,
        **config_overrides,
    ) -> None:
        super().__init__()
        if config is None:
            defaults = dict(
                dim=32, num_wide=10, num_deep=8, num_deep_walks=2,
                learning_rate=1e-2, dropout=0.5,
            )
            defaults.update(config_overrides)
            config = WidenConfig(**defaults)
        elif config_overrides:
            import dataclasses

            config = dataclasses.replace(config, **config_overrides)
        self.config = config
        # Remember the original seed when it round-trips through JSON; a
        # caller-supplied Generator has consumed state we cannot serialize.
        self._seed = int(seed) if isinstance(seed, (int, np.integer)) else None
        self._model_seed, self._trainer_seed, self._eval_seed = spawn_rngs(seed, 3)
        self.model: Optional[WidenModel] = None
        self.trainer: Optional[WidenTrainer] = None
        self._schema: Optional[dict] = None
        # Checkpoint snapshots applied by the next bind(): rng streams (v2)
        # and training progress (v3).
        self._pending_rng_state: Optional[dict] = None
        self._pending_training_state: Optional[dict] = None

    def _build(self, graph: HeteroGraph) -> None:
        self._schema = self._graph_schema(graph)
        self.model = WidenModel(
            graph.features.shape[1],
            graph.num_edge_types_with_loops,
            graph.num_classes,
            self.config,
            seed=self._model_seed,
        )
        self.trainer = WidenTrainer(self.model, graph, self.config, seed=self._trainer_seed)

    def _on_rebind(self, graph: HeteroGraph) -> None:
        # Keep the trained parameters; rebuild the graph-bound trainer state
        # (neighbor stores, embedding table) for the new graph.
        self.trainer = WidenTrainer(
            self.model, graph, self.config, seed=self._trainer_seed
        )

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        history = self.trainer.fit(train_nodes, epochs=1)
        return history.losses[-1]

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        if graph is self.graph:
            return self.trainer.embed(nodes)
        return self.trainer.embed_inductive(graph, nodes, rng=self._eval_seed)

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        return self.trainer.predict(self._embed(nodes, graph))

    def num_parameters(self) -> int:
        return 0 if self.model is None else self.model.num_parameters()

    # ------------------------------------------------------------------
    # Serving hooks (repro.serve)
    # ------------------------------------------------------------------

    def predict_from_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        """Class predictions from precomputed embeddings (cache-hit path)."""
        if self.trainer is None:
            raise RuntimeError("predict_from_embeddings before fit/bind")
        return self.trainer.predict(np.asarray(embeddings, dtype=np.float64))

    def embed_for_serving(
        self, nodes: np.ndarray, graph: HeteroGraph, rng: SeedLike = None
    ) -> np.ndarray:
        """Identity-free inductive embedding for the serving path.

        Always samples neighborhoods fresh from ``graph`` — never reads the
        trainer's persistent per-node stores — so results stay correct after
        in-place streaming mutations and are a pure function of
        ``(parameters, graph contents, rng)``.  The server exploits that by
        seeding ``rng`` from ``(server seed, graph.version, node)``, making
        every response reproducible.
        """
        if self.trainer is None:
            raise RuntimeError("embed_for_serving before fit/bind")
        return self.trainer.embed_inductive(
            graph, np.asarray(nodes, dtype=np.int64), rng=rng
        )

    def embed_for_serving_batch(
        self, nodes: np.ndarray, graph: HeteroGraph, rngs
    ) -> np.ndarray:
        """Batched identity-free serving compute (the server's cold path).

        ``rngs`` carries one seed/generator **per node**: each node's
        neighborhoods are sampled from its own rng, so every row equals what
        :meth:`embed_for_serving` would return for that node alone —
        responses stay independent of batch composition — while all the
        forwards run through one vectorized
        :meth:`~repro.core.model.WidenModel.forward_batch` call.
        """
        if self.trainer is None:
            raise RuntimeError("embed_for_serving_batch before fit/bind")
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(rngs) != nodes.size:
            raise ValueError(f"{nodes.size} nodes but {len(rngs)} rngs")
        if nodes.size == 0:
            return np.empty((0, self.config.dim))
        if (
            self.config.forward_mode == "per_node"
            or self.config.embedding_mode == "replace"
        ):
            # Replace mode warms up a per-call state table node by node;
            # keep the reference path (still one row per node, same rngs).
            return np.stack(
                [
                    self.embed_for_serving(np.array([node]), graph, rng=rng)[0]
                    for node, rng in zip(nodes, rngs)
                ]
            )
        states = []
        for node, rng in zip(nodes, rngs):
            store = NeighborStateStore(
                graph,
                num_wide=self.config.num_wide,
                num_deep=self.config.num_deep,
                num_deep_walks=self.config.num_deep_walks,
                wide_sampling=self.config.wide_sampling,
                rng=new_rng(rng),
            )
            states.append(store.get(int(node)))
        # BLAS dispatches single-row matmuls to gemv, whose summation order
        # differs from the gemm kernel every larger batch hits, while gemm
        # row results do not depend on which other rows share the call.  Pad
        # a batch of one with a copy of its own state so the answer carries
        # the same bits as the same node served inside any larger batch —
        # the sharded router relies on that to stay exactly equal to a
        # single server whatever the miss batches look like on either side.
        padded = nodes.size == 1
        if padded:
            nodes = np.concatenate([nodes, nodes])
            states = [states[0], states[0]]
        model = self.trainer.model
        model.eval()
        with no_grad():
            embeddings, _, _ = model.forward_batch(nodes, states, graph, None)
        model.train()
        return embeddings.data[:1] if padded else embeddings.data

    # ------------------------------------------------------------------
    # Materialized-aggregate hooks (repro.store)
    # ------------------------------------------------------------------

    def params_digest(self) -> str:
        """Content hash of the model parameters (the store's checkpoint id).

        A materialized store holds *post-projection* pack rows, so it is
        only valid against the exact parameters that produced it; the
        digest lets :class:`repro.store.AggregateStore` refuse a mismatched
        model instead of silently serving wrong aggregates.
        """
        if self.model is None:
            raise RuntimeError("params_digest before fit/load")
        import hashlib

        digest = hashlib.sha256()
        state = self.model.state_dict()
        for name in sorted(state):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(state[name]).tobytes())
        return digest.hexdigest()[:16]

    def supports_store(self) -> Optional[str]:
        """``None`` if store rows reproduce this classifier's serving path
        exactly; otherwise the human-readable reason they cannot."""
        if self.config.embedding_mode == "replace":
            return "embedding_mode='replace' warms a per-call state table"
        if self.config.forward_mode not in ("batched", "sparse"):
            # "auto" may route the store assembly and the recompute oracle
            # through different kernels (their batch geometries differ), and
            # padded-vs-sparse results agree to 1e-10 but not bitwise — the
            # store's exactness contract requires one fixed kernel.
            return (
                f"forward_mode={self.config.forward_mode!r} is not a fixed "
                "minibatch kernel ('batched' or 'sparse')"
            )
        return None

    def materialize_store_rows(self, nodes: np.ndarray, graph: HeteroGraph, rngs):
        """Sample + pack ``nodes`` into store rows (one rng per node).

        The sampling mirrors :meth:`embed_for_serving_batch` exactly — per
        node rng, fresh :class:`NeighborStateStore` — so rows materialized
        with rng ``(seed, version, node)`` feed a serving answer
        bit-identical to the recompute path under the same seeds.
        """
        if self.trainer is None:
            raise RuntimeError("materialize_store_rows before fit/bind")
        reason = self.supports_store()
        if reason is not None:
            raise ValueError(f"store materialization unsupported: {reason}")
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(rngs) != nodes.size:
            raise ValueError(f"{nodes.size} nodes but {len(rngs)} rngs")
        if nodes.size == 0:
            return []
        states = []
        for node, rng in zip(nodes, rngs):
            store = NeighborStateStore(
                graph,
                num_wide=self.config.num_wide,
                num_deep=self.config.num_deep,
                num_deep_walks=self.config.num_deep_walks,
                wide_sampling=self.config.wide_sampling,
                rng=new_rng(rng),
            )
            states.append(store.get(int(node)))
        padded = nodes.size == 1
        if padded:
            nodes = np.concatenate([nodes, nodes])
            states = [states[0], states[0]]
        model = self.trainer.model
        model.eval()
        with no_grad():
            rows = model.materialize_rows(nodes, states, graph)
        model.train()
        return rows[:1] if padded else rows

    def embed_from_store_rows(self, rows) -> np.ndarray:
        """Warm serving compute: attention + MLP over materialized rows.

        No sampling, no feature projection, no edge gathers — the store
        tier's whole point.  The gemv/gemm padding trick from
        :meth:`embed_for_serving_batch` applies here too, so a singleton
        answer carries the same bits as the same node in a larger batch.
        """
        if self.trainer is None:
            raise RuntimeError("embed_from_store_rows before fit/bind")
        if not rows:
            return np.empty((0, self.config.dim))
        padded = len(rows) == 1
        if padded:
            rows = [rows[0], rows[0]]
        model = self.trainer.model
        model.eval()
        with no_grad():
            embeddings = model.forward_from_rows(rows)
        model.train()
        return embeddings.data[:1] if padded else embeddings.data

    def embed_from_store_blocks(
        self, blocks: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """:meth:`embed_from_store_rows` minus the decode/re-pad round trip.

        Takes the store's ``(B, R, d)`` capacity-padded blocks and
        ``(B, 1 + Φ)`` lengths directly — the serving hot path stacks mmap
        block views and calls this once per batch, with no per-node trim
        or re-pad work.  Bit-identical to the rows path (capacity padding
        is exact); the singleton gemv/gemm padding trick applies here too.
        """
        if self.trainer is None:
            raise RuntimeError("embed_from_store_blocks before fit/bind")
        blocks = np.asarray(blocks)
        if blocks.shape[0] == 0:
            return np.empty((0, self.config.dim))
        lengths = np.asarray(lengths, np.int64)
        padded = blocks.shape[0] == 1
        if padded:
            blocks = np.concatenate([blocks, blocks], axis=0)
            lengths = np.concatenate([lengths, lengths], axis=0)
        config = self.config
        model = self.trainer.model
        model.eval()
        with no_grad():
            embeddings = model.forward_from_blocks(
                blocks,
                lengths,
                wide_cap=(config.num_wide + 1) if config.use_wide else 0,
                deep_cap=(config.num_deep + 1) if config.use_deep else 0,
                num_walks=config.num_deep_walks,
            )
        model.train()
        return embeddings.data[:1] if padded else embeddings.data

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @staticmethod
    def _graph_schema(graph: HeteroGraph) -> dict:
        return {
            "num_features": int(graph.features.shape[1]),
            "num_edge_types_with_loops": int(graph.num_edge_types_with_loops),
            "num_classes": int(graph.num_classes),
            "node_type_names": list(graph.node_type_names),
            "edge_type_names": list(graph.edge_type_names),
        }

    def bind(self, graph: HeteroGraph) -> "WidenClassifier":
        """Attach ``graph`` for inference without touching parameters.

        Validates the graph against the schema captured at build/save time,
        then rebuilds the graph-bound trainer state (neighbor stores).  Use
        after :meth:`load` to point a restored model at a serving graph, or
        to force a state rebuild on the current graph.
        """
        if self.model is None:
            raise RuntimeError("bind() before the model exists; fit() or load()")
        if self._schema is not None:
            incoming = self._graph_schema(graph)
            mismatched = {
                key: (self._schema[key], incoming[key])
                for key in ("num_features", "num_edge_types_with_loops", "num_classes")
                if self._schema[key] != incoming[key]
            }
            if mismatched:
                raise ValueError(
                    f"graph schema mismatch: {mismatched} "
                    "(expected vs offered; the model's parameter shapes are "
                    "fixed by the schema it was trained on)"
                )
        self.graph = graph
        self.trainer = WidenTrainer(
            self.model, graph, self.config, seed=self._trainer_seed
        )
        if self._pending_rng_state is not None:
            self.trainer.load_rng_state(self._pending_rng_state)
            self._pending_rng_state = None
        if self._pending_training_state is not None:
            self.trainer.load_training_state(self._pending_training_state)
            self._pending_training_state = None
        return self

    def save(self, path) -> None:
        """Write a self-describing checkpoint (parameters + config + schema).

        The file is a ``.npz`` whose array keys are parameter names (the
        :meth:`Module.save` layout) plus one JSON metadata entry, so the
        low-level ``Module.load`` can still read the parameter arrays.
        """
        if self.model is None:
            raise RuntimeError("save() before fit(); there is nothing to save")
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "class": self.name,
            "config": dataclasses.asdict(self.config),
            "seed": self._seed,
            "schema": self._schema,
        }
        arrays = dict(self.model.state_dict())
        if self.trainer is not None:
            # Rng streams (shuffle, downsampling, sampling, dropout) so a
            # restored run repeats the stochastic decisions of this one.
            meta["trainer_rng"] = self.trainer.rng_state()
            # Training progress (v3): optimizer moments + step count, epoch
            # counter, neighbor-store states, node-state table.  Stored as a
            # pickle blob in a uint8 array so ``np.load`` needs no
            # ``allow_pickle`` for the parameter arrays around it.  With the
            # rng streams above this makes resumed training bit-identical —
            # ``fit(n); save; load; fit(m)`` equals ``fit(n + m)``.
            blob = pickle.dumps(
                self.trainer.training_state(), protocol=pickle.HIGHEST_PROTOCOL
            )
            arrays[TRAINER_STATE_KEY] = np.frombuffer(blob, dtype=np.uint8)
        np.savez(path, **{CHECKPOINT_KEY: json.dumps(meta)}, **arrays)

    @staticmethod
    def read_checkpoint_metadata(path) -> dict:
        """Metadata dict of a checkpoint written by :meth:`save`."""
        with np.load(path) as archive:
            if CHECKPOINT_KEY not in archive.files:
                raise ValueError(
                    f"{path!r} is a bare parameter file (Module.save), not a "
                    "classifier checkpoint; load it with Module.load into an "
                    "already-built model"
                )
            return json.loads(str(archive[CHECKPOINT_KEY]))

    @classmethod
    def load(cls, path, graph: Optional[HeteroGraph] = None) -> "WidenClassifier":
        """Rebuild a classifier from :meth:`save` output — no graph needed.

        Hyperparameters, seed and schema come from the checkpoint, so this
        replaces the old ``fit(graph, nodes, epochs=0)``-then-``Module.load``
        hack.  Pass ``graph`` to bind a serving graph immediately (validated
        against the saved schema); otherwise call :meth:`bind` later.
        """
        meta = cls.read_checkpoint_metadata(path)
        if meta.get("class") != cls.name:
            raise ValueError(
                f"checkpoint {path!r} holds a {meta.get('class')!r} model, "
                f"not {cls.name!r}"
            )
        version = int(meta.get("format_version", 1))
        if version > CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path!r} is format v{version}, newer than this "
                f"code's v{CHECKPOINT_FORMAT_VERSION}; upgrade the code (old "
                "readers cannot know what a newer format added)"
            )
        classifier = cls(
            config=WidenConfig(**meta["config"]), seed=meta.get("seed")
        )
        classifier._schema = meta["schema"]
        classifier._pending_rng_state = meta.get("trainer_rng")
        schema = meta["schema"]
        classifier.model = WidenModel(
            schema["num_features"],
            schema["num_edge_types_with_loops"],
            schema["num_classes"],
            classifier.config,
            seed=classifier._model_seed,
        )
        with np.load(path) as archive:
            classifier.model.load_state_dict(
                {
                    name: archive[name]
                    for name in archive.files
                    if name not in RESERVED_KEYS
                }
            )
            if TRAINER_STATE_KEY in archive.files:
                classifier._pending_training_state = pickle.loads(
                    archive[TRAINER_STATE_KEY].tobytes()
                )
        if graph is not None:
            classifier.bind(graph)
        return classifier


def migrate_checkpoint(path, out_path=None) -> dict:
    """Rewrite a v1/v2 checkpoint in the current (v3) layout.

    Old checkpoints never carried optimizer moments or trainer progress, so
    the migration cannot invent them: the rewritten file is a valid v3
    checkpoint whose optional training-progress blob is simply absent (a
    resumed ``fit`` starts with fresh moments, exactly as loading the old
    file did).  What migration buys is *uniformity* — every file on disk
    reads through one code path, and future readers can drop the v1/v2
    branches.  Returns the rewritten metadata.  ``out_path=None`` migrates
    in place; an already-current file is rewritten unchanged (idempotent).
    """
    meta = WidenClassifier.read_checkpoint_metadata(path)
    version = int(meta.get("format_version", 1))
    if version > CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} is format v{version}, newer than this "
            f"code's v{CHECKPOINT_FORMAT_VERSION}; nothing to migrate"
        )
    with np.load(path) as archive:
        arrays = {
            name: archive[name]
            for name in archive.files
            if name != CHECKPOINT_KEY
        }
    meta["format_version"] = CHECKPOINT_FORMAT_VERSION
    meta.setdefault("migrated_from_version", version)
    np.savez(out_path or path, **{CHECKPOINT_KEY: json.dumps(meta)}, **arrays)
    return meta
