"""Adapter exposing WIDEN through the shared baseline interface.

Benchmarks and protocol runners treat every model as a
:class:`~repro.baselines.common.BaseClassifier`; this wraps
:class:`WidenModel` + :class:`WidenTrainer` behind that interface so WIDEN
slots into the same harness rows as the baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaseClassifier
from repro.core.config import WidenConfig
from repro.core.model import WidenModel
from repro.core.trainer import WidenTrainer
from repro.graph import HeteroGraph
from repro.utils.rng import SeedLike, spawn_rngs


class WidenClassifier(BaseClassifier):
    """WIDEN as a drop-in classifier."""

    name = "widen"

    def __init__(
        self,
        config: Optional[WidenConfig] = None,
        seed: SeedLike = None,
        **config_overrides,
    ) -> None:
        super().__init__()
        if config is None:
            defaults = dict(
                dim=32, num_wide=10, num_deep=8, num_deep_walks=2,
                learning_rate=1e-2, dropout=0.5,
            )
            defaults.update(config_overrides)
            config = WidenConfig(**defaults)
        elif config_overrides:
            import dataclasses

            config = dataclasses.replace(config, **config_overrides)
        self.config = config
        self._model_seed, self._trainer_seed, self._eval_seed = spawn_rngs(seed, 3)
        self.model: Optional[WidenModel] = None
        self.trainer: Optional[WidenTrainer] = None

    def _build(self, graph: HeteroGraph) -> None:
        self.model = WidenModel(
            graph.features.shape[1],
            graph.num_edge_types_with_loops,
            graph.num_classes,
            self.config,
            seed=self._model_seed,
        )
        self.trainer = WidenTrainer(self.model, graph, self.config, seed=self._trainer_seed)

    def _on_rebind(self, graph: HeteroGraph) -> None:
        # Keep the trained parameters; rebuild the graph-bound trainer state
        # (neighbor stores, embedding table) for the new graph.
        self.trainer = WidenTrainer(
            self.model, graph, self.config, seed=self._trainer_seed
        )

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        history = self.trainer.fit(train_nodes, epochs=1)
        return history.losses[-1]

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        if graph is self.graph:
            return self.trainer.embed(nodes)
        return self.trainer.embed_inductive(graph, nodes, rng=self._eval_seed)

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        return self.trainer.predict(self._embed(nodes, graph))

    def num_parameters(self) -> int:
        return 0 if self.model is None else self.model.num_parameters()
