"""The WIDEN model: heterogeneous message packaging + wide/deep passing.

One forward pass for a target node ``v_t`` (Section 3):

1. ``pack_wide`` builds ``M°`` (Eq. 1): row 0 is the target's own pack
   ``v_t ⊙ e_{t,t}`` (self-loop edge embedding of its node type); the rest
   are ``v_n ⊙ e_{n,t}`` over the wide neighbor set.
2. ``pack_deep`` builds ``M▷`` (Eq. 2) the same way over a deep random-walk
   sequence, where each pack's edge links it to its *predecessor*.  Pruned
   positions carry :class:`~repro.core.relay.RelayRecipe` edges which are
   re-evaluated against current parameters (Eq. 8).
3. PASS° (Eq. 3): the target's pack queries ``M°`` through a self-attention
   unit, yielding ``h_t°`` and the attention distribution the downsampler
   consumes.
4. PASS▷ (Eqs. 4-6): successive self-attention with the causal mask Θ
   refines ``M▷`` into ``H▷``; the target's pack then queries ``H▷`` (keys)
   against ``M▷`` (values), yielding ``h_t▷`` per walk; the Φ walks are
   average-pooled.
5. FUSE (Eq. 7): ``v_t' = normalize(ReLU(W [h°; h▷] + b))``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import WidenConfig
from repro.core.packing import (
    PackedBatch,
    PackRows,
    causal_pairs,
    deep_causal_mask,
    flat_slot_indices,
    pack_batch,
    pack_batch_sparse,
    pad_block_masks,
    pad_pack_rows,
    padded_waste,
    segment_ids,
    segment_offsets,
)
from repro.core.relay import EdgeSpecLike, RelayRecipe
from repro.core.state import NeighborState
from repro.graph import HeteroGraph
from repro.graph.sampling import DeepNeighborSet, WideNeighborSet
from repro.nn import (
    Dropout,
    Embedding,
    Linear,
    Module,
    QueryAttention,
    SelfAttention,
    causal_mask,
)
from repro.obs.tracing import span as trace_span
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, spawn_rngs

_EmbedCache = Dict[int, Tensor]


class WidenModel(Module):
    """Wide and deep message passing network.

    Parameters
    ----------
    num_features:
        Raw node feature dimension d0.
    num_edge_types:
        Size of the edge-type vocabulary **including** per-node-type
        self-loop types (``graph.num_edge_types_with_loops``).
    num_classes:
        Output classes of the semi-supervised task (Eq. 10's ``c``).
    config, seed:
        Hyperparameters and deterministic initialization seed.
    """

    def __init__(
        self,
        num_features: int,
        num_edge_types: int,
        num_classes: int,
        config: WidenConfig,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(seed, 6)
        self.config = config
        d = config.dim
        self.project = Linear(num_features, d, bias=False, rng=rngs[0])  # G^node
        self.edge_embedding = Embedding(num_edge_types, d, rng=rngs[1])  # G^edge
        self.wide_pass = QueryAttention(d, num_heads=config.num_heads, rng=rngs[2])  # Eq. 3
        self.deep_successive = SelfAttention(d, rng=rngs[3])  # Eq. 4
        self.deep_pass = QueryAttention(d, num_heads=config.num_heads, rng=rngs[4])  # Eq. 5
        self.fuse = Linear(2 * d, d, rng=rngs[5])  # Eq. 7
        self.classifier = Linear(d, num_classes, bias=False, rng=rngs[0])  # C, Eq. 10
        self.pack_dropout = Dropout(config.dropout, rng=rngs[1])
        self.hidden_dropout = Dropout(config.dropout, rng=rngs[2])

    # ------------------------------------------------------------------
    # Embeddings
    # ------------------------------------------------------------------

    def initial_node_state(self, graph: HeteroGraph) -> np.ndarray:
        """Embedding initialization for every node: ``v = x G^node``.

        Algorithm 3 *replaces* ``v_t`` with the passing output every time a
        node is processed, so neighbor packs consume progressively refined
        embeddings — this table holds those current representations.  The
        target's own pack is always recomputed from features so gradients
        reach ``G^node``; neighbor entries enter as constants (historical
        embeddings), which truncates backpropagation to one passing step
        exactly as the paper's per-node update rule implies.

        Rows are L2-normalized to match the scale of refined embeddings
        (Eq. 7 normalizes every passing output), so packs never mix raw and
        refined vectors of incomparable magnitude.
        """
        state = graph.features @ self.project.weight.data
        norms = np.linalg.norm(state, axis=1, keepdims=True)
        return state / np.maximum(norms, 1e-12)

    def fresh_projection(self, node: int, graph: HeteroGraph) -> Tensor:
        """Trainable ``v_t = x_t G^node`` for the target node itself."""
        return ops.matmul(Tensor(graph.features[node]), self.project.weight)

    def node_embedding(
        self,
        node: int,
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
        cache: Optional[_EmbedCache] = None,
    ) -> Tensor:
        """Current representation ``v_i`` of a *neighbor* node.

        Reads the refined embedding table when provided (the normal path);
        falls back to a fresh feature projection otherwise.
        """
        node = int(node)
        if cache is not None and node in cache:
            return cache[node]
        if node_state is not None:
            embedding = Tensor(node_state[node])
        else:
            embedding = self.fresh_projection(node, graph)
        if cache is not None:
            cache[node] = embedding
        return embedding

    def edge_vector(
        self,
        spec: EdgeSpecLike,
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
        cache: Optional[_EmbedCache] = None,
    ) -> Tensor:
        """Edge embedding for a plain type id, or a relay recipe (Eq. 8)."""
        if isinstance(spec, RelayRecipe):
            outer = self.edge_vector(spec.outer, graph, node_state, cache)
            deleted_pack = self.node_embedding(
                spec.deleted_node, graph, node_state, cache
            ) * self.edge_vector(spec.deleted, graph, node_state, cache)
            return ops.maximum(outer, deleted_pack)
        return self.edge_embedding(np.asarray(spec))

    def relay_vectors_bulk(
        self,
        recipes: Sequence[RelayRecipe],
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
    ) -> Tensor:
        """All relay recipes of a batch as one ``(R, d)`` tensor (Eq. 8).

        Levelized evaluation of the recipe forest: one embedding lookup
        covers every plain-edge leaf, one table read (or feature projection)
        covers every deleted node, and each nesting depth then resolves with
        a single gather → mul → maximum round.  Numerically identical to
        mapping :meth:`edge_vector` over ``recipes`` — everything here is
        elementwise — but issues O(depth) ops instead of O(recipes · depth).
        """
        leaf_etypes: List[int] = []
        # Per recipe node: (outer_ref, deleted_node, deleted_ref, level)
        # where a ref is ('leaf', i) or ('rec', i).
        rec_nodes: List[tuple] = []

        def visit(spec: EdgeSpecLike):
            if isinstance(spec, RelayRecipe):
                outer_ref, outer_level = visit(spec.outer)
                deleted_ref, deleted_level = visit(spec.deleted)
                level = max(outer_level, deleted_level) + 1
                rec_nodes.append(
                    (outer_ref, int(spec.deleted_node), deleted_ref, level)
                )
                return ("rec", len(rec_nodes) - 1), level
            leaf_etypes.append(int(spec))
            return ("leaf", len(leaf_etypes) - 1), 0

        roots = [visit(recipe)[0] for recipe in recipes]

        # Table rows: leaves first, then recipe values level by level.
        table = self.edge_embedding(np.asarray(leaf_etypes, dtype=np.int64))
        deleted_nodes = np.asarray([rec[1] for rec in rec_nodes], dtype=np.int64)
        if node_state is not None:
            node_mat = Tensor(node_state[deleted_nodes])
        else:
            node_mat = ops.matmul(
                Tensor(graph.features[deleted_nodes]), self.project.weight
            )

        row_of = {("leaf", i): i for i in range(len(leaf_etypes))}
        max_level = max(rec[3] for rec in rec_nodes)
        for level in range(1, max_level + 1):
            members = [
                i for i, rec in enumerate(rec_nodes) if rec[3] == level
            ]
            ones = np.ones(len(members))
            outer_idx = np.asarray([row_of[rec_nodes[i][0]] for i in members])
            deleted_idx = np.asarray([row_of[rec_nodes[i][2]] for i in members])
            outer_rows = ops.pad_gather(table, outer_idx, ones)
            deleted_rows = ops.pad_gather(table, deleted_idx, ones)
            node_rows = ops.pad_gather(node_mat, np.asarray(members), ones)
            new_rows = ops.maximum(outer_rows, node_rows * deleted_rows)
            base = int(table.data.shape[0])
            for position, i in enumerate(members):
                row_of[("rec", i)] = base + position
            table = ops.concat([table, new_rows], axis=0)

        root_idx = np.asarray([row_of[ref] for ref in roots])
        return ops.pad_gather(table, root_idx, np.ones(len(roots)))

    def self_loop_vector(
        self,
        target: int,
        graph: HeteroGraph,
        cache: Optional[_EmbedCache] = None,
    ) -> Tensor:
        """Self-loop edge embedding ``e_{t,t}`` as a ``(1, d)`` row.

        Self-loop types are per *node type*, so within one forward pass the
        target's Φ + 1 pack matrices all share the same row — ``cache``
        (keyed by loop-type id) gathers it from the embedding table once.
        """
        loop_type = int(graph.self_loop_type(target))
        if cache is not None and loop_type in cache:
            return cache[loop_type]
        vec = self.edge_embedding(np.asarray([loop_type]))
        if cache is not None:
            cache[loop_type] = vec
        return vec

    # ------------------------------------------------------------------
    # Message packaging (Eqs. 1-2)
    # ------------------------------------------------------------------

    def pack_wide(
        self,
        target: int,
        wide: WideNeighborSet,
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
        loop_cache: Optional[_EmbedCache] = None,
    ) -> Tensor:
        """``M° = PACK°(W(v_t))`` — shape ``(|W| + 1, d)``, target pack first."""
        target_vec = self.fresh_projection(target, graph)
        if node_state is not None:
            neighbor_vecs = Tensor(node_state[wide.nodes])
        else:
            neighbor_vecs = ops.matmul(
                Tensor(graph.features[wide.nodes]), self.project.weight
            )
        if loop_cache is None:
            etypes = np.concatenate(([graph.self_loop_type(target)], wide.etypes))
            edge_vecs = self.edge_embedding(etypes)
        else:
            loop_vec = self.self_loop_vector(target, graph, loop_cache)
            if len(wide):
                edge_vecs = ops.concat(
                    [loop_vec, self.edge_embedding(wide.etypes)], axis=0
                )
            else:
                edge_vecs = loop_vec
        node_vecs = ops.concat(
            [ops.reshape(target_vec, (1, self.config.dim)), neighbor_vecs], axis=0
        )
        return node_vecs * edge_vecs

    def pack_deep(
        self,
        target: int,
        deep: DeepNeighborSet,
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
        cache: Optional[_EmbedCache] = None,
        loop_cache: Optional[_EmbedCache] = None,
    ) -> Tensor:
        """``M▷ = PACK▷(D(v_t))`` — shape ``(|D| + 1, d)``, target pack first.

        Positions whose edge was replaced by a relay recipe evaluate the
        recipe against current parameters, so relays stay trainable.  The
        relay-free case (every walk before its first prune) takes a fully
        vectorized path — one projection matmul + one embedding gather —
        which dominates WIDEN's per-epoch cost.
        """
        relay_positions = [
            position for position, relay in enumerate(deep.relays)
            if relay is not None
        ]
        target_vec = ops.reshape(
            self.fresh_projection(target, graph), (1, self.config.dim)
        )
        if node_state is not None:
            neighbor_vecs = Tensor(node_state[deep.nodes])
        else:
            neighbor_vecs = ops.matmul(
                Tensor(graph.features[deep.nodes]), self.project.weight
            )
        node_vecs = ops.concat([target_vec, neighbor_vecs], axis=0)
        if loop_cache is None:
            etypes = np.concatenate(([graph.self_loop_type(target)], deep.etypes))
            edge_vecs = self.edge_embedding(etypes)
        else:
            loop_vec = self.self_loop_vector(target, graph, loop_cache)
            if len(deep):
                edge_vecs = ops.concat(
                    [loop_vec, self.edge_embedding(deep.etypes)], axis=0
                )
            else:
                edge_vecs = loop_vec
        if relay_positions:
            # Splice relay rows into the looked-up edge matrix.  Relays are
            # rare (one per prune), so per-row handling here stays cheap.
            segments: List[Tensor] = []
            cursor = 0
            for position in relay_positions:
                row = position + 1  # row 0 is the target's self-loop
                if row > cursor:
                    segments.append(ops.slice(edge_vecs, cursor, row, axis=0))
                relay_vec = self.edge_vector(
                    deep.relays[position], graph, node_state, cache
                )
                segments.append(ops.reshape(relay_vec, (1, self.config.dim)))
                cursor = row + 1
            if cursor < len(deep) + 1:
                segments.append(ops.slice(edge_vecs, cursor, len(deep) + 1, axis=0))
            edge_vecs = ops.concat(segments, axis=0)
        return node_vecs * edge_vecs

    # ------------------------------------------------------------------
    # Message passing (Eqs. 3-7)
    # ------------------------------------------------------------------

    def forward(
        self,
        target: int,
        state: NeighborState,
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Optional[np.ndarray], List[np.ndarray]]:
        """Compute ``v_t'`` for one target node.

        ``node_state`` is the refined-embedding table (Algorithm 3's current
        representations); when omitted, neighbors fall back to fresh feature
        projections (a pure one-step pass).  Returns ``(embedding,
        wide_attention, deep_attentions)``; the attention distributions
        (detached numpy arrays over ``set size + 1`` packs, target first)
        feed the active downsampler and KL trigger.
        """
        config = self.config
        cache: _EmbedCache = {}
        loop_cache: _EmbedCache = {}
        d = config.dim

        with trace_span("widen.forward"):
            wide_attention: Optional[np.ndarray] = None
            if config.use_wide:
                with trace_span("widen.wide_pass", packs=len(state.wide) + 1):
                    packs = self.pack_wide(
                        target, state.wide, graph, node_state, loop_cache
                    )
                    packs = self.pack_dropout(packs)
                    h_wide, weights = self.wide_pass(packs[0], packs)
                    wide_attention = weights.data.copy()
            else:
                h_wide = Tensor(np.zeros(d))

            deep_attentions: List[np.ndarray] = []
            if config.use_deep:
                h_walks: List[Tensor] = []
                for deep in state.deep:
                    with trace_span("widen.deep_pass", packs=len(deep) + 1):
                        packs = self.pack_deep(
                            target, deep, graph, node_state, cache, loop_cache
                        )
                        packs = self.pack_dropout(packs)
                        if config.use_successive:
                            refined, _ = self.deep_successive(
                                packs, mask=causal_mask(len(deep) + 1)
                            )
                        else:
                            # Table-4 ablation: deep passing degenerates to plain
                            # attentive aggregation of the raw packs.
                            refined = packs
                        h_walk, weights = self.deep_pass(
                            packs[0], refined, values=packs
                        )
                        deep_attentions.append(weights.data.copy())
                        h_walks.append(h_walk)
                stacked = ops.stack(h_walks)
                h_deep = ops.mean(stacked, axis=0)  # average pooling over Φ walks
            else:
                h_deep = Tensor(np.zeros(d))

            hidden = ops.relu(self.fuse(ops.concat([h_wide, h_deep], axis=0)))
            hidden = self.hidden_dropout(hidden)
            embedding = F.l2_normalize(hidden, axis=-1)
        return embedding, wide_attention, deep_attentions

    def forward_batch(
        self,
        targets: Sequence[int],
        states: Sequence[NeighborState],
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, List[Optional[np.ndarray]], List[List[np.ndarray]]]:
        """Vectorized ``forward`` over ``B`` targets at once.

        Packs every target's ``M°`` and every walk's ``M▷`` into padded
        batch tensors (see :mod:`repro.core.packing`) and runs each stage —
        projection, edge gather, attention, fusion — as one batched op
        instead of ``B·(Φ + 1)`` small ones.  Padding is exact: padded node
        rows gather as zeros and padded attention slots carry ``-inf`` mask
        entries, so per-row results equal the per-node reference path.

        Returns ``(embeddings, wide_attentions, deep_attentions)`` where
        ``embeddings`` is ``(B, d)`` and the attention lists hold, per
        target, the same trimmed distributions ``forward`` would return.

        ``forward_mode="sparse"`` routes to the CSR kernels
        (:meth:`forward_batch_sparse`); ``"auto"`` measures the batch's
        would-be padding waste against the per-host kernel-selection table
        and picks per batch.
        """
        if self._select_sparse(states):
            return self.forward_batch_sparse(targets, states, graph, node_state)
        config = self.config
        d = config.dim
        pack = pack_batch(
            targets,
            states,
            graph,
            config,
            pack_dropout=self.pack_dropout,
            hidden_dropout=self.hidden_dropout,
        )
        batch = pack.batch_size

        with trace_span("widen.forward", batch=batch):
            target_vecs = ops.matmul(
                Tensor(graph.features[pack.targets]), self.project.weight
            )
            if pack.neighbor_nodes.size:
                if node_state is not None:
                    neighbor_vecs = Tensor(node_state[pack.neighbor_nodes])
                else:
                    neighbor_vecs = ops.matmul(
                        Tensor(graph.features[pack.neighbor_nodes]),
                        self.project.weight,
                    )
                flat = ops.concat([target_vecs, neighbor_vecs], axis=0)
            else:
                flat = target_vecs

            wide_attentions: List[Optional[np.ndarray]] = [None] * batch
            if config.use_wide:
                with trace_span("widen.wide_pass", packs=pack.wide_index.size):
                    edge_vecs = self.edge_embedding(pack.wide_etypes)
                    packs = ops.pad_gather_mul(
                        flat, pack.wide_index, pack.wide_valid,
                        edge_vecs, pack.wide_dropout,
                    )
                    h_wide, weights = self._attend_wide(
                        packs, pack.wide_attn_mask, batch
                    )
                    wide_attentions = [
                        weights.data[b, : pack.wide_lengths[b]].copy()
                        for b in range(batch)
                    ]
            else:
                h_wide = Tensor(np.zeros((batch, d)))

            deep_attentions: List[List[np.ndarray]] = [[] for _ in range(batch)]
            if config.use_deep:
                total, width = pack.deep_index.shape
                with trace_span("widen.deep_pass", packs=pack.deep_index.size):
                    edge_vecs = self.edge_embedding(pack.deep_etypes)
                    if pack.deep_relays:
                        relay_rows = self.relay_vectors_bulk(
                            pack.deep_relays, graph, node_state
                        )
                        flat_edges = ops.reshape(edge_vecs, (total * width, d))
                        flat_edges = ops.scatter_rows(
                            flat_edges, pack.deep_relay_rows, relay_rows
                        )
                        edge_vecs = ops.reshape(flat_edges, (total, width, d))
                    packs = ops.pad_gather_mul(
                        flat, pack.deep_index, pack.deep_valid,
                        edge_vecs, pack.deep_dropout,
                    )
                    h_deep, weights = self._attend_deep(
                        packs, pack.deep_attn_mask, pack.deep_causal_mask,
                        batch, pack.num_walks,
                    )
                    for w in range(total):
                        deep_attentions[w // pack.num_walks].append(
                            weights.data[w, : pack.deep_lengths[w]].copy()
                        )
            else:
                h_deep = Tensor(np.zeros((batch, d)))

            embeddings = self._fuse_batch(h_wide, h_deep, pack.hidden_dropout)
        return embeddings, wide_attentions, deep_attentions

    def _select_sparse(self, states: Sequence[NeighborState]) -> bool:
        """Route a batch to the CSR kernels?

        ``"sparse"`` always; ``"auto"`` when the batch's would-be padding
        waste meets the kernel-selection table's ``sparse_min_waste``
        (:mod:`repro.tensor.kernels`, tuned per host by ``tune-kernels``).
        """
        mode = self.config.forward_mode
        if mode == "sparse":
            return True
        if mode != "auto":
            return False
        from repro.tensor.kernels import get_forward_selection

        selection = get_forward_selection()
        return padded_waste(states, self.config) >= selection["sparse_min_waste"]

    def forward_batch_sparse(
        self,
        targets: Sequence[int],
        states: Sequence[NeighborState],
        graph: HeteroGraph,
        node_state: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, List[Optional[np.ndarray]], List[List[np.ndarray]]]:
        """:meth:`forward_batch` over flat CSR pack arrays — no padding.

        Every stage runs on work proportional to the real pack rows:
        ``gather_mul`` assembles the flat packs, ``sddmm`` scores only real
        (target, pack) pairs, ``segment_softmax``/``segment_matmul``
        normalize and aggregate segment-locally.  Pack-row values equal the
        padded kernels' valid slots bitwise (padding multiplies by exactly
        1.0 there), and the segment reductions see the same operands in the
        same order — results agree with :meth:`forward_batch` to the last
        ulp of the summation order (<= 1e-10), with identical dropout
        streams.
        """
        config = self.config
        d = config.dim
        pack = pack_batch_sparse(
            targets,
            states,
            graph,
            config,
            pack_dropout=self.pack_dropout,
            hidden_dropout=self.hidden_dropout,
        )
        batch = pack.batch_size

        with trace_span("widen.forward", batch=batch, kernel="sparse"):
            target_vecs = ops.matmul(
                Tensor(graph.features[pack.targets]), self.project.weight
            )
            if pack.neighbor_nodes.size:
                if node_state is not None:
                    neighbor_vecs = Tensor(node_state[pack.neighbor_nodes])
                else:
                    neighbor_vecs = ops.matmul(
                        Tensor(graph.features[pack.neighbor_nodes]),
                        self.project.weight,
                    )
                flat = ops.concat([target_vecs, neighbor_vecs], axis=0)
            else:
                flat = target_vecs

            wide_attentions: List[Optional[np.ndarray]] = [None] * batch
            if config.use_wide:
                offsets = pack.wide_offsets
                with trace_span("widen.wide_pass", packs=int(pack.wide_src.size)):
                    edge_vecs = self.edge_embedding(pack.wide_etypes)
                    packs = ops.gather_mul(
                        flat, pack.wide_src, edge_vecs, pack.wide_dropout
                    )
                    h_wide, weights = self._attend_wide_sparse(
                        packs, pack.wide_seg_ids, offsets
                    )
                    wide_attentions = [
                        weights.data[offsets[b] : offsets[b + 1]].copy()
                        for b in range(batch)
                    ]
            else:
                h_wide = Tensor(np.zeros((batch, d)))

            deep_attentions: List[List[np.ndarray]] = [[] for _ in range(batch)]
            if config.use_deep:
                offsets = pack.deep_offsets
                total = int(pack.deep_lengths.shape[0])
                with trace_span("widen.deep_pass", packs=int(pack.deep_src.size)):
                    edge_vecs = self.edge_embedding(pack.deep_etypes)
                    if pack.deep_relays:
                        relay_rows = self.relay_vectors_bulk(
                            pack.deep_relays, graph, node_state
                        )
                        edge_vecs = ops.scatter_rows(
                            edge_vecs, pack.deep_relay_rows, relay_rows
                        )
                    packs = ops.gather_mul(
                        flat, pack.deep_src, edge_vecs, pack.deep_dropout
                    )
                    pairs = (
                        (pack.pair_rows, pack.pair_cols, pack.pair_offsets)
                        if config.use_successive
                        else None
                    )
                    h_deep, weights = self._attend_deep_sparse(
                        packs, pack.deep_seg_ids, offsets, pairs,
                        batch, pack.num_walks,
                    )
                    for w in range(total):
                        deep_attentions[w // pack.num_walks].append(
                            weights.data[offsets[w] : offsets[w + 1]].copy()
                        )
            else:
                h_deep = Tensor(np.zeros((batch, d)))

            embeddings = self._fuse_batch(h_wide, h_deep, pack.hidden_dropout)
        return embeddings, wide_attentions, deep_attentions

    def _attend_wide_sparse(
        self, packs: Tensor, seg_ids: np.ndarray, offsets: np.ndarray
    ):
        """PASS° (Eq. 3) over flat CSR pack rows."""
        batch = int(offsets.shape[0]) - 1
        query = ops.pad_gather(packs, offsets[:-1], np.ones(batch))
        return self.wide_pass.forward_sparse(
            query, packs, packs, seg_ids, offsets
        )

    def _attend_deep_sparse(
        self,
        packs: Tensor,
        seg_ids: np.ndarray,
        offsets: np.ndarray,
        pairs,
        batch: int,
        num_walks: int,
    ):
        """PASS▷ (Eqs. 4-6) over flat CSR walk-pack rows.

        ``pairs`` is the ``(pair_rows, pair_cols, pair_offsets)`` causal
        enumeration (or ``None`` when the successive refinement is
        ablated).  Returns ``(h_deep, weights)`` with the flat per-walk
        attention weights segmented by ``offsets``.
        """
        d = self.config.dim
        total = int(offsets.shape[0]) - 1
        if self.config.use_successive:
            refined = self.deep_successive.forward_sparse(packs, *pairs)
        else:
            refined = packs
        query = ops.pad_gather(packs, offsets[:-1], np.ones(total))
        h_walks, weights = self.deep_pass.forward_sparse(
            query, refined, packs, seg_ids, offsets
        )
        h_deep = ops.mean(ops.reshape(h_walks, (batch, num_walks, d)), axis=1)
        return h_deep, weights

    # -- shared attention + fusion halves --------------------------------
    #
    # The second half of the batched forward, factored out so the store
    # serving path (:meth:`forward_from_rows`) runs the *same* code over
    # materialized pack rows — bit-equality between the store tier and the
    # recompute oracle reduces to equality of the pack tensors.

    def _attend_wide(self, packs: Tensor, mask: np.ndarray, batch: int):
        """PASS° (Eq. 3) over a padded ``(B, Lw, d)`` pack tensor."""
        d = self.config.dim
        query = ops.reshape(ops.slice(packs, 0, 1, axis=1), (batch, d))
        return self.wide_pass(query, packs, mask=mask)

    def _attend_deep(
        self,
        packs: Tensor,
        attn_mask: np.ndarray,
        causal_mask_batch: np.ndarray,
        batch: int,
        num_walks: int,
    ):
        """PASS▷ (Eqs. 4-6) over padded ``(B·Φ, Ld, d)`` walk packs.

        Returns ``(h_deep, weights)`` with ``h_deep`` the ``(B, d)``
        average pool over the Φ walks and ``weights`` the raw per-walk
        attention distributions (still padded; callers trim).
        """
        d = self.config.dim
        total = int(packs.data.shape[0])
        if self.config.use_successive:
            refined, _ = self.deep_successive(packs, mask=causal_mask_batch)
        else:
            refined = packs
        query = ops.reshape(ops.slice(packs, 0, 1, axis=1), (total, d))
        h_walks, weights = self.deep_pass(
            query, refined, values=packs, mask=attn_mask
        )
        h_deep = ops.mean(ops.reshape(h_walks, (batch, num_walks, d)), axis=1)
        return h_deep, weights

    def _fuse_batch(
        self,
        h_wide: Tensor,
        h_deep: Tensor,
        hidden_dropout: Optional[np.ndarray],
    ) -> Tensor:
        """FUSE (Eq. 7) for a batch: ``normalize(ReLU(W [h°; h▷] + b))``."""
        hidden = ops.relu(self.fuse(ops.concat([h_wide, h_deep], axis=1)))
        if hidden_dropout is not None:
            hidden = ops.dropout_mask(hidden, hidden_dropout)
        return F.l2_normalize(hidden, axis=-1)

    # ------------------------------------------------------------------
    # Materialized pack rows (repro.store)
    # ------------------------------------------------------------------

    def materialize_rows(
        self,
        targets: Sequence[int],
        states: Sequence[NeighborState],
        graph: HeteroGraph,
    ) -> List[PackRows]:
        """The first half of :meth:`forward_batch`, stopped at the packs.

        Runs sampling-dependent work — feature projection, edge-embedding
        gathers, relay evaluation, the ``pad_gather_mul`` pack assembly —
        and returns each target's pack matrices trimmed to true lengths
        (:class:`PackRows`).  Always evaluates without dropout (dropout
        modules are bypassed entirely, so no rng stream is consumed); the
        values are exactly what the eval-mode batched forward would feed
        its attention stages, which is what makes a later
        :meth:`forward_from_rows` bit-equal to the full recompute.
        """
        config = self.config
        d = config.dim
        pack = pack_batch(targets, states, graph, config)
        batch = pack.batch_size

        with trace_span("widen.materialize", batch=batch):
            target_vecs = ops.matmul(
                Tensor(graph.features[pack.targets]), self.project.weight
            )
            if pack.neighbor_nodes.size:
                neighbor_vecs = ops.matmul(
                    Tensor(graph.features[pack.neighbor_nodes]),
                    self.project.weight,
                )
                flat = ops.concat([target_vecs, neighbor_vecs], axis=0)
            else:
                flat = target_vecs

            wide_rows: List[Optional[np.ndarray]] = [None] * batch
            if config.use_wide:
                edge_vecs = self.edge_embedding(pack.wide_etypes)
                packs = ops.pad_gather_mul(
                    flat, pack.wide_index, pack.wide_valid, edge_vecs, None
                )
                wide_rows = [
                    packs.data[b, : int(pack.wide_lengths[b])].copy()
                    for b in range(batch)
                ]

            deep_rows: List[List[np.ndarray]] = [[] for _ in range(batch)]
            if config.use_deep:
                total, width = pack.deep_index.shape
                edge_vecs = self.edge_embedding(pack.deep_etypes)
                if pack.deep_relays:
                    relay_rows = self.relay_vectors_bulk(
                        pack.deep_relays, graph, None
                    )
                    flat_edges = ops.reshape(edge_vecs, (total * width, d))
                    flat_edges = ops.scatter_rows(
                        flat_edges, pack.deep_relay_rows, relay_rows
                    )
                    edge_vecs = ops.reshape(flat_edges, (total, width, d))
                packs = ops.pad_gather_mul(
                    flat, pack.deep_index, pack.deep_valid, edge_vecs, None
                )
                for w in range(total):
                    deep_rows[w // pack.num_walks].append(
                        packs.data[w, : int(pack.deep_lengths[w])].copy()
                    )

        return [
            PackRows(wide=wide_rows[b], deep=deep_rows[b]) for b in range(batch)
        ]

    def forward_from_rows(self, rows: Sequence[PackRows]) -> Tensor:
        """The second half of :meth:`forward_batch`, fed from stored rows.

        Reassembles the padded pack tensors and masks with the exact
        padding convention of :func:`pack_batch` (zero rows, additive
        0/-inf masks, self-attending padded walk rows) and runs the shared
        attention + fusion halves — no sampling, no projection, no edge
        gathers.  For rows produced by :meth:`materialize_rows` from the
        same sampled neighborhoods, the returned ``(B, d)`` embeddings are
        bit-identical to eval-mode :meth:`forward_batch`.
        """
        config = self.config
        d = config.dim
        batch = len(rows)
        if batch == 0:
            raise ValueError("forward_from_rows requires at least one row set")
        if config.forward_mode == "sparse":
            return self._forward_from_rows_sparse(rows)

        with trace_span("widen.forward_from_rows", batch=batch):
            if config.use_wide:
                padded, _, attn_mask, _ = pad_pack_rows(
                    [row.wide for row in rows], d
                )
                with trace_span("widen.wide_pass", packs=int(padded[..., 0].size)):
                    h_wide, _ = self._attend_wide(
                        Tensor(padded), attn_mask, batch
                    )
            else:
                h_wide = Tensor(np.zeros((batch, d)))

            if config.use_deep:
                num_walks = len(rows[0].deep)
                for row in rows:
                    if len(row.deep) != num_walks:
                        raise ValueError(
                            "all row sets must carry the same walk count Φ"
                        )
                walks = [walk for row in rows for walk in row.deep]
                padded, valid, attn_mask, _ = pad_pack_rows(walks, d)
                causal = deep_causal_mask(valid, attn_mask)
                with trace_span("widen.deep_pass", packs=int(padded[..., 0].size)):
                    h_deep, _ = self._attend_deep(
                        Tensor(padded), attn_mask, causal, batch, num_walks
                    )
            else:
                h_deep = Tensor(np.zeros((batch, d)))

            return self._fuse_batch(h_wide, h_deep, None)

    def forward_from_blocks(
        self,
        blocks: np.ndarray,
        lengths: np.ndarray,
        *,
        wide_cap: int,
        deep_cap: int,
        num_walks: int,
    ) -> Tensor:
        """:meth:`forward_from_rows` over capacity-padded store blocks.

        ``blocks`` is ``(B, R, d)`` exactly as the store persists it —
        wide rows first, then Φ contiguous walk segments, zero-padded to
        the sampling caps — and ``lengths`` is ``(B, 1 + Φ)``.  The blocks
        feed attention *as stored*: no per-row trimming, no re-padding, no
        per-node Python.  Masks come from :func:`pad_block_masks`, and
        padding to capacity rather than the batch maximum is exact (zero
        rows under ``-inf`` mask entries contribute nothing), so the
        result is bit-identical to :meth:`forward_from_rows` on the
        decoded rows — and hence to the full recompute.
        """
        config = self.config
        d = config.dim
        batch = int(blocks.shape[0])
        if batch == 0:
            raise ValueError("forward_from_blocks requires at least one block")
        if config.forward_mode == "sparse":
            return self._forward_from_blocks_sparse(
                blocks, lengths,
                wide_cap=wide_cap, deep_cap=deep_cap, num_walks=num_walks,
            )

        with trace_span("widen.forward_from_blocks", batch=batch):
            if config.use_wide:
                packs = np.ascontiguousarray(blocks[:, :wide_cap, :])
                _, attn_mask = pad_block_masks(lengths[:, 0], wide_cap)
                with trace_span("widen.wide_pass", packs=int(packs[..., 0].size)):
                    h_wide, _ = self._attend_wide(
                        Tensor(packs), attn_mask, batch
                    )
            else:
                h_wide = Tensor(np.zeros((batch, d)))

            if config.use_deep:
                walk_packs = np.ascontiguousarray(
                    blocks[:, wide_cap:, :]
                ).reshape(batch * num_walks, deep_cap, d)
                valid, attn_mask = pad_block_masks(
                    lengths[:, 1:].reshape(batch * num_walks), deep_cap
                )
                causal = deep_causal_mask(valid, attn_mask)
                with trace_span(
                    "widen.deep_pass", packs=int(walk_packs[..., 0].size)
                ):
                    h_deep, _ = self._attend_deep(
                        Tensor(walk_packs), attn_mask, causal, batch, num_walks
                    )
            else:
                h_deep = Tensor(np.zeros((batch, d)))

            return self._fuse_batch(h_wide, h_deep, None)

    def _forward_from_rows_sparse(self, rows: Sequence[PackRows]) -> Tensor:
        """:meth:`forward_from_rows` on the CSR kernels — no re-padding.

        Stored rows are already trimmed to true lengths, so sparse
        assembly is a straight concatenation: each row set becomes one CSR
        segment.  The pack values are identical to what ``gather_mul``
        would produce (the padded materializer multiplies valid slots by
        exactly 1.0), so the result is bit-identical to the sparse
        recompute path.
        """
        config = self.config
        d = config.dim
        batch = len(rows)

        with trace_span("widen.forward_from_rows", batch=batch, kernel="sparse"):
            if config.use_wide:
                wide_rows = [row.wide for row in rows]
                offsets = segment_offsets(
                    np.array([r.shape[0] for r in wide_rows], np.int64)
                )
                packs = Tensor(np.concatenate(wide_rows, axis=0))
                with trace_span("widen.wide_pass", packs=int(offsets[-1])):
                    h_wide, _ = self._attend_wide_sparse(
                        packs, segment_ids(offsets), offsets
                    )
            else:
                h_wide = Tensor(np.zeros((batch, d)))

            if config.use_deep:
                num_walks = len(rows[0].deep)
                for row in rows:
                    if len(row.deep) != num_walks:
                        raise ValueError(
                            "all row sets must carry the same walk count Φ"
                        )
                walks = [walk for row in rows for walk in row.deep]
                offsets = segment_offsets(
                    np.array([walk.shape[0] for walk in walks], np.int64)
                )
                packs = Tensor(np.concatenate(walks, axis=0))
                pairs = (
                    causal_pairs(offsets) if config.use_successive else None
                )
                with trace_span("widen.deep_pass", packs=int(offsets[-1])):
                    h_deep, _ = self._attend_deep_sparse(
                        packs, segment_ids(offsets), offsets, pairs,
                        batch, num_walks,
                    )
            else:
                h_deep = Tensor(np.zeros((batch, d)))

            return self._fuse_batch(h_wide, h_deep, None)

    def _forward_from_blocks_sparse(
        self,
        blocks: np.ndarray,
        lengths: np.ndarray,
        *,
        wide_cap: int,
        deep_cap: int,
        num_walks: int,
    ) -> Tensor:
        """:meth:`forward_from_blocks` on the CSR kernels.

        Gathers only the valid slots out of the capacity-padded blocks
        (:func:`flat_slot_indices`) into flat CSR pack arrays — the
        serving hot path reads exactly the real rows and the attention
        stages never see capacity padding at all.
        """
        config = self.config
        d = config.dim
        batch = int(blocks.shape[0])
        capacity = int(blocks.shape[1])
        flat_blocks = blocks.reshape(batch * capacity, d)

        with trace_span(
            "widen.forward_from_blocks", batch=batch, kernel="sparse"
        ):
            if config.use_wide:
                starts = np.arange(batch, dtype=np.int64) * capacity
                indices, offsets = flat_slot_indices(lengths[:, 0], starts)
                packs = Tensor(flat_blocks[indices])
                with trace_span("widen.wide_pass", packs=int(offsets[-1])):
                    h_wide, _ = self._attend_wide_sparse(
                        packs, segment_ids(offsets), offsets
                    )
            else:
                h_wide = Tensor(np.zeros((batch, d)))

            if config.use_deep:
                starts = (
                    np.arange(batch, dtype=np.int64)[:, np.newaxis] * capacity
                    + wide_cap
                    + np.arange(num_walks, dtype=np.int64)[np.newaxis, :]
                    * deep_cap
                ).reshape(-1)
                indices, offsets = flat_slot_indices(
                    lengths[:, 1:].reshape(batch * num_walks), starts
                )
                packs = Tensor(flat_blocks[indices])
                pairs = (
                    causal_pairs(offsets) if config.use_successive else None
                )
                with trace_span("widen.deep_pass", packs=int(offsets[-1])):
                    h_deep, _ = self._attend_deep_sparse(
                        packs, segment_ids(offsets), offsets, pairs,
                        batch, num_walks,
                    )
            else:
                h_deep = Tensor(np.zeros((batch, d)))

            return self._fuse_batch(h_wide, h_deep, None)

    def logits(self, embeddings: Tensor) -> Tensor:
        """Class logits ``v' C`` (Eq. 10, pre-softmax)."""
        return self.classifier(embeddings)
