"""WIDEN — the paper's primary contribution.

Implements the wide and deep message passing network of Section 3:

- heterogeneous message packaging (Eqs. 1-2) in
  :meth:`~repro.core.model.WidenModel.pack_wide` / ``pack_deep``;
- wide attentive message passing PASS° (Eq. 3) and successive self-attentive
  deep passing PASS▷ (Eqs. 4-6) in :class:`~repro.core.model.WidenModel`;
- wide/deep fusion (Eq. 7);
- active downsampling — Algorithm 1 (wide shrinking), Algorithm 2 (deep
  pruning with contextualized relay edges, Eq. 8) in :mod:`repro.core.relay`,
  with the KL-divergence trigger (Eq. 9) in
  :class:`~repro.core.trainer.WidenTrainer`;
- the full training loop of Algorithm 3 plus inductive inference for nodes
  unseen during training.

Every Table-4 ablation is expressible through :class:`WidenConfig` switches
(see :mod:`repro.core.ablation`).
"""

from repro.core.classifier import WidenClassifier, migrate_checkpoint
from repro.core.config import WidenConfig
from repro.core.model import WidenModel
from repro.core.relay import RelayRecipe, prune_deep, shrink_wide
from repro.core.state import NeighborState, NeighborStateStore
from repro.core.train_loop import LocalTrainClient, TrainHistory, TrainLoop
from repro.core.trainer import WidenTrainer
from repro.core.ablation import ABLATION_VARIANTS, make_variant_config
from repro.core.analysis import downsampling_summary, edge_type_attention_profile
from repro.core.link_prediction import LinkPredictionTrainer, split_edges
from repro.core.unsupervised import UnsupervisedWidenTrainer

__all__ = [
    "WidenClassifier",
    "migrate_checkpoint",
    "WidenConfig",
    "WidenModel",
    "WidenTrainer",
    "TrainLoop",
    "TrainHistory",
    "LocalTrainClient",
    "RelayRecipe",
    "prune_deep",
    "shrink_wide",
    "NeighborState",
    "NeighborStateStore",
    "ABLATION_VARIANTS",
    "make_variant_config",
    "edge_type_attention_profile",
    "downsampling_summary",
    "LinkPredictionTrainer",
    "split_edges",
    "UnsupervisedWidenTrainer",
]
