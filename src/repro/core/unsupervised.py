"""Unsupervised WIDEN training — embeddings without any labels.

The paper positions WIDEN as "a versatile and generic heterogeneous graph
embedding model" optimized here for semi-supervised classification (Eq. 10).
This module supplies the fully unsupervised alternative used by the random-
walk line of work the paper builds on (GraphSAGE's context loss, itself a
SkipGram descendant):

    L = -log σ(z_a · z_p) - Σ_k E_{n~U} log σ(-z_a · z_n)

where the positive ``p`` co-occurs with anchor ``a`` on a short random walk
and the ``n`` are uniform negatives.  The resulting embeddings can feed any
downstream model; :meth:`UnsupervisedWidenTrainer.fit_classifier_probe`
trains a logistic-regression probe to quantify their quality.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.config import WidenConfig
from repro.core.model import WidenModel
from repro.core.state import NeighborStateStore
from repro.graph import HeteroGraph, random_walk
from repro.nn import Linear
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, functional as F, no_grad, ops
from repro.utils.rng import SeedLike, spawn_rngs


class UnsupervisedWidenTrainer:
    """Trains WIDEN embeddings with the walk-context objective."""

    def __init__(
        self,
        model: WidenModel,
        graph: HeteroGraph,
        config: WidenConfig,
        walk_length: int = 3,
        negatives: int = 2,
        seed: SeedLike = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config
        self.walk_length = walk_length
        self.negatives = negatives
        sample_rng, self._rng = spawn_rngs(seed, 2)
        self.store = NeighborStateStore(
            graph, config.num_wide, config.num_deep, config.num_deep_walks,
            rng=sample_rng, wide_sampling=config.wide_sampling,
        )
        self.optimizer = Adam(
            model.parameters(), lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self.losses: List[float] = []

    def fit(self, epochs: int, anchors_per_epoch: int = 128) -> "UnsupervisedWidenTrainer":
        for _ in range(epochs):
            anchors = self._rng.integers(
                self.graph.num_nodes, size=anchors_per_epoch
            )
            epoch_loss = 0.0
            batch_size = self.config.batch_size
            for start in range(0, anchors_per_epoch, batch_size):
                batch = anchors[start : start + batch_size]
                loss = self._step(batch)
                epoch_loss += loss * batch.size
            self.losses.append(epoch_loss / anchors_per_epoch)
        return self

    def _step(self, anchors: np.ndarray) -> float:
        triples = []
        for anchor in anchors:
            walk, _ = random_walk(self.graph, int(anchor), self.walk_length, rng=self._rng)
            if walk.size == 0:
                continue  # isolated node: no context to learn from
            positive = int(walk[self._rng.integers(walk.size)])
            negatives = self._rng.integers(self.graph.num_nodes, size=self.negatives)
            triples.append((int(anchor), positive, negatives))
        if not triples:
            return 0.0
        nodes = sorted(
            {a for a, _, _ in triples}
            | {p for _, p, _ in triples}
            | {int(n) for _, _, negs in triples for n in negs}
        )
        index_of: Dict[int, int] = {node: i for i, node in enumerate(nodes)}
        rows = []
        for node in nodes:
            state = self.store.get(node)
            embedding, _, _ = self.model(node, state, self.graph)
            rows.append(embedding)
        table = ops.stack(rows)

        scores = []
        targets = []
        for anchor, positive, negatives in triples:
            anchor_vec = table[index_of[anchor]]
            scores.append(ops.sum(anchor_vec * table[index_of[positive]]) * 4.0)
            targets.append(1.0)
            for negative in negatives:
                scores.append(ops.sum(anchor_vec * table[index_of[int(negative)]]) * 4.0)
                targets.append(0.0)
        loss = F.binary_cross_entropy_with_logits(
            ops.stack(scores), np.asarray(targets)
        )
        self.optimizer.zero_grad()
        loss.backward()
        if self.config.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return loss.item()

    def embed(self, nodes) -> np.ndarray:
        self.model.eval()
        rows = []
        with no_grad():
            for node in nodes:
                state = self.store.get(int(node))
                embedding, _, _ = self.model(int(node), state, self.graph)
                rows.append(embedding.data)
        self.model.train()
        return np.stack(rows)

    def fit_classifier_probe(
        self,
        train_nodes: np.ndarray,
        test_nodes: np.ndarray,
        epochs: int = 150,
        seed: SeedLike = 0,
    ) -> float:
        """Freeze embeddings, train a linear probe, return test accuracy."""
        train_embeddings = Tensor(self.embed(train_nodes))
        train_labels = self.graph.labels[np.asarray(train_nodes)]
        probe = Linear(self.config.dim, self.graph.num_classes, rng=seed)
        optimizer = Adam(probe.parameters(), lr=0.05)
        for _ in range(epochs):
            optimizer.zero_grad()
            F.cross_entropy(probe(train_embeddings), train_labels).backward()
            optimizer.step()
        with no_grad():
            logits = probe(Tensor(self.embed(test_nodes)))
        predictions = logits.data.argmax(axis=1)
        return float((predictions == self.graph.labels[np.asarray(test_nodes)]).mean())
