"""SGD and Adam optimizers, plus global-norm gradient clipping.

The paper trains WIDEN with a fixed learning rate (τ = 1e-4) and L2
regularization; both optimizers support ``weight_decay`` implementing the L2
term so models do not need to add it to their losses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- persistence (checkpoint format v3) -----------------------------
    #
    # Slot arrays are keyed by *position* in the parameter list, which is
    # deterministic (module registration order); the loader checks shapes
    # so a checkpoint from a different architecture fails loudly.

    def state_dict(self) -> dict:
        """Serializable internal state; base optimizers are stateless."""
        return {"kind": type(self).__name__.lower(), "slots": {}, "step_count": 0}

    def load_state_dict(self, state: dict) -> None:
        self._load_slots(state.get("slots", {}))
        self._load_scalars(state)

    def _load_scalars(self, state: dict) -> None:
        pass

    def _slot_names(self) -> tuple:
        return ()

    def _load_slots(self, slots: dict) -> None:
        for name in self._slot_names():
            arrays = slots.get(name)
            if arrays is None:
                continue
            current = getattr(self, f"_{name}")
            if len(arrays) != len(current):
                raise ValueError(
                    f"optimizer state has {len(arrays)} {name} slots for "
                    f"{len(current)} parameters"
                )
            for target, incoming in zip(current, arrays):
                incoming = np.asarray(incoming, dtype=target.dtype)
                if incoming.shape != target.shape:
                    raise ValueError(
                        f"optimizer {name} slot shape {incoming.shape} does "
                        f"not match parameter shape {target.shape}"
                    )
                np.copyto(target, incoming)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {
            "kind": "sgd",
            "step_count": 0,
            "slots": {"velocity": [v.copy() for v in self._velocity]},
        }

    def _slot_names(self) -> tuple:
        return ("velocity",)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._moment1 = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2 = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m1, m2 in zip(self.parameters, self._moment1, self._moment2):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m1 *= self.beta1
            m1 += (1.0 - self.beta1) * grad
            m2 *= self.beta2
            m2 += (1.0 - self.beta2) * grad**2
            param.data -= self.lr * (m1 / bias1) / (np.sqrt(m2 / bias2) + self.eps)

    def state_dict(self) -> dict:
        """Moments and step count — what exact training resume needs.

        The step count drives the bias-correction terms, so restoring the
        moments without it would silently change every post-resume update.
        """
        return {
            "kind": "adam",
            "step_count": int(self._step_count),
            "slots": {
                "moment1": [m.copy() for m in self._moment1],
                "moment2": [m.copy() for m in self._moment2],
            },
        }

    def _slot_names(self) -> tuple:
        return ("moment1", "moment2")

    def _load_scalars(self, state: dict) -> None:
        self._step_count = int(state.get("step_count", 0))


def global_grad_norm(grads: Iterable[Optional[np.ndarray]]) -> float:
    """Global L2 norm over a list of gradient arrays (``None`` entries skip).

    This is the exact summation :func:`clip_grad_norm` performs internally —
    same per-array ``(g**2).sum()``, same Python-float accumulation order —
    so a norm computed here over gathered (and reduced) per-shard gradients
    and passed back as ``clip_grad_norm(..., norm=...)`` clips every replica
    bit-identically to a single process clipping the same gradients itself.
    """
    return float(
        np.sqrt(sum(float((g**2).sum()) for g in grads if g is not None))
    )


def clip_grad_norm(
    parameters: Iterable[Parameter],
    max_norm: float,
    *,
    norm: Optional[float] = None,
) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).

    ``norm`` supplies a precomputed global norm instead of measuring the
    local gradients — the distributed-training hook: each shard holds the
    same reduced gradients, but the *clip decision and scale* must come from
    one globally agreed number, or replicas would drift whenever their local
    float summation order differed.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if norm is None:
        total = global_grad_norm(p.grad for p in parameters)
    else:
        total = float(norm)
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total
