"""Gradient-descent optimizers and learning-rate schedulers."""

from repro.optim.optimizers import (
    SGD,
    Adam,
    Optimizer,
    clip_grad_norm,
    global_grad_norm,
)
from repro.optim.schedulers import StepLR, CosineLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "global_grad_norm",
    "StepLR",
    "CosineLR",
]
