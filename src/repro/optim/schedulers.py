"""Learning-rate schedulers operating on an :class:`Optimizer` in place."""

from __future__ import annotations

import math

from repro.optim.optimizers import Optimizer


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        fraction = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * fraction)
        )
        return self.optimizer.lr
