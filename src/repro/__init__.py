"""repro — a full reproduction of WIDEN (ICDE 2022).

WIDEN is a wide and deep message passing network for inductive, efficient
representation learning on heterogeneous graphs.  This package implements the
model, every substrate it needs (an autograd engine, NN layers, optimizers, a
heterogeneous graph library, synthetic dataset generators), all eight
baselines from the paper's evaluation, and the evaluation tooling used to
regenerate every table and figure.

Quickstart::

    from repro.datasets import make_acm
    from repro.core import WidenClassifier
    from repro.eval import micro_f1

    dataset = make_acm(seed=0)
    model = WidenClassifier(seed=0, dim=32, num_wide=10, num_deep=8)
    model.fit(dataset.graph, dataset.split.train, epochs=20)
    pred = model.predict(dataset.split.test)
    print(micro_f1(dataset.graph.labels[dataset.split.test], pred))
"""

__version__ = "0.1.0"

from repro.tensor import Tensor, no_grad

__all__ = ["Tensor", "no_grad", "__version__"]
