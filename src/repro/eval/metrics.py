"""Classification metrics.

The paper evaluates with **micro-averaged F1** (Section 4.3), which for
single-label multi-class prediction equals accuracy; macro-F1 is provided for
the class-imbalance analyses in the extension benches.
"""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"label arrays must be 1-D and equal-length, got {y_true.shape} "
            f"and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """``C[i, j]`` = count of class-``i`` nodes predicted as class ``j``."""
    y_true, y_pred = _validate(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Micro-averaged F1: pool TP/FP/FN over classes.

    For exhaustive single-label classification, micro-F1 == accuracy; this
    computes it from the pooled counts anyway so the identity is *tested*
    rather than assumed.
    """
    matrix = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).sum()
    fp = matrix.sum() - tp  # every off-diagonal entry is one FP and one FN
    fn = fp
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)
    if precision + recall == 0:
        return 0.0
    return float(2 * precision * recall / (precision + recall))


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray, class_names=None
) -> str:
    """Per-class precision/recall/F1 table plus micro/macro summaries."""
    matrix = confusion_matrix(y_true, y_pred)
    num_classes = matrix.shape[0]
    if class_names is None:
        class_names = [f"class {c}" for c in range(num_classes)]
    if len(class_names) != num_classes:
        raise ValueError(
            f"{len(class_names)} names for {num_classes} classes"
        )
    lines = [f"{'':<12}{'precision':>10}{'recall':>8}{'f1':>8}{'support':>9}"]
    for cls in range(num_classes):
        tp = matrix[cls, cls]
        support = matrix[cls, :].sum()
        predicted = matrix[:, cls].sum()
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        lines.append(
            f"{class_names[cls]:<12}{precision:>10.3f}{recall:>8.3f}"
            f"{f1:>8.3f}{support:>9}"
        )
    lines.append(
        f"{'micro-F1':<12}{micro_f1(y_true, y_pred):>10.3f}"
        f"{'':>8}{'':>8}{len(np.asarray(y_true)):>9}"
    )
    lines.append(f"{'macro-F1':<12}{macro_f1(y_true, y_pred):>10.3f}")
    return "\n".join(lines)


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve for binary labels vs real-valued scores.

    Computed via the rank-statistic (Mann-Whitney U) formulation, with tie
    handling through midranks.  Used by the link-prediction extension.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise ValueError("y_true and scores must be equal-length 1-D arrays")
    positives = int((y_true == 1).sum())
    negatives = int((y_true == 0).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("roc_auc needs both positive and negative samples")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0  # midrank, 1-based
        i = j + 1
    positive_rank_sum = ranks[y_true == 1].sum()
    u_statistic = positive_rank_sum - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores (absent classes score 0)."""
    matrix = confusion_matrix(y_true, y_pred)
    scores = []
    for cls in range(matrix.shape[0]):
        tp = matrix[cls, cls]
        fp = matrix[:, cls].sum() - tp
        fn = matrix[cls, :].sum() - tp
        if matrix[cls, :].sum() == 0 and fp == 0:
            continue  # class absent from both truth and predictions
        denominator = 2 * tp + fp + fn
        scores.append(0.0 if denominator == 0 else 2 * tp / denominator)
    return float(np.mean(scores)) if scores else 0.0
