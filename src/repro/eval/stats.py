"""Statistical significance testing (Table 2/3's paired t-tests)."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats as scipy_stats


def paired_t_test(a: np.ndarray, b: np.ndarray) -> Tuple[float, float]:
    """Two-sided paired t-test between per-run scores of two methods.

    Returns ``(t_statistic, p_value)``.  The paper marks WIDEN's wins with
    p < 0.05 (single underline) and p < 0.01 (double underline) over the best
    baseline, from 5 repeated executions.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"need equal-length 1-D score arrays, got {a.shape}, {b.shape}")
    if a.size < 2:
        raise ValueError("paired t-test needs at least 2 paired scores")
    if np.allclose(a, b):
        return 0.0, 1.0
    result = scipy_stats.ttest_rel(a, b)
    return float(result.statistic), float(result.pvalue)


def significance_marker(p_value: float) -> str:
    """The paper's marks: ``**`` for p<0.01, ``*`` for p<0.05, else ``''``."""
    if p_value < 0.01:
        return "**"
    if p_value < 0.05:
        return "*"
    return ""
