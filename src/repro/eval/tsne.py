"""Exact t-SNE (van der Maaten & Hinton, 2008) for Figure 3.

Implements the reference algorithm: perplexity-calibrated Gaussian
affinities in the input space (binary search per point), Student-t
affinities in the embedding, KL-divergence gradient descent with momentum
and early exaggeration.  Exact O(n²) — entirely adequate at the ≤2k points
the visualization uses.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x**2).sum(axis=1)
    d2 = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_probabilities(
    distances: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Row-wise conditional probabilities with the requested perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = -np.inf, np.inf
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf  # exclude self
        for _ in range(max_iter):
            p = np.exp(-row * beta)
            total = p.sum()
            if total <= 0:
                entropy = 0.0
                p = np.zeros_like(p)
            else:
                p /= total
                nonzero = p[p > 0]
                entropy = float(-(nonzero * np.log(nonzero)).sum())
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:  # entropy too high -> sharpen
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == -np.inf else (beta + beta_low) / 2.0
        probabilities[i] = p
    return probabilities


def tsne(
    x: np.ndarray,
    num_components: int = 2,
    perplexity: float = 30.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Embed rows of ``x`` into ``num_components`` dimensions.

    Returns an ``(n, num_components)`` array.  Initialization is PCA (the
    modern default) perturbed with a little Gaussian noise.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 3:
        raise ValueError(f"t-SNE needs at least 3 points, got {n}")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = new_rng(seed)

    # Symmetrized joint probabilities with early exaggeration.
    conditional = _binary_search_probabilities(
        _pairwise_squared_distances(x), perplexity
    )
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    # PCA initialization.
    centered = x - x.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    y = centered @ vt[:num_components].T
    y = y / (np.abs(y).max() + 1e-12) * 1e-2
    y += rng.normal(0.0, 1e-4, size=y.shape)

    velocity = np.zeros_like(y)
    exaggeration = 4.0
    for iteration in range(iterations):
        p = joint * exaggeration if iteration < iterations // 4 else joint
        d2 = _pairwise_squared_distances(y)
        q_unnorm = 1.0 / (1.0 + d2)
        np.fill_diagonal(q_unnorm, 0.0)
        q = np.maximum(q_unnorm / q_unnorm.sum(), 1e-12)
        # Gradient: 4 Σ_j (p_ij - q_ij) q_unnorm_ij (y_i - y_j)
        coefficient = (p - q) * q_unnorm
        grad = 4.0 * (
            np.diag(coefficient.sum(axis=1)) @ y - coefficient @ y
        )
        momentum = 0.5 if iteration < 50 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
