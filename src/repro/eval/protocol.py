"""Protocol runners for the paper's two evaluation settings (Section 4.3).

- :func:`evaluate_transductive` — Table 2's setting: semi-supervised
  training on a fraction of the labeled split, micro-F1 on the test split.
  Full-graph models training on the large Yelp graph go through
  :func:`fit_on_partitions`, reproducing the paper's METIS workaround
  (Section 4.4) with our partitioner.
- :func:`evaluate_inductive` — Table 3's setting: 20% of labeled nodes are
  removed from the graph during training; the trained model must then embed
  and classify them in the restored full graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaseClassifier
from repro.datasets.dataset import Dataset
from repro.datasets.splits import label_fraction as subsample_labels
from repro.datasets.splits import make_inductive_split
from repro.eval.metrics import micro_f1
from repro.graph import HeteroGraph, partition_graph
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


def fit_on_partitions(
    model: BaseClassifier,
    graph: HeteroGraph,
    train_nodes: np.ndarray,
    epochs: int,
    num_parts: int,
    seed: SeedLike = None,
) -> BaseClassifier:
    """Train a full-graph model one partition at a time (the METIS protocol).

    Each epoch cycles over all partitions; training nodes falling in a
    partition are trained against that partition's subgraph only, so
    cross-partition edges are invisible during training — the exact handicap
    the paper imposes on full-graph models for the Yelp-scale setting.
    """
    parts = partition_graph(graph, num_parts, rng=new_rng(seed))
    train_set = np.asarray(train_nodes, dtype=np.int64)
    jobs = []
    for nodes in parts:
        subgraph, mapping = graph.subgraph(nodes)
        old_to_new = np.full(graph.num_nodes, -1, dtype=np.int64)
        old_to_new[mapping] = np.arange(mapping.size)
        local_train = old_to_new[np.intersect1d(train_set, mapping)]
        if local_train.size:
            jobs.append((subgraph, local_train))
    if not jobs:
        raise ValueError("no partition contains any training node")
    for _ in range(epochs):
        for subgraph, local_train in jobs:
            if model.graph is not None:
                model.rebind(subgraph)
            model.fit(subgraph, local_train, epochs=1)
    return model


def evaluate_transductive(
    model: BaseClassifier,
    dataset: Dataset,
    epochs: int,
    label_fraction: float = 1.0,
    num_parts: Optional[int] = None,
    seed: SeedLike = None,
) -> float:
    """Train on ``label_fraction`` of the training split; micro-F1 on test.

    ``num_parts`` switches on partition training (for full-graph models on
    the Yelp-scale dataset).
    """
    fraction_rng, partition_rng = spawn_rngs(seed, 2)
    train = (
        subsample_labels(dataset.split.train, label_fraction, rng=fraction_rng)
        if label_fraction < 1.0
        else dataset.split.train
    )
    if num_parts and num_parts > 1:
        fit_on_partitions(
            model, dataset.graph, train, epochs, num_parts, seed=partition_rng
        )
        predictions = model.predict(dataset.split.test, graph=dataset.graph)
    else:
        model.fit(dataset.graph, train, epochs)
        predictions = model.predict(dataset.split.test)
    return micro_f1(dataset.graph.labels[dataset.split.test], predictions)


def evaluate_inductive(
    model: BaseClassifier,
    dataset: Dataset,
    epochs: int,
    holdout_fraction: float = 0.2,
    seed: SeedLike = None,
) -> float:
    """Table 3's protocol: train with holdout nodes absent, then classify
    them in the restored full graph."""
    if not model.supports_inductive:
        raise ValueError(f"{model.name} does not support the inductive protocol")
    split = make_inductive_split(dataset, holdout_fraction, rng=new_rng(seed))
    model.fit(split.train_graph, split.train_nodes, epochs)
    predictions = model.predict(split.holdout, graph=dataset.graph)
    return micro_f1(dataset.graph.labels[split.holdout], predictions)
