"""Evaluation tooling: metrics, statistics, t-SNE, and protocol runners."""

from repro.eval.metrics import accuracy, confusion_matrix, macro_f1, micro_f1
from repro.eval.stats import paired_t_test
from repro.eval.tsne import tsne
from repro.eval.clustering import silhouette_score
from repro.eval.protocol import (
    evaluate_inductive,
    evaluate_transductive,
    fit_on_partitions,
)

__all__ = [
    "micro_f1",
    "macro_f1",
    "accuracy",
    "confusion_matrix",
    "paired_t_test",
    "tsne",
    "silhouette_score",
    "evaluate_transductive",
    "evaluate_inductive",
    "fit_on_partitions",
]
