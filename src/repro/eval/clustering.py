"""Cluster-quality metrics quantifying Figure 3's qualitative claim.

The paper argues (visually) that inductively learned embeddings form
class-pure, well-separated clusters; the silhouette score puts a number on
exactly that, letting the Figure-3 bench assert the claim.
"""

from __future__ import annotations

import numpy as np


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (range [-1, 1]).

    For each point: ``(b - a) / max(a, b)`` with ``a`` the mean intra-cluster
    distance and ``b`` the smallest mean distance to another cluster.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if x.shape[0] != labels.shape[0]:
        raise ValueError("points/labels length mismatch")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least 2 clusters")
    norms = (x**2).sum(axis=1)
    distances = np.sqrt(
        np.maximum(norms[:, None] + norms[None, :] - 2.0 * (x @ x.T), 0.0)
    )
    scores = np.zeros(x.shape[0])
    for i in range(x.shape[0]):
        own = labels == labels[i]
        own_count = own.sum() - 1
        if own_count == 0:
            scores[i] = 0.0
            continue
        a = distances[i, own].sum() / own_count
        b = min(
            distances[i, labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())
