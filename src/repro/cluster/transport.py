"""Pluggable message boundary between the router and its shard engines.

Every router↔shard interaction is a typed, picklable :class:`Envelope`
(serve batch, trace replay, mutation command, telemetry snapshot, metrics
pull, serving-state export, reset, shutdown) answered by a :class:`Reply`.
Nothing else crosses the boundary — no callables, no shared servers, no
live graph references — which is what makes the three transports
interchangeable:

- :class:`InlineTransport` — the engine runs on the caller's thread, but
  every envelope and reply still makes a ``pickle.dumps``/``loads``
  round-trip, so inline execution is a *deterministic replay of the wire
  protocol*, not a shortcut around it.  Used by equivalence tests and
  logical-clock replay benchmarks.
- :class:`ThreadTransport` — today's bounded-inbox worker thread: one
  daemon thread per shard consuming a bounded ``queue.Queue`` (enqueue
  blocks when the shard is hot — backpressure, not unbounded buffering).
- :class:`MpTransport` — a ``multiprocessing`` worker that rebuilds its
  engine (checkpoint + serialized shard payload) on spawn.  Real process
  isolation: shard compute escapes the GIL entirely, at the cost of
  pickling envelopes through OS pipes.

The ordering contract is identical everywhere: one shard = one FIFO
envelope stream, processed one envelope at a time.  A mutation envelope is
therefore a *barrier* — every serve envelope sent before it is answered
from pre-mutation state, everything after sees post-mutation state — and
an interleaved request/mutation stream produces bit-identical results on
all three transports.

Failures travel as data, not exceptions: a shard that raises answers with
an error reply (remote type, message, traceback), which
:meth:`PendingReply.result` re-raises as :class:`ShardError` on the
gathering side.  A shard that *stops answering* surfaces as
:class:`ShardTimeoutError` (deadline) or :class:`ShardCrashError` (the
worker process died) instead of hanging the router.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "Envelope",
    "Reply",
    "PendingReply",
    "Transport",
    "InlineTransport",
    "ThreadTransport",
    "MpTransport",
    "ShardError",
    "ShardTimeoutError",
    "ShardCrashError",
    "TRANSPORT_KINDS",
    "register_transport",
    "registered_transports",
    "validate_transport",
]

#: Transport registry: name -> one-line description, rendered into the
#: eager-validation error so a typo'd ``transport=`` fails at router
#: construction with the full menu, not deep inside a spawn path.
_TRANSPORT_REGISTRY: Dict[str, str] = {}


def register_transport(name: str, description: str) -> None:
    _TRANSPORT_REGISTRY[str(name)] = str(description)


def registered_transports() -> tuple:
    return tuple(sorted(_TRANSPORT_REGISTRY))


def validate_transport(name: str) -> str:
    """Eager transport-name validation; raises with the registered menu."""
    if name in _TRANSPORT_REGISTRY:
        return name
    menu = "\n".join(
        f"  {kind:<8} {_TRANSPORT_REGISTRY[kind]}"
        for kind in registered_transports()
    )
    raise ValueError(
        f"unknown transport {name!r}; registered transports:\n{menu}"
    )


register_transport("inline", "engine on the caller's thread (deterministic replay)")
register_transport("thread", "bounded-inbox worker thread per shard")
register_transport("mp", "one OS process per shard (checkpoint spawn)")
register_transport("socket", "TCP worker per shard (repro.cluster.net; multi-host)")

TRANSPORT_KINDS = ("inline", "thread", "mp", "socket")

#: Envelope kinds understood by :class:`repro.cluster.engine.ShardEngine`
#: (``serve`` family) and :class:`repro.cluster.train.TrainEngine` (``train``
#: family — the phase commands of :class:`repro.core.train_loop.TrainLoop`).
ENVELOPE_KINDS = (
    "serve",
    "replay",
    "mutate",
    "telemetry",
    "metrics",
    "serving_state",
    "clock",
    "reset",
    "shutdown",
    "train_epoch_begin",
    "train_microbatch",
    "train_grads",
    "train_apply",
    "train_epoch_end",
    "train_checkpoint",
)

#: Sequence number of the spawn-handshake reply an engine process sends
#: once its server is fully rebuilt (or fails to build).
READY_SEQ = -1


@dataclass
class Envelope:
    """One typed message from the router to a shard engine.

    ``trace_ctx`` is the distributed-tracing context (trace id, parent
    span, router send timestamp — see :func:`repro.obs.dist.make_trace_ctx`).
    ``None`` means untraced and is the default: the engine's check for it
    is a single attribute read, keeping the disabled path the hot path.
    """

    kind: str
    payload: dict = field(default_factory=dict)
    seq: int = -1  # assigned by the transport at send time
    trace_ctx: Optional[dict] = None


@dataclass
class Reply:
    """The engine's answer to one envelope.

    ``ok=False`` carries ``error = {"type", "message", "traceback"}`` —
    failures are data on the wire, raised only at :meth:`PendingReply.result`.
    ``trace`` piggybacks the shard's span buffer for a traced envelope
    (``{"shard", "pid", "spans"}``); it rides error replies too, so a
    raising engine's trace data still reaches the router.
    """

    seq: int
    ok: bool
    payload: object = None
    error: Optional[Dict[str, str]] = None
    trace: Optional[dict] = None


def error_info(exc: BaseException) -> Dict[str, str]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


class ShardError(RuntimeError):
    """A shard engine answered an envelope with an error reply."""

    def __init__(self, shard_id: int, error: Dict[str, str]) -> None:
        self.shard_id = shard_id
        self.remote_type = error.get("type", "Exception")
        self.remote_message = error.get("message", "")
        self.remote_traceback = error.get("traceback", "")
        super().__init__(
            f"shard {shard_id} failed: {self.remote_type}: {self.remote_message}"
        )


class ShardTimeoutError(TimeoutError):
    """A shard did not answer an envelope within the gather deadline."""

    def __init__(self, shard_id: int, timeout: float, kind: str) -> None:
        self.shard_id = shard_id
        super().__init__(
            f"shard {shard_id} did not answer {kind!r} within {timeout:.3f}s"
        )


class ShardCrashError(RuntimeError):
    """A shard worker process died before answering."""

    def __init__(self, shard_id: int, exitcode: Optional[int]) -> None:
        self.shard_id = shard_id
        super().__init__(
            f"shard {shard_id} worker process died (exitcode={exitcode})"
        )


class PendingReply:
    """Handle for one in-flight envelope; :meth:`result` gathers it.

    The async scatter-gather contract: ``send`` never blocks on the
    *answer* (only, for bounded transports, on inbox backpressure), and the
    router gathers whole groups of pending replies after issuing them all.
    """

    def __init__(self, shard_id: int, kind: str) -> None:
        self.shard_id = shard_id
        self.kind = kind

    def wait(self, timeout: Optional[float] = None) -> Reply:
        """Block for the raw :class:`Reply` (ok or error)."""
        raise NotImplementedError

    def result(self, timeout: Optional[float] = None) -> object:
        """The reply payload; raises :class:`ShardError` on error replies."""
        reply = self.wait(timeout)
        if not reply.ok:
            raise ShardError(self.shard_id, reply.error or {})
        return reply.payload


class _ResolvedReply(PendingReply):
    def __init__(self, shard_id: int, kind: str, reply: Reply) -> None:
        super().__init__(shard_id, kind)
        self._reply = reply

    def wait(self, timeout: Optional[float] = None) -> Reply:
        return self._reply


class _FutureReply(PendingReply):
    def __init__(self, shard_id: int, kind: str) -> None:
        super().__init__(shard_id, kind)
        self._event = threading.Event()
        self._reply: Optional[Reply] = None

    def deliver(self, reply: Reply) -> None:
        self._reply = reply
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Reply:
        if not self._event.wait(timeout):
            raise ShardTimeoutError(self.shard_id, timeout or 0.0, self.kind)
        return self._reply


class Transport:
    """One shard's message channel.  Lifecycle: start → send* → stop."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def start(self) -> "Transport":
        """Launch the channel (spawn the process / thread).  Non-blocking
        where possible so a fleet can overlap spawns; pair with
        :meth:`wait_ready`."""
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until the engine behind the channel is fully built."""

    def send(self, envelope: Envelope) -> PendingReply:
        raise NotImplementedError

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the engine down; drains outstanding envelopes first."""


def _safe_handle(engine, envelope: Envelope) -> Reply:
    """Dispatch one envelope; an engine that *raises* (instead of returning
    an error reply itself) must not kill the transport loop."""
    try:
        return engine.handle(envelope)
    except BaseException as exc:
        return Reply(seq=envelope.seq, ok=False, error=error_info(exc))


class InlineTransport(Transport):
    """Engine on the caller's thread, protocol on a real pickle boundary.

    Every envelope and reply is round-tripped through ``pickle`` before and
    after dispatch, so inline results are exactly what the mp transport
    would produce — minus the scheduler.  This is the deterministic-replay
    transport: logical-clock arrivals drive batch composition, nothing
    else.
    """

    def __init__(self, shard_id: int, engine_factory: Callable[[], object]) -> None:
        super().__init__(shard_id)
        self._engine_factory = engine_factory
        self._engine = None

    def start(self) -> "InlineTransport":
        if self._engine is None:
            self._engine = self._engine_factory()
        return self

    @property
    def engine(self):
        """The local engine (inline transport only; used by tests)."""
        return self._engine

    def send(self, envelope: Envelope) -> PendingReply:
        if self._engine is None:
            raise RuntimeError(f"shard {self.shard_id} transport not started")
        envelope.seq = self._next_seq()
        wire = pickle.loads(pickle.dumps(envelope))
        reply = pickle.loads(pickle.dumps(_safe_handle(self._engine, wire)))
        return _ResolvedReply(self.shard_id, envelope.kind, reply)

    def stop(self, timeout: float = 10.0) -> None:
        if self._engine is not None:
            self._engine.handle(Envelope(kind="shutdown", seq=self._next_seq()))
            self._engine = None


class ThreadTransport(Transport):
    """Bounded-inbox worker thread: the single-process concurrency tier.

    The engine is built *on the worker thread* (single-writer ownership of
    the shard server from birth); construction failures surface from
    :meth:`wait_ready`.  ``send`` blocks only when the bounded inbox is
    full — backpressure on the router, never unbounded buffering.
    """

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], object],
        *,
        inbox_capacity: int = 256,
    ) -> None:
        if inbox_capacity < 1:
            raise ValueError(f"inbox_capacity must be >= 1, got {inbox_capacity}")
        super().__init__(shard_id)
        self._engine_factory = engine_factory
        self._inbox: "queue.Queue" = queue.Queue(maxsize=inbox_capacity)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._ready_error: Optional[BaseException] = None

    def start(self) -> "ThreadTransport":
        if self._thread is not None:
            raise RuntimeError(f"shard {self.shard_id} transport already started")
        self._thread = threading.Thread(
            target=self._run, name=f"shard-{self.shard_id}", daemon=True
        )
        self._thread.start()
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        if self._thread is None:
            raise RuntimeError(f"shard {self.shard_id} transport not started")
        if not self._ready.wait(timeout):
            raise ShardTimeoutError(self.shard_id, timeout or 0.0, "ready")
        if self._ready_error is not None:
            raise self._ready_error

    def _run(self) -> None:
        try:
            engine = self._engine_factory()
        except BaseException as exc:  # surfaced via wait_ready
            self._ready_error = exc
            self._ready.set()
            return
        self._ready.set()
        while True:
            envelope, pending = self._inbox.get()
            pending.deliver(_safe_handle(engine, envelope))
            if envelope.kind == "shutdown":
                return

    @property
    def inbox_depth(self) -> int:
        return self._inbox.qsize()

    def send(self, envelope: Envelope) -> PendingReply:
        if self._thread is None:
            raise RuntimeError(f"shard {self.shard_id} transport not started")
        envelope.seq = self._next_seq()
        pending = _FutureReply(self.shard_id, envelope.kind)
        self._inbox.put((envelope, pending))  # blocks when full: backpressure
        return pending

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        # A transport whose engine never built has no loop to shut down.
        if self._ready.wait(timeout) and self._ready_error is None:
            pending = self.send(Envelope(kind="shutdown"))
            pending.wait(timeout)
        self._thread.join(timeout)
        self._thread = None


def _engine_process_main(engine_args: bytes, inbox, outbox) -> None:
    """Entry point of one shard worker process.

    Rebuilds the engine from explicitly pickled arguments (shard payload +
    checkpoint path + config — the ``engine`` key picks serving vs training,
    see :func:`repro.cluster.engine.build_engine_from_args`), acknowledges
    with a ready reply, then serves the envelope stream FIFO until a
    shutdown envelope.  Every failure — including construction — travels
    back as an error reply; the process never raises across the pipe.
    """
    try:
        from repro.cluster.engine import build_engine_from_args

        engine = build_engine_from_args(pickle.loads(engine_args))
    except BaseException as exc:
        outbox.put(Reply(seq=READY_SEQ, ok=False, error=error_info(exc)))
        return
    outbox.put(Reply(seq=READY_SEQ, ok=True, payload={"pid": os.getpid()}))
    while True:
        envelope = inbox.get()
        outbox.put(_safe_handle(engine, envelope))
        if envelope.kind == "shutdown":
            return


class MpTransport(Transport):
    """A shard engine in its own OS process, fed through pipe-backed queues.

    ``engine_args`` is an **explicitly pickled** blob (shard payload +
    checkpoint path + config) so the serialization boundary is real even
    under the ``fork`` start method — nothing the engine needs may ride
    along in inherited memory.  Spawn cost is plan-shipping plus one
    checkpoint load; :meth:`start` only launches the process, and
    :meth:`wait_ready` collects the handshake the child sends once its
    server is rebuilt (so a router can overlap a whole fleet's spawns,
    and a temp-file checkpoint can be deleted the moment every shard has
    confirmed loading it).

    Replies may be gathered out of order relative to other pending
    envelopes, so the receive side stashes replies by sequence number.
    Gathering polls the worker's liveness: a dead process raises
    :class:`ShardCrashError` instead of blocking forever.
    """

    def __init__(
        self,
        shard_id: int,
        engine_args: bytes,
        *,
        inbox_capacity: int = 256,
        start_timeout: float = 120.0,
        mp_context: Optional[str] = None,
    ) -> None:
        if inbox_capacity < 1:
            raise ValueError(f"inbox_capacity must be >= 1, got {inbox_capacity}")
        super().__init__(shard_id)
        ctx = multiprocessing.get_context(mp_context)
        self._inbox = ctx.Queue(maxsize=inbox_capacity)
        self._outbox = ctx.Queue()
        self._process = ctx.Process(
            target=_engine_process_main,
            args=(engine_args, self._inbox, self._outbox),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._start_timeout = float(start_timeout)
        self._stash: Dict[int, Reply] = {}
        self._ready = False
        self._lock = threading.Lock()

    def start(self) -> "MpTransport":
        if self._process.pid is not None:
            raise RuntimeError(f"shard {self.shard_id} transport already started")
        self._process.start()
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        if self._ready:
            return
        reply = self._collect(READY_SEQ, timeout or self._start_timeout, "ready")
        if not reply.ok:
            raise ShardError(self.shard_id, reply.error or {})
        self._ready = True

    def send(self, envelope: Envelope) -> PendingReply:
        if self._process.pid is None:
            raise RuntimeError(f"shard {self.shard_id} transport not started")
        envelope.seq = self._next_seq()
        self._inbox.put(envelope)  # bounded: blocks when the shard is hot
        return _MpPendingReply(self, envelope.seq, envelope.kind)

    def _collect(self, seq: int, timeout: Optional[float], kind: str) -> Reply:
        """Pop the reply for ``seq``, stashing out-of-order arrivals."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if seq in self._stash:
                    return self._stash.pop(seq)
                try:
                    reply = self._outbox.get(timeout=0.05)
                except queue.Empty:
                    reply = None
                if reply is not None:
                    if reply.seq == seq:
                        return reply
                    self._stash[reply.seq] = reply
                    continue
            if not self._process.is_alive():
                # One final non-blocking sweep: the reply may have landed
                # between the timeout and the liveness check.
                with self._lock:
                    self._drain_outbox()
                    if seq in self._stash:
                        return self._stash.pop(seq)
                raise ShardCrashError(self.shard_id, self._process.exitcode)
            if deadline is not None and time.monotonic() >= deadline:
                raise ShardTimeoutError(self.shard_id, timeout, kind)

    def _drain_outbox(self) -> None:
        while True:
            try:
                reply = self._outbox.get_nowait()
            except queue.Empty:
                return
            self._stash[reply.seq] = reply

    def stop(self, timeout: float = 10.0) -> None:
        if self._process.pid is None:
            return
        if self._process.is_alive():
            try:
                self.wait_ready(self._start_timeout)
                pending = self.send(Envelope(kind="shutdown"))
                pending.wait(timeout)
            except (ShardError, ShardCrashError, ShardTimeoutError):
                pass
            self._process.join(timeout)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout)
        for q in (self._inbox, self._outbox):
            q.cancel_join_thread()
            q.close()


class _MpPendingReply(PendingReply):
    def __init__(self, transport: MpTransport, seq: int, kind: str) -> None:
        super().__init__(transport.shard_id, kind)
        self._transport = transport
        self._seq = seq

    def wait(self, timeout: Optional[float] = None) -> Reply:
        return self._transport._collect(self._seq, timeout, self.kind)
