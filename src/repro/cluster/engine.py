"""The engine side of the shard boundary: envelopes in, replies out.

:class:`ShardEngine` is everything that lives *behind* a transport: one
rebuilt :class:`~repro.cluster.planner.ShardSpec` (its own graph, its own
arrays — never shared with the router) and one
:class:`~repro.serve.server.InferenceServer` over it.  The protocol layer
(:class:`~repro.cluster.worker.ShardWorker` + a transport) never touches
the server; it only ships :class:`~repro.cluster.transport.Envelope`\\ s,
and :meth:`handle` is the single dispatch point — which is why the same
engine code runs inline, on a worker thread, and in a spawned process
without any behavioral difference.

Envelope kinds:

- ``serve`` — a batch of requests for owned nodes.  Submit-all then drain,
  so the server's micro-batcher sees the whole group at once; per-item
  outcomes (a bad node id fails its own item, not its neighbors').
- ``replay`` — a shard's slice of a logical-clock trace, processed
  atomically inside one envelope: arrivals come from trace times, so batch
  composition is identical on every transport (the scheduler never gets a
  vote).
- ``mutate`` — one serializable planner command, applied to the engine's
  own spec copy.  The graph mutation fires the server's invalidation hook
  exactly as on a whole-graph server.  FIFO envelope order makes this a
  barrier between the serve envelopes around it.
- ``telemetry`` / ``metrics`` / ``serving_state`` — snapshot pulls, all
  answered as plain payloads (the obs layer's serializable forms).
- ``clock`` — a clock-alignment probe (raw ``perf_counter`` + pid) used by
  the distributed tracer to map this process's span timestamps onto the
  router's timeline.
- ``reset`` — clear telemetry + the logical clock (between replay passes).
- ``shutdown`` — detach the server; the transport tears the channel down.

Every handler runs under a try/except that converts failures into error
replies — exceptions are data on this boundary, raised again only at the
router's gather.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

import numpy as np

from repro.cluster.planner import ShardSpec
from repro.cluster.transport import Envelope, Reply, error_info
from repro.obs.dist import spans_to_wire
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, set_thread_tracer
from repro.serve.server import InferenceServer


def build_engine_from_args(args: Dict[str, object]):
    """Build whichever engine family ``args`` asks for.

    The single dispatch point every spawned worker uses
    (``_engine_process_main`` for mp, ``ShardWorkerServer`` for sockets):
    ``args["engine"]`` selects ``"serve"`` (default, and the implicit value
    in every pre-training spawn payload) or ``"train"`` — same wire shape,
    same ready-handshake, different envelope vocabulary behind it.
    """
    family = args.get("engine", "serve")
    if family == "serve":
        return ShardEngine.from_args(args)
    if family == "train":
        from repro.cluster.train import TrainEngine

        return TrainEngine.from_args(args)
    raise ValueError(f"unknown engine family {family!r}")


class ShardEngine:
    """One shard's serving state plus the envelope dispatch loop."""

    def __init__(self, spec: ShardSpec, server: InferenceServer) -> None:
        self.spec = spec
        self.server = server
        self.closed = False

    # ------------------------------------------------------------------
    # Construction (runs wherever the transport puts the engine)
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        spec_payload: Dict[str, object],
        *,
        config: Dict[str, object],
        checkpoint: Optional[str] = None,
        classifier_factory=None,
    ) -> "ShardEngine":
        """Rebuild a shard from its serialized plan slice.

        ``checkpoint`` is the spawn path every transport can use (the mp
        worker *must*: a live classifier does not cross the pipe);
        ``classifier_factory`` is the in-process alternative for routers
        constructed around a factory.  Either way the engine's spec comes
        from :meth:`ShardSpec.from_payload` — independent arrays, so the
        router-side mirror and the engine advance only via the shared
        command stream, never via aliasing.
        """
        spec = ShardSpec.from_payload(spec_payload)
        kwargs = dict(
            max_batch_size=int(config.get("max_batch_size", 16)),
            max_wait=float(config.get("max_wait", 0.002)),
            cache_capacity=int(config.get("cache_capacity", 1024)),
            seed=int(config.get("seed", 0)),
            registry=MetricsRegistry(),  # private per shard; merged on render
        )
        if checkpoint is not None:
            server = InferenceServer.from_checkpoint(
                checkpoint, spec.graph, **kwargs
            )
        elif classifier_factory is not None:
            server = InferenceServer(
                classifier_factory(spec.graph), spec.graph, **kwargs
            )
        else:
            raise ValueError("need a checkpoint path or a classifier_factory")
        store_payload = config.get("store")
        if store_payload is not None:
            # The shard's slice of the materialized-aggregate store
            # (owned nodes only — halo nodes are never served locally, so
            # shipping their rows would be dead weight).  Plain arrays, so
            # the same payload works in-process and across the mp pickle
            # boundary.
            from repro.store import AggregateStore

            server.attach_store(AggregateStore.from_payload(store_payload))
        return cls(spec, server)

    @classmethod
    def from_args(cls, args: Dict[str, object]) -> "ShardEngine":
        """Entry point for spawned workers (see ``_engine_process_main`` and
        :class:`repro.cluster.net.ShardWorkerServer`).

        ``checkpoint`` is a path (mp workers share a filesystem with the
        router); ``checkpoint_bytes`` is the raw ``.npz`` contents for
        socket workers on machines that share nothing — staged through a
        private temp file and deleted once loaded.  ``serving_state`` (when
        present) is restored after the build, so a respawned engine adopts
        the exact version counters of the baseline it was rebuilt from.
        """
        import tempfile

        checkpoint = args.get("checkpoint")
        checkpoint_bytes = args.get("checkpoint_bytes")
        staged: Optional[str] = None
        if checkpoint is None and checkpoint_bytes is not None:
            fd, staged = tempfile.mkstemp(prefix="repro-ckpt-", suffix=".npz")
            with os.fdopen(fd, "wb") as handle:
                handle.write(checkpoint_bytes)
            checkpoint = staged
        try:
            engine = cls.build(
                args["spec_payload"],
                config=args["config"],
                checkpoint=checkpoint,
            )
        finally:
            if staged is not None:
                try:
                    os.unlink(staged)
                except OSError:
                    pass
        serving_state = args.get("serving_state")
        if serving_state is not None:
            engine.server.restore_serving_state(serving_state)
        return engine

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, envelope: Envelope) -> Reply:
        # The untraced path pays exactly one attribute check here.
        if envelope.trace_ctx is not None:
            return self._handle_traced(envelope)
        try:
            handler = getattr(self, f"_handle_{envelope.kind}", None)
            if handler is None:
                raise ValueError(f"unknown envelope kind {envelope.kind!r}")
            return Reply(seq=envelope.seq, ok=True, payload=handler(envelope.payload))
        except Exception as exc:
            self._count_error(envelope.kind)
            return Reply(seq=envelope.seq, ok=False, error=error_info(exc))

    def _handle_traced(self, envelope: Envelope) -> Reply:
        """Dispatch one envelope under a private per-envelope tracer.

        The tracer is installed as *this thread's* override (never the
        process-wide tracer — concurrent shard threads would
        cross-contaminate buffers), rooted in a span that echoes the
        router's trace id and send timestamp so the stitcher can bridge
        the queue+wire gap.  The span buffer rides the reply — error
        replies included, so a raising engine's trace survives.
        """
        ctx = envelope.trace_ctx
        tracer = Tracer(enabled=True)
        previous = set_thread_tracer(tracer)
        try:
            with tracer.span(
                f"shard.{envelope.kind}",
                trace_id=ctx.get("trace_id"),
                send_ts=ctx.get("send_ts"),
                shard=self.spec.shard_id,
            ):
                try:
                    handler = getattr(self, f"_handle_{envelope.kind}", None)
                    if handler is None:
                        raise ValueError(
                            f"unknown envelope kind {envelope.kind!r}"
                        )
                    payload = handler(envelope.payload)
                    error = None
                except Exception as exc:
                    payload = None
                    error = error_info(exc)
        finally:
            set_thread_tracer(previous)
        trace = {
            "shard": int(self.spec.shard_id),
            "pid": os.getpid(),
            "spans": spans_to_wire(tracer),
        }
        if error is not None:
            self._count_error(envelope.kind)
            return Reply(
                seq=envelope.seq, ok=False, error=error, trace=trace
            )
        return Reply(seq=envelope.seq, ok=True, payload=payload, trace=trace)

    def _count_error(self, kind: str) -> None:
        """Error replies are observable: ``shard_errors_total{kind=...}``."""
        try:
            self.server.telemetry.registry.counter(
                "shard_errors_total", kind=kind
            ).inc()
        except Exception:
            pass  # a broken registry must not mask the original error

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _handle_serve(self, payload: Dict[str, object]) -> Dict[str, object]:
        nodes = np.atleast_1d(np.asarray(payload["nodes"], dtype=np.int64))
        kind = payload.get("kind", "classify")
        now = payload.get("now")
        items = []
        request_ids = []
        for node in nodes:
            try:
                request_ids.append(
                    self.server.submit(int(node), kind=kind, now=now)
                )
                items.append(None)  # filled after the drain
            except Exception as exc:  # bad node id etc. — fail this item only
                request_ids.append(None)
                items.append({"ok": False, "error": error_info(exc)})
        self.server.drain()
        for position, request_id in enumerate(request_ids):
            if request_id is None:
                continue
            try:
                result = self.server.result(request_id)
                items[position] = {
                    "ok": True,
                    "value": result.value,
                    "rung": result.rung,
                    "queue_wait": result.queue_wait,
                    "compute": result.compute,
                }
            except Exception as exc:
                items[position] = {"ok": False, "error": error_info(exc)}
        return {"items": items}

    def _handle_replay(self, payload: Dict[str, object]) -> Dict[str, object]:
        nodes = np.atleast_1d(np.asarray(payload["nodes"], dtype=np.int64))
        times = np.atleast_1d(np.asarray(payload["times"], dtype=np.float64))
        if nodes.size != times.size:
            raise ValueError("replay nodes/times length mismatch")
        request_ids = [
            self.server.submit(int(node), now=float(t))
            for node, t in zip(nodes, times)
        ]
        end = payload.get("end")
        self.server.drain(None if end is None else float(end))
        for request_id in request_ids:
            self.server.result(request_id)
        return {"served": len(request_ids)}

    def _handle_mutate(self, payload: Dict[str, object]) -> Dict[str, object]:
        # spec.apply mutates the shard graph, which fires the server's
        # registered invalidation hook — same event, same frontier bumps
        # as a whole-graph server observing the same mutation.
        self.spec.apply(payload["command"])
        return {"version": int(self.spec.graph.version)}

    def _handle_telemetry(self, payload: Dict[str, object]) -> Dict[str, object]:
        telemetry = self.server.telemetry
        return {
            "telemetry": telemetry.to_payload(),
            "summary": telemetry.summary(),
            "cache_size": len(self.server.cache),
        }

    def _handle_metrics(self, payload: Dict[str, object]) -> Dict[str, object]:
        # Snapshot (not the raw registry): includes the cache node-hit
        # histogram and store gauges, so the cluster-wide exposition shows
        # store efficacy per shard.
        return {"registry": self.server.metrics_registry_snapshot().to_payload()}

    def _handle_serving_state(self, payload: Dict[str, object]) -> Dict[str, object]:
        return {"serving_state": self.server.export_serving_state()}

    def _handle_clock(self, payload: Dict[str, object]) -> Dict[str, object]:
        # Clock-alignment probe: the raw monotonic reading this process's
        # span timestamps are measured on (see repro.obs.dist.clock_handshake).
        return {
            "mono": time.perf_counter(),
            "wall": time.time(),
            "pid": os.getpid(),
        }

    def _handle_reset(self, payload: Dict[str, object]) -> Dict[str, object]:
        self.server.telemetry.reset()
        self.server.reset_clock()
        return {}

    def _handle_shutdown(self, payload: Dict[str, object]) -> Dict[str, object]:
        if not self.closed:
            self.server.close()
            self.closed = True
        return {}
