"""Data-parallel distributed training over the cluster substrate.

Training rides the exact serving stack: :class:`~repro.cluster.planner.
ShardPlanner` partitions the training graph (owned nodes + a reach-``k``
halo whose verbatim adjacency lists make partition-local sampling
bit-identical to whole-graph sampling), the ``train`` family of
:class:`~repro.cluster.transport.Envelope` kinds rides any registered
transport (``inline``/``thread``/``mp``/``socket``), and per-shard metrics
merge through the same registry-payload path ``/metrics`` scrapes.

Three pieces:

- :class:`TrainEngine` — the engine side: one shard's graph slice, one
  full model replica (rebuilt from a v3 checkpoint, so optimizer moments
  and every rng stream arrive intact), one
  :class:`~repro.core.trainer.WidenTrainer` answering phase envelopes.
- :class:`TrainWorker` — the coordinator's client stub; its methods return
  :class:`~repro.cluster.transport.PendingReply` handles shaped exactly
  like :class:`~repro.core.train_loop.LocalTrainClient`'s, so
  :class:`~repro.core.train_loop.TrainLoop` drives a fleet and a local
  trainer through one code path.
- :class:`DistributedTrainer` — plans the partition, spawns the fleet,
  runs the loop, checkpoints per shard for elastic resume.

The synchronization story (why replicas stay bitwise aligned): every
replica restores the *same* checkpoint, so every replica's shuffle stream
produces the same epoch schedule locally; every global step reduces
contributor gradients once, computes one global clip norm, and applies the
same ``(grads, norm)`` on every replica — including shards that owned no
rows of the microbatch, so Adam's step count stays in lockstep.  What a
replica does *not* share is its per-node neighbor state and dropout/drop
streams; each node is owned by exactly one shard, so those streams are
self-consistent where they matter.  Matching a single-process run beyond
loss-curve tolerance additionally wants ``sample_seeding="per_node"``
(neighbor sets become a pure function of node id), ``dropout=0`` and
``downsample_mode="off"`` — the remaining difference is float
reassociation from batch splitting, at 1e-15 scale.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.net import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_MISSES,
    DEFAULT_MAX_FRAME_BYTES,
    LocalWorkerSpawner,
    ShardRegistry,
    SocketTransport,
)
from repro.cluster.planner import ClusterPlan, ShardPlanner, ShardSpec
from repro.cluster.transport import (
    Envelope,
    InlineTransport,
    MpTransport,
    PendingReply,
    Reply,
    ThreadTransport,
    Transport,
    error_info,
    validate_transport,
)
from repro.core.train_loop import TrainHistory, TrainLoop
from repro.graph import HeteroGraph
from repro.obs.metrics import MetricsRegistry
from repro.serve.server import load_checkpoint_classifier, serving_reach_of

__all__ = ["TrainEngine", "TrainWorker", "DistributedTrainer"]

MANIFEST_NAME = "manifest.json"


class TrainEngine:
    """One shard's training replica behind the envelope boundary.

    Holds a partition-local graph slice and a full model replica whose
    parameters, optimizer moments and rng streams came from a checkpoint —
    the same spawn contract serving engines use, which is why the mp and
    socket transports run training workers through their existing spawn
    paths unchanged (``engine_args["engine"] = "train"`` is the only
    difference on the wire).
    """

    def __init__(self, spec: ShardSpec, classifier) -> None:
        self.spec = spec
        self.classifier = classifier
        self.trainer = classifier.trainer
        self.registry = MetricsRegistry()  # private per shard; merged on pull
        # Route the trainer's hot-path instruments (attention entropy, KL)
        # and per-epoch series into the shard-private registry so the
        # coordinator's merge can label them by shard.
        self.trainer.set_registry(self.registry)
        self._step_seconds = self.registry.histogram("train_shard_step_seconds")
        self.closed = False

    # ------------------------------------------------------------------
    # Construction (runs wherever the transport puts the engine)
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        spec_payload: Dict[str, object],
        *,
        config: Dict[str, object],
        checkpoint: Optional[str] = None,
    ) -> "TrainEngine":
        """Rebuild a training shard from its plan slice + checkpoint.

        The checkpoint must be format v3 if training is to resume
        mid-stream (optimizer moments + trainer progress); a fresh run's
        base checkpoint — saved right after build, zero epochs — works the
        same way, every replica restoring identical rng streams.
        """
        if checkpoint is None:
            raise ValueError("training shards spawn from a checkpoint")
        spec = ShardSpec.from_payload(spec_payload)
        classifier = load_checkpoint_classifier(checkpoint, graph=spec.graph)
        if getattr(classifier, "trainer", None) is None:
            raise ValueError(
                f"{type(classifier).__name__} did not rebuild a trainer from "
                f"{checkpoint!r}; distributed training needs a graph-bound "
                "trainer"
            )
        return cls(spec, classifier)

    @classmethod
    def from_args(cls, args: Dict[str, object]) -> "TrainEngine":
        """Spawn entry point (mp process main / socket worker server).

        Mirrors :meth:`ShardEngine.from_args`: ``checkpoint`` is a path for
        workers sharing a filesystem, ``checkpoint_bytes`` the raw ``.npz``
        contents for socket workers that share nothing — staged through a
        private temp file and deleted once loaded.
        """
        checkpoint = args.get("checkpoint")
        checkpoint_bytes = args.get("checkpoint_bytes")
        staged: Optional[str] = None
        if checkpoint is None and checkpoint_bytes is not None:
            fd, staged = tempfile.mkstemp(prefix="repro-train-ckpt-", suffix=".npz")
            with os.fdopen(fd, "wb") as handle:
                handle.write(checkpoint_bytes)
            checkpoint = staged
        try:
            return cls.build(
                args["spec_payload"],
                config=args.get("config", {}),
                checkpoint=checkpoint,
            )
        finally:
            if staged is not None:
                try:
                    os.unlink(staged)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, envelope: Envelope) -> Reply:
        try:
            handler = getattr(self, f"_handle_{envelope.kind}", None)
            if handler is None:
                raise ValueError(f"unknown envelope kind {envelope.kind!r}")
            started = time.perf_counter()
            cpu_started = time.process_time()
            payload = handler(envelope.payload)
            cpu_elapsed = time.process_time() - cpu_started
            elapsed = time.perf_counter() - started
            if envelope.kind == "train_microbatch":
                self._step_seconds.observe(elapsed)
            if envelope.kind.startswith("train_") and isinstance(payload, dict):
                # Stamp the compute this replica actually consumed so the
                # coordinator's logical service clock can take the max
                # across shards per phase.  Process-CPU time, not wall: on
                # an oversubscribed host (several shard processes per core)
                # wall time includes being preempted by *sibling shards*,
                # which would charge the same core-seconds to every replica
                # and hide the very parallelism being measured.  On an idle
                # multi-core host the two clocks agree.
                payload = dict(payload, seconds=cpu_elapsed)
            return Reply(seq=envelope.seq, ok=True, payload=payload)
        except Exception as exc:
            self._count_error(envelope.kind)
            return Reply(seq=envelope.seq, ok=False, error=error_info(exc))

    def _count_error(self, kind: str) -> None:
        try:
            self.registry.counter("shard_errors_total", kind=kind).inc()
        except Exception:
            pass  # a broken registry must not mask the original error

    # ------------------------------------------------------------------
    # Handlers (the train envelope family)
    # ------------------------------------------------------------------

    def _handle_train_epoch_begin(self, payload: Dict[str, object]) -> dict:
        train_nodes = np.asarray(payload["train_nodes"], dtype=np.int64)
        # Shard graphs carry the full label array (labels are global
        # metadata, not features), so the fit()-equivalent validation works
        # here without consulting any other shard.
        if (self.trainer.graph.labels[train_nodes] < 0).any():
            raise ValueError("all training nodes must be labeled")
        return self.trainer.epoch_begin(train_nodes, owned=self.spec.owned)

    def _handle_train_microbatch(self, payload: Dict[str, object]) -> dict:
        return self.trainer.run_microbatch(int(payload["start"]))

    def _handle_train_grads(self, payload: Dict[str, object]) -> dict:
        return {"grads": self.trainer.export_grads()}

    def _handle_train_apply(self, payload: Dict[str, object]) -> dict:
        self.trainer.apply_update(payload.get("grads"), norm=payload.get("norm"))
        return {}

    def _handle_train_epoch_end(self, payload: Dict[str, object]) -> dict:
        return self.trainer.epoch_finish()

    def _handle_train_checkpoint(self, payload: Dict[str, object]) -> dict:
        """The replica's full v3 checkpoint as bytes — the elastic-resume
        unit.  Covers parameters, optimizer moments, every rng stream and
        the shard's (possibly downsampled) neighbor states, so an engine
        respawned from it continues bit-identically."""
        buffer = io.BytesIO()
        self.classifier.save(buffer)
        return {"checkpoint": buffer.getvalue()}

    def _handle_metrics(self, payload: Dict[str, object]) -> dict:
        return {"registry": self.registry.to_payload()}

    def _handle_clock(self, payload: Dict[str, object]) -> dict:
        return {
            "mono": time.perf_counter(),
            "wall": time.time(),
            "pid": os.getpid(),
        }

    def _handle_shutdown(self, payload: Dict[str, object]) -> dict:
        self.closed = True
        return {}


class _PayloadField(PendingReply):
    """Project one key out of a pending reply's payload at gather time."""

    def __init__(self, inner: PendingReply, key: str) -> None:
        super().__init__(inner.shard_id, inner.kind)
        self._inner = inner
        self._key = key

    def wait(self, timeout: Optional[float] = None) -> Reply:
        return self._inner.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        return self._inner.result(timeout)[self._key]


class TrainWorker:
    """Coordinator-side stub for one training shard.

    Implements the :class:`~repro.core.train_loop.TrainLoop` client
    protocol over envelopes — every method scatters one envelope and
    returns its pending reply, so the loop overlaps all shards' microbatch
    computes on concurrent transports.
    """

    def __init__(self, spec: ShardSpec, transport: Transport) -> None:
        self.spec = spec
        self.transport = transport
        self._stopped = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "TrainWorker":
        self.transport.start()
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        self.transport.wait_ready(timeout)

    def stop(self) -> None:
        if not self._stopped:
            self.transport.stop()
            self._stopped = True

    # -- TrainLoop client protocol ----------------------------------------

    def begin_epoch(self, train_nodes: np.ndarray) -> PendingReply:
        return self.transport.send(
            Envelope(
                kind="train_epoch_begin",
                payload={"train_nodes": np.asarray(train_nodes, dtype=np.int64)},
            )
        )

    def run_microbatch(self, start: int) -> PendingReply:
        return self.transport.send(
            Envelope(kind="train_microbatch", payload={"start": int(start)})
        )

    def export_grads(self) -> PendingReply:
        return _PayloadField(
            self.transport.send(Envelope(kind="train_grads")), "grads"
        )

    def apply_update(self, grads, norm: Optional[float]) -> PendingReply:
        return self.transport.send(
            Envelope(kind="train_apply", payload={"grads": grads, "norm": norm})
        )

    def finish_epoch(self) -> PendingReply:
        return self.transport.send(Envelope(kind="train_epoch_end"))

    # -- pulls -------------------------------------------------------------

    def checkpoint(self) -> PendingReply:
        return _PayloadField(
            self.transport.send(Envelope(kind="train_checkpoint")), "checkpoint"
        )

    def pull_metrics(self) -> PendingReply:
        return self.transport.send(Envelope(kind="metrics"))


class DistributedTrainer:
    """Coordinates data-parallel training of one checkpoint over shards.

    ``checkpoint`` seeds every replica (fresh runs save a zero-epoch base
    checkpoint first — see :meth:`from_classifier`); ``shard_checkpoints``
    overrides it per shard for elastic resume, where each replica restores
    its *own* diverged rng/neighbor state.  The partition is a pure
    function of ``(graph, reach, num_shards, partition_seed)``, so a
    resumed run replans the identical ownership its checkpoints were
    written under.
    """

    def __init__(
        self,
        checkpoint,
        graph: HeteroGraph,
        num_shards: int,
        *,
        transport: str = "inline",
        partition_seed: int = 0,
        shard_checkpoints: Optional[Sequence] = None,
        inbox_capacity: int = 256,
        request_timeout: Optional[float] = 600.0,
        start_timeout: float = 120.0,
        workers: Optional[Sequence[str]] = None,
        epochs_done: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_misses: int = DEFAULT_HEARTBEAT_MISSES,
    ) -> None:
        validate_transport(transport)
        if workers is not None and transport != "socket":
            raise ValueError(
                f"workers= (remote shard addresses) only applies to the "
                f"socket transport, not {transport!r}"
            )
        probe = load_checkpoint_classifier(checkpoint)
        self.config = probe.config
        if self.config.embedding_mode != "project":
            raise ValueError(
                'distributed training requires embedding_mode="project": the '
                '"replace" mode\'s node-state table is written by every '
                "forward and read across ownership boundaries, which breaks "
                "shard locality"
            )
        reach = serving_reach_of(probe)
        if reach is None:
            raise ValueError(
                f"{type(probe).__name__} declares no sampling reach; a "
                "partition has no provably sufficient halo without one"
            )
        self.graph = graph
        self.transport_kind = transport
        self.partition_seed = int(partition_seed)
        self.request_timeout = request_timeout
        self.registry = MetricsRegistry()  # coordinator-scope series
        self.history = TrainHistory()
        self._epochs_done = int(epochs_done)
        # Logical training span (see TrainLoop.logical_seconds): slowest
        # shard's measured compute per phase + coordinator sync wall time.
        self.logical_seconds = 0.0
        self.plan: ClusterPlan = ShardPlanner(
            graph, reach, num_shards, seed=partition_seed
        ).plan()
        if shard_checkpoints is not None:
            if len(shard_checkpoints) != self.plan.num_shards:
                raise ValueError(
                    f"shard_checkpoints names {len(shard_checkpoints)} files "
                    f"for {self.plan.num_shards} shards"
                )
            checkpoints = [str(path) for path in shard_checkpoints]
        else:
            checkpoints = [str(checkpoint)] * self.plan.num_shards
        self.shard_registry: Optional[ShardRegistry] = None
        if transport == "socket":
            if workers is None:
                self.shard_registry = ShardRegistry(LocalWorkerSpawner())
            else:
                addresses = list(workers)
                if len(addresses) != self.plan.num_shards:
                    raise ValueError(
                        f"workers= names {len(addresses)} addresses for "
                        f"{self.plan.num_shards} shards"
                    )
                self.shard_registry = ShardRegistry.from_addresses(addresses)
        self.workers: List[TrainWorker] = []
        for spec, shard_checkpoint in zip(self.plan.shards, checkpoints):
            channel = self._make_transport(
                transport,
                spec,
                shard_checkpoint,
                inbox_capacity=inbox_capacity,
                start_timeout=start_timeout,
                max_frame_bytes=max_frame_bytes,
                heartbeat_interval=heartbeat_interval,
                heartbeat_misses=heartbeat_misses,
            )
            self.workers.append(TrainWorker(spec, channel).start())
        # Gather readiness after all spawns, so an mp/socket fleet loads
        # its checkpoints concurrently.
        for worker in self.workers:
            worker.wait_ready(start_timeout)
        self._closed = False

    def _make_transport(
        self,
        kind: str,
        spec: ShardSpec,
        checkpoint: str,
        *,
        inbox_capacity: int,
        start_timeout: float,
        max_frame_bytes: int,
        heartbeat_interval: float,
        heartbeat_misses: int,
    ) -> Transport:
        spec_payload = spec.to_payload()
        if kind == "mp":
            engine_args = pickle.dumps(
                {
                    "engine": "train",
                    "spec_payload": spec_payload,
                    "checkpoint": checkpoint,
                    "config": {},
                }
            )
            return MpTransport(
                spec.shard_id,
                engine_args,
                inbox_capacity=inbox_capacity,
                start_timeout=start_timeout,
            )
        if kind == "socket":
            if self.shard_registry.spawner is not None:
                handle = self.shard_registry.spawn(spec.shard_id)
            else:
                handle = self.shard_registry.handle(spec.shard_id)
            return SocketTransport(
                spec.shard_id,
                handle.address,
                {
                    "engine": "train",
                    "spec_payload": spec_payload,
                    "checkpoint": None,
                    "checkpoint_bytes": Path(checkpoint).read_bytes(),
                    "config": {},
                },
                max_frame_bytes=max_frame_bytes,
                heartbeat_interval=heartbeat_interval,
                heartbeat_misses=heartbeat_misses,
            )

        def engine_factory() -> TrainEngine:
            return TrainEngine.build(
                spec_payload, config={}, checkpoint=checkpoint
            )

        if kind == "thread":
            return ThreadTransport(
                spec.shard_id, engine_factory, inbox_capacity=inbox_capacity
            )
        return InlineTransport(spec.shard_id, engine_factory)

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------

    @classmethod
    def from_classifier(
        cls, classifier, graph: HeteroGraph, num_shards: int, **kwargs
    ) -> "DistributedTrainer":
        """Spawn a fleet from a live (possibly untrained) classifier.

        A checkpoint round-trip is the clean way to hand every shard an
        independent replica with *identical* parameters and rng streams —
        and it is the only thing mp/socket workers can spawn from.  The
        temp file is deleted once every shard has confirmed loading it.
        """
        with tempfile.TemporaryDirectory(prefix="repro-train-") as tmp:
            base = Path(tmp) / "base.npz"
            classifier.save(base)
            return cls(base, graph, num_shards, **kwargs)

    @classmethod
    def resume(
        cls, checkpoint_dir, graph: HeteroGraph, **kwargs
    ) -> "DistributedTrainer":
        """Resume from a :meth:`save_checkpoints` directory.

        Replans with the manifest's shard count + partition seed (the plan
        is deterministic, so ownership matches what the checkpoints were
        written under) and restores each shard from its own file.  Training
        killed mid-epoch resumes from the last completed epoch boundary and
        reaches a final model bit-identical to an uninterrupted run — every
        rng stream, optimizer moment and neighbor set picks up exactly
        where the boundary checkpoint froze it.
        """
        directory = Path(checkpoint_dir)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        num_shards = int(manifest["num_shards"])
        shard_checkpoints = [
            directory / f"shard-{shard_id}.npz" for shard_id in range(num_shards)
        ]
        missing = [str(path) for path in shard_checkpoints if not path.exists()]
        if missing:
            raise FileNotFoundError(
                f"checkpoint dir {str(directory)!r} is missing {missing}"
            )
        kwargs.setdefault("partition_seed", int(manifest["partition_seed"]))
        kwargs.setdefault("epochs_done", int(manifest.get("epochs_done", 0)))
        return cls(
            shard_checkpoints[0],
            graph,
            num_shards,
            shard_checkpoints=shard_checkpoints,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        train_nodes: np.ndarray,
        epochs: int,
        *,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
    ) -> TrainHistory:
        """Run ``epochs`` epochs over the fleet (Algorithm 3, data-parallel).

        With ``checkpoint_dir`` every ``checkpoint_every``-th epoch boundary
        snapshots the whole fleet (atomic per-file tmp+rename), which is the
        elastic-resume granularity: a run killed mid-epoch loses at most the
        partial epoch.
        """
        self._check_open()
        loop = TrainLoop(
            self.workers,
            self.config,
            registry=self.registry,
            history=self.history,
            request_timeout=self.request_timeout,
        )
        try:
            if checkpoint_dir is None:
                loop.run(train_nodes, epochs)
                self._epochs_done += int(epochs)
                return self.history
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            for index in range(int(epochs)):
                loop.run(train_nodes, 1)
                self._epochs_done += 1
                if (index + 1) % checkpoint_every == 0 or index == int(epochs) - 1:
                    self.save_checkpoints(checkpoint_dir)
            return self.history
        finally:
            self.logical_seconds += loop.logical_seconds

    # ------------------------------------------------------------------
    # Checkpointing / extraction
    # ------------------------------------------------------------------

    def save_checkpoints(self, directory) -> Path:
        """Snapshot every replica into ``directory`` (elastic-resume unit).

        One v3 checkpoint per shard plus a manifest naming the partition
        parameters.  Files land via tmp+rename so a crash mid-write never
        leaves a torn checkpoint; the manifest is written last, so a
        directory with a manifest is always complete.
        """
        self._check_open()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        pending = [
            (worker.spec.shard_id, worker.checkpoint()) for worker in self.workers
        ]
        for shard_id, reply in pending:
            data = reply.result(self.request_timeout)
            final = directory / f"shard-{shard_id}.npz"
            staging = directory / f".shard-{shard_id}.npz.tmp"
            staging.write_bytes(data)
            os.replace(staging, final)
        manifest = {
            "format": 1,
            "num_shards": int(self.plan.num_shards),
            "partition_seed": int(self.partition_seed),
            "epochs_done": int(self._epochs_done),
            "transport": self.transport_kind,
        }
        staging = directory / f".{MANIFEST_NAME}.tmp"
        staging.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(staging, directory / MANIFEST_NAME)
        return directory

    def classifier(self, graph: Optional[HeteroGraph] = None):
        """The trained classifier, pulled from shard 0.

        Every replica applies identical updates every global step, so the
        parameters are the same on all of them; shard 0's checkpoint is the
        fleet's model.  Pass ``graph`` to bind it for evaluation.
        """
        self._check_open()
        data = self.workers[0].checkpoint().result(self.request_timeout)
        fd, staged = tempfile.mkstemp(prefix="repro-train-out-", suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            return load_checkpoint_classifier(staged, graph=graph)
        finally:
            try:
                os.unlink(staged)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """Coordinator series + every shard's registry, shard-labeled.

        Same merge path serving clusters use, so one ``/metrics`` scrape
        covers a training fleet: per-shard step/attention/KL instruments
        plus the coordinator's reduce timings, sync bytes and loss series.
        """
        merged = MetricsRegistry()
        merged.merge_payload(self.registry.to_payload())
        pending = [
            (worker.spec.shard_id, worker.pull_metrics()) for worker in self.workers
        ]
        for shard_id, reply in pending:
            payload = reply.result(self.request_timeout)
            merged.merge_payload(
                payload["registry"], extra_labels={"shard": str(shard_id)}
            )
        return merged

    def render_prometheus(self) -> str:
        """One Prometheus exposition for the whole training fleet."""
        return self.merged_registry().render_prometheus()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        for worker in self.workers:
            worker.stop()
        if self.shard_registry is not None:
            self.shard_registry.close()
        self._closed = True

    def __enter__(self) -> "DistributedTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("distributed trainer is closed")
