"""TCP socket transport + fleet fault tolerance (``repro.cluster.net``).

The last transport tier: the same :class:`~repro.cluster.transport.Envelope`
/ :class:`~repro.cluster.transport.Reply` pickle protocol the ``inline``/
``thread``/``mp`` transports speak, framed over TCP so shard engines can
live on other machines.  One worker process per shard runs
``python -m repro shard-worker --listen host:port``; the router connects a
:class:`SocketTransport` per shard, ships the engine's spawn arguments
(shard payload + checkpoint *bytes* + config — nothing assumes a shared
filesystem) in a ``spawn`` envelope, and from then on the wire carries only
envelopes and replies.

**Framing.**  One frame = an 8-byte big-endian length prefix + that many
pickle bytes.  :func:`recv_frame` loops over partial reads (TCP has no
message boundaries), rejects frames above a configurable cap *before*
allocating (a corrupt or hostile length prefix must not OOM the router),
and distinguishes a clean close between frames (:class:`ConnectionClosed`)
from a mid-frame cut (``ConnectionResetError``).

**Liveness.**  Heartbeats ride the existing ``clock`` envelope kind, sent
by the transport every ``heartbeat_interval`` and answered by the worker's
*receive* thread — out of band with the engine FIFO, so a shard deep in a
long compute still proves its process is alive.  A dead or hung worker
surfaces as a typed :class:`WorkerDown` (reason: ``connection_reset``,
``heartbeat_missed``, or ``send_failed``) — never a generic timeout — and
every in-flight request on that transport fails with an error reply
instead of hanging its gather.

**Recovery.**  The :class:`FleetSupervisor` owns what the router needs to
bring a dead shard back *bit-identically*: a per-shard baseline (shard
payload + exported serving state + the global graph version it reflects)
and the router's bounded :class:`MutationLog`.  ``recover()`` respawns the
worker (or reconnects to a static address), rebuilds the engine from the
baseline, replays the logged mutation commands past the baseline version,
verifies the engine's graph version against the router-side mirror, and
only then readmits the shard to scatter-gather.  Because serving answers
are seeded by ``(seed, node version, node)`` and the replayed command
stream reproduces the exact version counters, a recovered fleet's answers
match a never-killed single server bit for bit.

**The log horizon.**  The log is bounded.  Before an entry carrying a
shard's command is evicted, the supervisor refreshes that shard's baseline
from the *live* worker (one cheap ``serving_state`` pull), so replay stays
possible indefinitely for healthy shards.  A shard that is already down
when the horizon passes its baseline cannot be caught up exactly; recovery
then refuses to serve stale state and instead rebuilds the shard from the
checkpoint + the *current* mirror plan ("replan"), loudly: a warning, a
``fleet_rebuilds_total`` counter, and ``mode="replan"`` on the recovery
record.  Replanned answers reflect the current graph (fresh serving-state
counters), not the pre-failure timeline.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.transport import (
    READY_SEQ,
    Envelope,
    PendingReply,
    Reply,
    ShardError,
    ShardTimeoutError,
    Transport,
    error_info,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameTooLargeError",
    "ConnectionClosed",
    "WorkerDown",
    "WorkerDownEvent",
    "send_frame",
    "recv_frame",
    "send_message",
    "recv_message",
    "SocketTransport",
    "ShardWorkerServer",
    "WorkerHandle",
    "LocalWorkerSpawner",
    "ShardRegistry",
    "MutationLog",
    "MutationLogHorizonError",
    "RecoveryRecord",
    "FleetSupervisor",
]

#: 8-byte unsigned big-endian length prefix.
_HEADER = struct.Struct("!Q")

#: Default per-frame size cap (1 GiB).  A frame claiming more than this is
#: rejected before any allocation — protocol corruption must not OOM us.
DEFAULT_MAX_FRAME_BYTES = 1 << 30

DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_HEARTBEAT_MISSES = 4


class FrameTooLargeError(ValueError):
    """A frame's length prefix exceeds the configured cap."""

    def __init__(self, size: int, limit: int) -> None:
        self.size = int(size)
        self.limit = int(limit)
        super().__init__(
            f"frame of {size} bytes exceeds max_frame_bytes={limit}"
        )


class ConnectionClosed(ConnectionError):
    """The peer closed the connection cleanly at a frame boundary."""


class WorkerDown(RuntimeError):
    """A shard worker is unreachable: dead process, cut wire, or hung.

    This is the *typed* failure the supervisor reacts to — it carries the
    shard and a reason (``connection_reset`` / ``heartbeat_missed`` /
    ``send_failed``), never masquerading as a generic timeout.
    """

    def __init__(self, shard_id: int, reason: str, detail: str = "") -> None:
        self.shard_id = int(shard_id)
        self.reason = str(reason)
        self.detail = str(detail)
        message = f"shard {shard_id} worker down ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)

    @classmethod
    def from_error(cls, shard_id: int, error: Dict[str, str]) -> "WorkerDown":
        return cls(
            shard_id,
            error.get("reason", "unknown"),
            error.get("message", ""),
        )


@dataclass
class WorkerDownEvent:
    """One observed worker failure (for `slo_report()` and dashboards)."""

    shard_id: int
    reason: str
    detail: str
    mono: float  # perf_counter at detection (recovery math)
    wall: float  # time.time at detection (humans)

    def to_record(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "reason": self.reason,
            "detail": self.detail,
            "wall_time": self.wall,
        }


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def send_frame(
    sock: socket.socket,
    data: bytes,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Write one length-prefixed frame; the cap applies to sends too, so a
    payload the far side would reject fails loudly at the sender."""
    if len(data) > max_frame_bytes:
        raise FrameTooLargeError(len(data), max_frame_bytes)
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes, looping over partial reads."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionResetError(
                f"connection lost mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Read one frame.  EOF *between* frames raises :class:`ConnectionClosed`
    (a clean goodbye); EOF *inside* one raises ``ConnectionResetError``."""
    first = sock.recv(1)
    if not first:
        raise ConnectionClosed("peer closed the connection")
    header = first + _recv_exact(sock, _HEADER.size - 1)
    (size,) = _HEADER.unpack(header)
    if size > max_frame_bytes:
        raise FrameTooLargeError(size, max_frame_bytes)
    return _recv_exact(sock, size)


def send_message(
    sock: socket.socket,
    message: object,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    send_frame(sock, pickle.dumps(message), max_frame_bytes)


def recv_message(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> object:
    return pickle.loads(recv_frame(sock, max_frame_bytes))


# ----------------------------------------------------------------------
# Client side: SocketTransport
# ----------------------------------------------------------------------


class _SocketPendingReply(PendingReply):
    """Future delivered by the transport's receiver thread.

    A transport that goes down fails every pending with a ``WorkerDown``
    error reply, so waiting callers get an error *reply*, not a hang; and
    a timeout on a down transport raises :class:`WorkerDown`, never a
    generic :class:`ShardTimeoutError`.
    """

    def __init__(self, transport: "SocketTransport", seq: int, kind: str) -> None:
        super().__init__(transport.shard_id, kind)
        self._transport = transport
        self._seq = seq
        self._event = threading.Event()
        self._reply: Optional[Reply] = None

    def deliver(self, reply: Reply) -> None:
        self._reply = reply
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Reply:
        if not self._event.wait(timeout):
            down = self._transport.down_exception
            if down is not None:
                raise down
            raise ShardTimeoutError(self.shard_id, timeout or 0.0, self.kind)
        return self._reply

    def result(self, timeout: Optional[float] = None) -> object:
        reply = self.wait(timeout)
        if not reply.ok:
            error = reply.error or {}
            if error.get("type") == "WorkerDown":
                raise WorkerDown.from_error(self.shard_id, error)
            raise ShardError(self.shard_id, error)
        return reply.payload


class SocketTransport(Transport):
    """One shard engine behind a TCP connection.

    ``engine_args`` crosses the wire in the initial ``spawn`` envelope
    (shard payload + checkpoint bytes + config — see
    :meth:`repro.cluster.engine.ShardEngine.from_args`), so the worker
    process needs nothing but the ``repro`` package: no shared filesystem,
    no pre-staged checkpoint.  Replies are matched to pendings by sequence
    number, so concurrent requests interleave freely on one connection.
    """

    def __init__(
        self,
        shard_id: int,
        address: Tuple[str, int],
        engine_args: Dict[str, object],
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_misses: int = DEFAULT_HEARTBEAT_MISSES,
        connect_timeout: float = 10.0,
        on_down: Optional[Callable[[int, str, str], None]] = None,
        on_heartbeat: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        super().__init__(shard_id)
        self.address = (str(address[0]), int(address[1]))
        self._engine_args = engine_args
        self.max_frame_bytes = int(max_frame_bytes)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = int(heartbeat_misses)
        self._connect_timeout = float(connect_timeout)
        self._on_down = on_down
        self._on_heartbeat = on_heartbeat
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: Dict[int, _SocketPendingReply] = {}
        self._hb_sent: Dict[int, float] = {}  # seq -> perf_counter at send
        self._last_rx = 0.0
        self._down: Optional[WorkerDown] = None
        self._stopping = False
        self._ready_event = threading.Event()
        self._ready_reply: Optional[Reply] = None
        self._receiver: Optional[threading.Thread] = None
        self._heart: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SocketTransport":
        if self._sock is not None:
            raise RuntimeError(f"shard {self.shard_id} transport already started")
        deadline = time.perf_counter() + self._connect_timeout
        while True:
            try:
                self._sock = socket.create_connection(
                    self.address, timeout=self._connect_timeout
                )
                break
            except OSError as exc:
                if time.perf_counter() >= deadline:
                    raise WorkerDown(
                        self.shard_id,
                        "connect_failed",
                        f"{self.address[0]}:{self.address[1]}: {exc}",
                    ) from exc
                time.sleep(0.05)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._last_rx = time.perf_counter()
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"shard-{self.shard_id}-rx",
            daemon=True,
        )
        self._receiver.start()
        self._send_raw(
            Envelope(kind="spawn", payload={"engine_args": self._engine_args})
        )
        if self.heartbeat_interval > 0:
            self._heart = threading.Thread(
                target=self._heartbeat_loop,
                name=f"shard-{self.shard_id}-hb",
                daemon=True,
            )
            self._heart.start()
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        if not self._ready_event.wait(timeout):
            if self._down is not None:
                raise self._down
            raise ShardTimeoutError(self.shard_id, timeout or 0.0, "ready")
        reply = self._ready_reply
        if reply is None or not reply.ok:
            error = (reply.error if reply is not None else None) or {}
            if error.get("type") == "WorkerDown":
                raise WorkerDown.from_error(self.shard_id, error)
            raise ShardError(self.shard_id, error)

    def stop(self, timeout: float = 10.0) -> None:
        self._stopping = True
        if self._sock is None:
            return
        if self._down is None and self._ready_event.is_set():
            try:
                pending = self.send(Envelope(kind="shutdown"))
                pending.wait(timeout)
            except (WorkerDown, ShardError, ShardTimeoutError, OSError):
                pass
        self._close_socket()
        if self._receiver is not None:
            self._receiver.join(timeout)
        if self._heart is not None:
            self._heart.join(timeout)

    # -- send path -----------------------------------------------------

    def send(self, envelope: Envelope) -> PendingReply:
        if self._sock is None:
            raise RuntimeError(f"shard {self.shard_id} transport not started")
        with self._send_lock:
            envelope.seq = self._next_seq()
            pending = _SocketPendingReply(self, envelope.seq, envelope.kind)
            down = self._down
            if down is None:
                with self._state_lock:
                    self._pending[envelope.seq] = pending
                try:
                    send_message(self._sock, envelope, self.max_frame_bytes)
                except OSError as exc:
                    self._mark_down("send_failed", str(exc))
        # A down transport answers every request with a WorkerDown error
        # reply immediately — gathers see a typed failure, never a hang.
        if down is not None:
            pending.deliver(self._down_reply(envelope.seq, down))
        return pending

    def _send_raw(self, envelope: Envelope) -> None:
        """Send without registering a pending (spawn handshake only)."""
        with self._send_lock:
            envelope.seq = READY_SEQ
            try:
                send_message(self._sock, envelope, self.max_frame_bytes)
            except OSError as exc:
                self._mark_down("send_failed", str(exc))

    # -- receive + liveness --------------------------------------------

    def _receive_loop(self) -> None:
        while True:
            try:
                reply = recv_message(self._sock, self.max_frame_bytes)
            except (ConnectionClosed, ConnectionError, OSError, EOFError) as exc:
                if not self._stopping:
                    self._mark_down("connection_reset", str(exc))
                return
            self._last_rx = time.perf_counter()
            if reply.seq == READY_SEQ:
                self._ready_reply = reply
                self._ready_event.set()
                continue
            with self._state_lock:
                sent_at = self._hb_sent.pop(reply.seq, None)
                pending = self._pending.pop(reply.seq, None)
            if sent_at is not None:
                if self._on_heartbeat is not None:
                    self._on_heartbeat(
                        self.shard_id, time.perf_counter() - sent_at
                    )
                continue
            if pending is not None:
                pending.deliver(reply)

    def _heartbeat_loop(self) -> None:
        # No heartbeats before the spawn handshake completes: engine
        # construction (checkpoint load + graph rebuild) is legitimate
        # silence, not a hang.
        self._ready_event.wait()
        while not self._stopping and self._down is None:
            time.sleep(self.heartbeat_interval)
            if self._stopping or self._down is not None:
                return
            with self._state_lock:
                outstanding = bool(self._hb_sent)
            silence = time.perf_counter() - self._last_rx
            if outstanding and silence > self.heartbeat_interval * self.heartbeat_misses:
                self._mark_down(
                    "heartbeat_missed",
                    f"no frames for {silence:.2f}s "
                    f"({self.heartbeat_misses} heartbeats unanswered)",
                )
                return
            with self._send_lock:
                if self._down is not None or self._stopping:
                    return
                seq = self._next_seq()
                with self._state_lock:
                    self._hb_sent[seq] = time.perf_counter()
                try:
                    send_message(
                        self._sock,
                        Envelope(kind="clock", payload={"heartbeat": True}, seq=seq),
                        self.max_frame_bytes,
                    )
                except OSError as exc:
                    self._mark_down("send_failed", str(exc))
                    return

    # -- failure -------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self._down is not None

    @property
    def down_exception(self) -> Optional[WorkerDown]:
        return self._down

    def _down_reply(self, seq: int, down: WorkerDown) -> Reply:
        return Reply(
            seq=seq,
            ok=False,
            error={
                "type": "WorkerDown",
                "reason": down.reason,
                "message": down.detail or str(down),
                "traceback": "",
            },
        )

    def _mark_down(self, reason: str, detail: str = "") -> None:
        with self._state_lock:
            if self._down is not None:
                return
            down = WorkerDown(self.shard_id, reason, detail)
            self._down = down
            pendings = list(self._pending.values())
            self._pending.clear()
            self._hb_sent.clear()
        for pending in pendings:
            pending.deliver(self._down_reply(pending._seq, down))
        if not self._ready_event.is_set():
            self._ready_reply = self._down_reply(READY_SEQ, down)
            self._ready_event.set()
        self._close_socket()
        if self._on_down is not None and not self._stopping:
            self._on_down(self.shard_id, reason, detail)

    def _close_socket(self) -> None:
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Server side: the shard-worker process
# ----------------------------------------------------------------------


class ShardWorkerServer:
    """Accept loop of ``python -m repro shard-worker --listen host:port``.

    One router connection = one *session*: a ``spawn`` envelope (engine
    arguments), a ready reply, then the envelope stream.  Two threads per
    session keep liveness honest: the receive thread answers ``clock``
    envelopes (heartbeats and clock-handshake probes) immediately, while
    every other envelope goes through a FIFO queue to the engine thread —
    the mutation-barrier ordering contract is untouched, but a worker deep
    in a long serve still answers heartbeats, so only a genuinely dead or
    hung *process* trips the detector.

    A dropped connection ends the session (and discards the engine — the
    router respawn path ships fresh state) and returns to ``accept``; a
    ``shutdown`` envelope ends the process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        announce: bool = True,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self.announce = announce
        self._listener: Optional[socket.socket] = None
        self._bound = threading.Event()

    def bind(self) -> Tuple[str, int]:
        """Bind the listener (port 0 picks a free port) and report it."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(8)
            self._listener = listener
            self.host, self.port = listener.getsockname()[:2]
            self._bound.set()
            if self.announce:
                # The spawner parses this line to learn the bound port.
                print(f"LISTENING {self.host} {self.port}", flush=True)
        return self.host, self.port

    def serve_forever(self) -> int:
        self.bind()
        try:
            while True:
                conn, _ = self._listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                try:
                    reason = self._serve_session(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
                if reason == "shutdown":
                    return 0
        finally:
            self.close()

    def close(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    # -- one session ---------------------------------------------------

    def _serve_session(self, conn: socket.socket) -> str:
        from repro.cluster.engine import build_engine_from_args
        from repro.cluster.transport import _safe_handle

        send_lock = threading.Lock()

        def reply_out(reply: Reply) -> None:
            with send_lock:
                try:
                    send_message(conn, reply, self.max_frame_bytes)
                except OSError:
                    pass  # the router is gone; the session is ending anyway

        try:
            spawn = recv_message(conn, self.max_frame_bytes)
        except (ConnectionError, OSError, EOFError):
            return "reset"
        if not isinstance(spawn, Envelope) or spawn.kind != "spawn":
            reply_out(
                Reply(
                    seq=READY_SEQ,
                    ok=False,
                    error=error_info(
                        ValueError("session must open with a spawn envelope")
                    ),
                )
            )
            return "reset"
        try:
            engine = build_engine_from_args(spawn.payload["engine_args"])
        except BaseException as exc:
            reply_out(Reply(seq=READY_SEQ, ok=False, error=error_info(exc)))
            return "reset"
        reply_out(Reply(seq=READY_SEQ, ok=True, payload={"pid": os.getpid()}))

        inbox: "queue.Queue" = queue.Queue()
        outcome = {"reason": "reset"}

        def engine_loop() -> None:
            while True:
                envelope = inbox.get()
                if envelope is None:
                    return
                reply_out(_safe_handle(engine, envelope))
                if envelope.kind == "shutdown":
                    outcome["reason"] = "shutdown"
                    return

        worker = threading.Thread(target=engine_loop, daemon=True)
        worker.start()
        try:
            while True:
                try:
                    envelope = recv_message(conn, self.max_frame_bytes)
                except (ConnectionError, OSError, EOFError):
                    break
                if not isinstance(envelope, Envelope):
                    continue
                if envelope.kind == "clock":
                    # Out-of-band liveness: answered here, not behind the
                    # engine FIFO, so long computes don't read as hangs.
                    reply_out(
                        Reply(
                            seq=envelope.seq,
                            ok=True,
                            payload={
                                "mono": time.perf_counter(),
                                "wall": time.time(),
                                "pid": os.getpid(),
                            },
                        )
                    )
                    continue
                inbox.put(envelope)
                if envelope.kind == "shutdown":
                    break
        finally:
            inbox.put(None)
            worker.join(timeout=60.0)
        return outcome["reason"]

    # -- in-process convenience (tests) --------------------------------

    def start_background(self) -> Tuple[str, int]:
        """Run the accept loop on a daemon thread; returns the address.

        For tests that want a loopback fleet without subprocess startup
        cost.  The thread dies with the process; ``close()`` stops new
        sessions.
        """
        self.bind()
        thread = threading.Thread(
            target=self._serve_quietly, name="shard-worker", daemon=True
        )
        thread.start()
        return self.host, self.port

    def _serve_quietly(self) -> None:
        try:
            self.serve_forever()
        except OSError:
            pass  # listener closed under us


# ----------------------------------------------------------------------
# Fleet membership: handles, spawner, registry
# ----------------------------------------------------------------------


@dataclass
class WorkerHandle:
    """Where one shard's worker lives, plus its process when we own it."""

    shard_id: int
    host: str
    port: int
    process: Optional[subprocess.Popen] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid


class LocalWorkerSpawner:
    """Launches loopback shard-worker subprocesses (benchmarks, CI, tests).

    The child binds port 0 and announces ``LISTENING host port`` on stdout;
    we parse that, so no port coordination is needed.  ``PYTHONPATH`` is
    prepended with this package's parent directory so the child resolves
    ``repro`` the same way the parent did.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        python: Optional[str] = None,
        startup_timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.python = python or sys.executable
        self.startup_timeout = float(startup_timeout)

    def spawn(self, shard_id: int) -> WorkerHandle:
        import repro

        env = dict(os.environ)
        package_parent = str(os.path.dirname(os.path.dirname(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_parent + (os.pathsep + existing if existing else "")
        )
        process = subprocess.Popen(
            [
                self.python,
                "-m",
                "repro",
                "shard-worker",
                "--listen",
                f"{self.host}:0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        deadline = time.perf_counter() + self.startup_timeout
        while True:
            line = process.stdout.readline()
            if not line:
                raise WorkerDown(
                    shard_id,
                    "spawn_failed",
                    f"worker exited during startup (rc={process.poll()})",
                )
            if line.startswith("LISTENING "):
                _, host, port = line.split()
                return WorkerHandle(shard_id, host, int(port), process)
            if time.perf_counter() > deadline:
                process.kill()
                raise WorkerDown(
                    shard_id, "spawn_failed", "no LISTENING line before timeout"
                )


class ShardRegistry:
    """shard id → :class:`WorkerHandle`, plus respawn policy.

    With a spawner, ``respawn`` relaunches a fresh subprocess (killing any
    corpse first).  With static addresses (remote machines we don't manage),
    ``respawn`` returns the same address — an external supervisor restarts
    the process there, and we reconnect with a fresh spawn envelope.
    """

    def __init__(self, spawner: Optional[LocalWorkerSpawner] = None) -> None:
        self.spawner = spawner
        self._handles: Dict[int, WorkerHandle] = {}

    @classmethod
    def from_addresses(cls, addresses: List[str]) -> "ShardRegistry":
        """Static fleet: one ``host:port`` string per shard, in shard order."""
        registry = cls(spawner=None)
        for shard_id, address in enumerate(addresses):
            host, _, port = str(address).rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(
                    f"worker address {address!r} is not host:port"
                )
            registry.register(WorkerHandle(shard_id, host, int(port)))
        return registry

    def register(self, handle: WorkerHandle) -> WorkerHandle:
        self._handles[handle.shard_id] = handle
        return handle

    def handle(self, shard_id: int) -> WorkerHandle:
        return self._handles[shard_id]

    def address(self, shard_id: int) -> Tuple[str, int]:
        return self._handles[shard_id].address

    def shard_ids(self) -> List[int]:
        return sorted(self._handles)

    def spawn(self, shard_id: int) -> WorkerHandle:
        if self.spawner is None:
            raise RuntimeError(
                "registry has no spawner; register static addresses instead"
            )
        return self.register(self.spawner.spawn(shard_id))

    def respawn(self, shard_id: int) -> WorkerHandle:
        handle = self._handles[shard_id]
        if self.spawner is None:
            return handle  # static fleet: reconnect to the same address
        self._reap(handle)
        return self.register(self.spawner.spawn(shard_id))

    def kill(self, shard_id: int) -> None:
        """SIGKILL the shard's process (fault injection in tests/benches)."""
        handle = self._handles[shard_id]
        if handle.process is not None:
            handle.process.kill()
            handle.process.wait(timeout=30)

    def close(self) -> None:
        for handle in self._handles.values():
            self._reap(handle)

    @staticmethod
    def _reap(handle: WorkerHandle) -> None:
        process = handle.process
        if process is None:
            return
        if process.poll() is None:
            process.kill()
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            pass
        if process.stdout is not None:
            process.stdout.close()


# ----------------------------------------------------------------------
# MutationLog
# ----------------------------------------------------------------------


@dataclass
class LogEntry:
    """One global mutation: its post-mutation graph version and the
    per-shard commands it fanned out (shards absent from ``commands``
    were provably unaffected)."""

    version: int
    kind: str
    commands: Dict[int, object]


class MutationLogHorizonError(RuntimeError):
    """A shard's baseline predates commands the bounded log has evicted."""

    def __init__(self, shard_id: int, baseline_version: int, horizon: int) -> None:
        self.shard_id = int(shard_id)
        self.baseline_version = int(baseline_version)
        self.horizon = int(horizon)
        super().__init__(
            f"shard {shard_id} baseline at graph version {baseline_version} "
            f"is behind the mutation log horizon (evicted through version "
            f"{horizon}); exact catch-up is impossible"
        )


class MutationLog:
    """Bounded record of fanned-out mutation commands, for catch-up replay.

    Entries are keyed by the *global* graph version after the mutation
    (one mutation = one version bump, so versions are consecutive).  When
    capacity evicts an entry, the per-shard horizon advances: a shard whose
    baseline predates its horizon can no longer be replayed exactly —
    :meth:`commands_since` refuses loudly instead of silently under-replaying.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: List[LogEntry] = []
        self._horizon: Dict[int, int] = {}  # shard -> last evicted version

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[LogEntry]:
        return list(self._entries)

    def next_eviction(self) -> Optional[LogEntry]:
        """The entry the next append will evict, if the log is full."""
        if len(self._entries) >= self.capacity:
            return self._entries[0]
        return None

    def append(self, version: int, kind: str, commands: Dict[int, object]) -> None:
        self._entries.append(LogEntry(int(version), str(kind), dict(commands)))
        while len(self._entries) > self.capacity:
            evicted = self._entries.pop(0)
            for shard_id in evicted.commands:
                self._horizon[shard_id] = max(
                    self._horizon.get(shard_id, -1), evicted.version
                )

    def horizon(self, shard_id: int) -> int:
        """Highest evicted version carrying a command for ``shard_id``
        (-1 when nothing relevant was ever evicted)."""
        return self._horizon.get(int(shard_id), -1)

    def commands_since(
        self, shard_id: int, baseline_version: int
    ) -> List[Tuple[int, str, object]]:
        """The shard's commands from entries past ``baseline_version``.

        Raises :class:`MutationLogHorizonError` if an *evicted* entry past
        the baseline carried a command for this shard — replaying the
        survivors would silently skip mutations.
        """
        shard_id = int(shard_id)
        baseline_version = int(baseline_version)
        horizon = self.horizon(shard_id)
        if horizon > baseline_version:
            raise MutationLogHorizonError(shard_id, baseline_version, horizon)
        return [
            (entry.version, entry.kind, entry.commands[shard_id])
            for entry in self._entries
            if entry.version > baseline_version and shard_id in entry.commands
        ]


# ----------------------------------------------------------------------
# FleetSupervisor
# ----------------------------------------------------------------------


@dataclass
class RecoveryRecord:
    """One completed recovery, with the detect/respawn/replay breakdown."""

    shard_id: int
    reason: str
    mode: str  # "replay" (exact catch-up) or "replan" (horizon rebuild)
    detect_s: float
    respawn_s: float
    replay_s: float
    total_s: float
    replayed_commands: int
    baseline_version: int
    target_version: int

    def to_record(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "reason": self.reason,
            "mode": self.mode,
            "detect_s": self.detect_s,
            "respawn_s": self.respawn_s,
            "replay_s": self.replay_s,
            "total_s": self.total_s,
            "replayed_commands": self.replayed_commands,
            "baseline_version": self.baseline_version,
            "target_version": self.target_version,
        }


class _ShardBaseline:
    """The rebuild point for one shard: payload + serving state + version."""

    __slots__ = ("payload", "serving_state", "version")

    def __init__(
        self,
        payload: Dict[str, object],
        serving_state: Optional[Dict[str, object]],
        version: int,
    ) -> None:
        self.payload = payload
        self.serving_state = serving_state
        self.version = int(version)


class FleetSupervisor:
    """Failure detection + exact recovery for a socket fleet.

    Owns, per shard: the rebuild baseline (payload + serving state +
    global version), and the fleet metrics (connection gauges, down/
    reconnect/rebuild counters, heartbeat-age histogram) written into the
    router's registry so fleet health rides the same ``/metrics``
    exposition as latency.  The router calls :meth:`before_mutation` /
    :meth:`record_mutation` around every fan-out and :meth:`recover` when
    a gather surfaces :class:`WorkerDown`.
    """

    def __init__(
        self,
        router,
        registry: ShardRegistry,
        log: MutationLog,
        *,
        checkpoint_bytes: bytes,
        shard_configs: Dict[int, Dict[str, object]],
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_misses: int = DEFAULT_HEARTBEAT_MISSES,
        start_timeout: float = 120.0,
    ) -> None:
        self.router = router
        self.registry = registry
        self.log = log
        self.checkpoint_bytes = checkpoint_bytes
        self.shard_configs = shard_configs
        self.max_frame_bytes = int(max_frame_bytes)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = int(heartbeat_misses)
        self.start_timeout = float(start_timeout)
        self.events: List[WorkerDownEvent] = []
        self.recoveries: List[RecoveryRecord] = []
        self._baselines: Dict[int, _ShardBaseline] = {}
        self._locks: Dict[int, threading.Lock] = {}
        self._metrics = router.registry

    # -- baselines -----------------------------------------------------

    def set_baseline(
        self,
        shard_id: int,
        payload: Dict[str, object],
        serving_state: Optional[Dict[str, object]],
        version: int,
    ) -> None:
        self._baselines[int(shard_id)] = _ShardBaseline(
            payload, serving_state, version
        )
        self._locks.setdefault(int(shard_id), threading.Lock())

    def baseline_version(self, shard_id: int) -> int:
        return self._baselines[int(shard_id)].version

    # -- detection plumbing (SocketTransport callbacks) ----------------

    def note_worker_down(self, shard_id: int, reason: str, detail: str) -> None:
        self.events.append(
            WorkerDownEvent(
                shard_id=int(shard_id),
                reason=reason,
                detail=detail,
                mono=time.perf_counter(),
                wall=time.time(),
            )
        )
        self._metrics.counter(
            "fleet_worker_down_total", shard=str(shard_id), reason=reason
        ).inc()
        self._metrics.gauge(
            "fleet_worker_connected", shard=str(shard_id)
        ).set(0)

    def observe_heartbeat(self, shard_id: int, age: float) -> None:
        self._metrics.histogram(
            "fleet_heartbeat_age_seconds", shard=str(shard_id)
        ).observe(age)

    def transport_callbacks(self) -> Dict[str, Callable]:
        return {
            "on_down": self.note_worker_down,
            "on_heartbeat": self.observe_heartbeat,
        }

    # -- mutation bookkeeping ------------------------------------------

    def before_mutation(self) -> None:
        """Re-baseline shards the next log eviction would strand.

        Called after the global graph mutated but *before* the plan builds
        commands (so the mirror specs and the live workers agree on the
        pre-mutation state).  One cheap ``serving_state`` pull per
        endangered shard keeps exact replay possible for healthy workers
        no matter how long the stream runs; a shard that is down right now
        is skipped — its recovery will hit the horizon and take the loud
        replan path instead.
        """
        entry = self.log.next_eviction()
        if entry is None:
            return
        for shard_id in entry.commands:
            baseline = self._baselines.get(shard_id)
            if baseline is None or baseline.version >= entry.version:
                continue
            try:
                # The global graph already mutated (version bumped) but the
                # command has not fanned out: workers and mirrors both sit
                # at version - 1, which is what the snapshot reflects.
                self.refresh_baseline(
                    shard_id, version=self.router.graph.version - 1
                )
            except (WorkerDown, ShardError, ShardTimeoutError):
                continue  # down worker: replan path owns this case

    def refresh_baseline(
        self, shard_id: int, *, version: Optional[int] = None
    ) -> None:
        """Snapshot a live shard as the new rebuild point.

        ``version`` is the global graph version the worker's state covers
        (defaults to the current version — correct only when no mutation
        is mid-flight; :meth:`before_mutation` passes ``version - 1``).
        The mirror spec and the worker have replayed the identical command
        stream, so payload, serving state and version line up exactly.
        """
        worker = self.router.workers[shard_id]
        state = worker.pull_serving_state().result(self.router.request_timeout)
        self.set_baseline(
            shard_id,
            worker.spec.to_payload(),
            state["serving_state"],
            self.router.graph.version if version is None else version,
        )

    def record_mutation(self, kind: str, commands: Dict[int, object]) -> None:
        self.log.append(self.router.graph.version, kind, commands)

    # -- recovery ------------------------------------------------------

    def recover(self, shard_id: int, reason: str = "unknown") -> Optional[RecoveryRecord]:
        """Respawn, rebuild, catch up, verify, readmit.  Returns ``None``
        when another caller already recovered the shard."""
        shard_id = int(shard_id)
        lock = self._locks.setdefault(shard_id, threading.Lock())
        with lock:
            worker = self.router.workers[shard_id]
            transport = worker.transport
            if not getattr(transport, "is_down", False):
                return None  # concurrent recovery already swapped it
            start = time.perf_counter()
            detect_s = self._detect_seconds(shard_id, start)
            handle = self.registry.respawn(shard_id)
            baseline = self._baselines[shard_id]
            mode = "replay"
            try:
                catchup = self.log.commands_since(shard_id, baseline.version)
            except MutationLogHorizonError as exc:
                mode = "replan"
                warnings.warn(
                    f"{exc}; rebuilding shard {shard_id} from checkpoint + "
                    "current plan (serving-state counters restart — answers "
                    "reflect the current graph, not the pre-failure timeline)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._metrics.counter(
                    "fleet_rebuilds_total",
                    shard=str(shard_id),
                    reason="log_horizon",
                ).inc()
                baseline = _ShardBaseline(
                    worker.spec.to_payload(), None, self.router.graph.version
                )
                self._baselines[shard_id] = baseline
                catchup = []
            engine_args = {
                "spec_payload": baseline.payload,
                "checkpoint": None,
                "checkpoint_bytes": self.checkpoint_bytes,
                "config": self.shard_configs[shard_id],
                "serving_state": baseline.serving_state,
            }
            new_transport = SocketTransport(
                shard_id,
                handle.address,
                engine_args,
                max_frame_bytes=self.max_frame_bytes,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_misses=self.heartbeat_misses,
                **self.transport_callbacks(),
            ).start()
            new_transport.wait_ready(self.start_timeout)
            respawned = time.perf_counter()
            for _, _, command in catchup:
                new_transport.send(
                    Envelope(kind="mutate", payload={"command": command})
                ).result(self.router.request_timeout)
            self._verify(shard_id, new_transport)
            replayed = time.perf_counter()
            worker.swap_transport(new_transport)
            transport.stop(timeout=1.0)
            self._metrics.counter(
                "fleet_reconnects_total", shard=str(shard_id)
            ).inc()
            self._metrics.gauge(
                "fleet_worker_connected", shard=str(shard_id)
            ).set(1)
            record = RecoveryRecord(
                shard_id=shard_id,
                reason=reason,
                mode=mode,
                detect_s=detect_s,
                respawn_s=respawned - start,
                replay_s=replayed - respawned,
                total_s=replayed - start + detect_s,
                replayed_commands=len(catchup),
                baseline_version=baseline.version,
                target_version=int(self.router.graph.version),
            )
            self.recoveries.append(record)
            return record

    def _detect_seconds(self, shard_id: int, now: float) -> float:
        for event in reversed(self.events):
            if event.shard_id == shard_id:
                return max(0.0, now - event.mono)
        return 0.0

    def _verify(self, shard_id: int, transport: SocketTransport) -> None:
        """A recovered engine must agree with the router-side mirror on the
        shard graph version before it serves anything."""
        state = transport.send(Envelope(kind="serving_state")).result(
            self.router.request_timeout
        )["serving_state"]
        mirror_version = int(self.router.plan.shards[shard_id].graph.version)
        got = int(state["graph_version"])
        if got != mirror_version:
            raise RuntimeError(
                f"shard {shard_id} recovery diverged: engine graph version "
                f"{got} != mirror version {mirror_version}"
            )

    def summary(self) -> Dict[str, object]:
        return {
            "worker_down_events": [event.to_record() for event in self.events],
            "recoveries": [record.to_record() for record in self.recoveries],
            "mutation_log": {
                "capacity": self.log.capacity,
                "entries": len(self.log),
            },
        }
