"""One shard = one :class:`InferenceServer` behind a bounded inbox.

A :class:`ShardWorker` is the concurrency unit of the cluster: it owns a
shard's graph, classifier and server outright, and everything that touches
them — requests, streaming mutations, telemetry snapshots — flows through
one FIFO inbox consumed by one thread.  Single-writer ownership is what
makes the sharded tier safe without any locking inside the serving stack:
the server, cache and graph are only ever touched from the worker's thread
(or from the caller's thread in ``sync`` mode, where no thread exists).

The inbox is **bounded** (``queue.Queue(maxsize=...)``), so a hot shard
exerts backpressure on the router instead of buffering unboundedly — the
router's enqueue blocks until the worker drains.  The worker drains
greedily: it blocks for the first item, then scoops everything else already
queued and processes the burst through the server's micro-batcher in one
submit-all-then-drain pass, so concurrent arrivals coalesce into real
batches instead of degenerating into singletons.

Mutations ride the same inbox as plain callables with a result future, so
they act as **barriers**: every request enqueued before the mutation is
answered from pre-mutation state, everything after sees post-mutation
state, with no torn interleavings.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.planner import ShardSpec
from repro.serve.server import InferenceServer


@dataclass
class _WorkItem:
    """One inbox entry: a request, a barrier task, or the stop sentinel."""

    kind: str  # "request" | "task" | "stop"
    future: Optional[Future] = None
    node: int = -1
    request_kind: str = "classify"
    now: Optional[float] = None
    fn: Optional[Callable[[], object]] = None


class ShardWorker:
    """Owns one shard's server; serializes all access through its inbox.

    ``mode="thread"`` runs a consumer thread (call :meth:`start`);
    ``mode="sync"`` executes inline on the caller's thread — the
    deterministic path used by replay benchmarks and equivalence tests,
    where logical clocks drive arrivals and thread scheduling must not
    perturb batch composition.
    """

    def __init__(
        self,
        spec: ShardSpec,
        server: InferenceServer,
        *,
        mode: str = "thread",
        inbox_capacity: int = 256,
        poll_interval: float = 0.005,
    ) -> None:
        if mode not in ("thread", "sync"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if inbox_capacity < 1:
            raise ValueError(f"inbox_capacity must be >= 1, got {inbox_capacity}")
        self.spec = spec
        self.server = server
        self.mode = mode
        self.inbox: "queue.Queue[_WorkItem]" = queue.Queue(maxsize=inbox_capacity)
        self._poll_interval = float(poll_interval)
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        # Router-visible accounting (written from the routing thread only).
        self.requests_routed = 0
        self.halo_requests = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardWorker":
        if self.mode != "thread":
            return self
        if self._thread is not None:
            raise RuntimeError(f"shard {self.spec.shard_id} already started")
        self._thread = threading.Thread(
            target=self._run, name=f"shard-{self.spec.shard_id}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain outstanding work, stop the thread, detach the server."""
        if self._thread is not None and not self._stopped:
            done: Future = Future()
            self.inbox.put(_WorkItem(kind="stop", future=done))
            done.result()
            self._thread.join()
            self._thread = None
        self._stopped = True
        self.server.close()

    # ------------------------------------------------------------------
    # Producer side (router thread)
    # ------------------------------------------------------------------

    def request(
        self, node: int, kind: str, now: Optional[float] = None
    ) -> Future:
        """Enqueue one request; the future resolves to the response value.

        Blocks when the inbox is full (bounded-queue backpressure).  In
        ``sync`` mode the request executes before this returns.
        """
        future: Future = Future()
        item = _WorkItem(
            kind="request", future=future, node=int(node),
            request_kind=kind, now=now,
        )
        if self.mode == "sync":
            self._serve_requests([item])
        else:
            self.inbox.put(item)
        return future

    def run_task(self, fn: Callable[[], object]) -> Future:
        """Enqueue a barrier task (mutation applier, telemetry snapshot).

        Everything enqueued before it completes first; everything after
        observes its effects.
        """
        future: Future = Future()
        item = _WorkItem(kind="task", future=future, fn=fn)
        if self.mode == "sync":
            self._run_task(item)
        else:
            self.inbox.put(item)
        return future

    def serve_batch(
        self, nodes, kind: str, now: Optional[float] = None
    ) -> List[object]:
        """Synchronous convenience: serve ``nodes`` in order, return values.

        In ``sync`` mode this is the scatter-gather leg the router uses
        directly (one submit-all-then-drain pass, so the micro-batcher sees
        the whole group); in ``thread`` mode it enqueues and waits (still
        safe — the worker thread does the serving).
        """
        items = [
            _WorkItem(
                kind="request", future=Future(), node=int(node),
                request_kind=kind, now=now,
            )
            for node in np.atleast_1d(nodes)
        ]
        if self.mode == "sync":
            self._serve_requests(items)
        else:
            for item in items:
                self.inbox.put(item)
        return [item.future.result() for item in items]

    # ------------------------------------------------------------------
    # Consumer side (worker thread, or inline in sync mode)
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            try:
                first = self.inbox.get(timeout=self._poll_interval)
            except queue.Empty:
                continue
            burst = [first]
            while True:
                try:
                    burst.append(self.inbox.get_nowait())
                except queue.Empty:
                    break
            if self._process_burst(burst):
                return

    def _process_burst(self, burst: List[_WorkItem]) -> bool:
        """Run one scooped burst in FIFO order; True when stopped.

        Contiguous runs of requests go through the server together
        (submit-all then drain — the micro-batcher coalesces them);
        tasks and the stop sentinel act as barriers between runs.
        """
        pending: List[_WorkItem] = []
        for item in burst:
            if item.kind == "request":
                pending.append(item)
                continue
            if pending:
                self._serve_requests(pending)
                pending = []
            if item.kind == "task":
                self._run_task(item)
            elif item.kind == "stop":
                item.future.set_result(None)
                return True
        if pending:
            self._serve_requests(pending)
        return False

    def _serve_requests(self, items: List[_WorkItem]) -> None:
        ids: List[Optional[int]] = []
        for item in items:
            try:
                ids.append(
                    self.server.submit(
                        item.node, kind=item.request_kind, now=item.now
                    )
                )
            except Exception as error:  # bad node id etc. — fail that future
                item.future.set_exception(error)
                ids.append(None)
        try:
            self.server.drain()
        except Exception as error:
            for item, request_id in zip(items, ids):
                if request_id is not None:
                    item.future.set_exception(error)
            return
        for item, request_id in zip(items, ids):
            if request_id is None:
                continue
            try:
                item.future.set_result(self.server.result(request_id).value)
            except Exception as error:
                item.future.set_exception(error)

    @staticmethod
    def _run_task(item: _WorkItem) -> None:
        try:
            item.future.set_result(item.fn())
        except Exception as error:
            item.future.set_exception(error)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inbox_depth(self) -> int:
        return self.inbox.qsize()

    def summary(self) -> dict:
        stats = dict(self.server.telemetry.summary())
        stats.update(
            shard=self.spec.shard_id,
            owned=self.spec.num_owned,
            halo=int(self.spec.halo.size),
            requests_routed=self.requests_routed,
            halo_requests=self.halo_requests,
            inbox_depth=self.inbox_depth,
            cache_size=len(self.server.cache),
        )
        return stats
