"""The protocol side of one shard: typed envelopes over a transport.

Since the transport refactor, :class:`ShardWorker` no longer owns a server
— the :class:`~repro.cluster.engine.ShardEngine` behind the transport
does.  The worker is the router's *client stub*: it keeps the router-side
mirror of the shard's :class:`~repro.cluster.planner.ShardSpec` (routing
masks, ownership counts), wraps each interaction in a typed
:class:`~repro.cluster.transport.Envelope`, and returns
:class:`~repro.cluster.transport.PendingReply` handles so the router can
issue a whole scatter before gathering anything.

Ordering is inherited from the transport's FIFO contract: one shard, one
envelope stream, processed one at a time.  A ``mutate`` envelope is a
barrier between the ``serve`` envelopes around it — the same guarantee the
old inbox gave, now independent of whether the far side is the caller's
thread, a worker thread, or another process.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.planner import MutationCommand, ShardSpec
from repro.cluster.transport import (
    Envelope,
    PendingReply,
    ShardError,
    Transport,
)


class _ItemReply(PendingReply):
    """A single request's slice of a batched serve reply."""

    def __init__(self, batch: PendingReply, position: int) -> None:
        super().__init__(batch.shard_id, batch.kind)
        self._batch = batch
        self._position = position

    def wait(self, timeout: Optional[float] = None):
        return self._batch.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        payload = self._batch.result(timeout)
        item = payload["items"][self._position]
        if not item["ok"]:
            raise ShardError(self.shard_id, item["error"])
        return item["value"]


class ShardWorker:
    """Client stub for one shard engine, reachable only through envelopes."""

    def __init__(self, spec: ShardSpec, transport: Transport) -> None:
        self.spec = spec
        self.transport = transport
        self._stopped = False
        # Router-visible accounting (written from the routing thread only).
        self.requests_routed = 0
        self.halo_requests = 0
        self.respawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardWorker":
        self.transport.start()
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        self.transport.wait_ready(timeout)

    def stop(self) -> None:
        if not self._stopped:
            self.transport.stop()
            self._stopped = True

    def swap_transport(self, transport: Transport) -> None:
        """Readmit a recovered shard: the supervisor hands over a fresh,
        ready, caught-up channel and every later envelope rides it.  The
        old (down) transport is the caller's to stop."""
        self.transport = transport
        self.respawns += 1

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def submit_serve(
        self,
        nodes,
        kind: str,
        now: Optional[float] = None,
        trace_ctx: Optional[dict] = None,
    ) -> PendingReply:
        """One serve envelope for a group of nodes; gather later.

        The whole group reaches the engine in one envelope, so the server's
        micro-batcher sees it at once — concurrent scatter legs coalesce
        into real batches instead of singletons.  ``trace_ctx`` (when the
        router is tracing) makes the engine root a private span buffer for
        this envelope and ship it back on the reply.
        """
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        return self.transport.send(
            Envelope(
                kind="serve",
                payload={"nodes": nodes, "kind": kind, "now": now},
                trace_ctx=trace_ctx,
            )
        )

    def request(
        self, node: int, kind: str, now: Optional[float] = None
    ) -> PendingReply:
        """Single-node convenience over :meth:`submit_serve`."""
        batch = self.submit_serve(np.asarray([int(node)]), kind, now=now)
        return _ItemReply(batch, 0)

    def serve_batch(
        self, nodes, kind: str, now: Optional[float] = None, timeout: Optional[float] = None
    ) -> List[object]:
        """Synchronous convenience: serve ``nodes`` in order, return values."""
        payload = self.submit_serve(nodes, kind, now=now).result(timeout)
        values = []
        for item in payload["items"]:
            if not item["ok"]:
                raise ShardError(self.spec.shard_id, item["error"])
            values.append(item["value"])
        return values

    # ------------------------------------------------------------------
    # Barriers and pulls
    # ------------------------------------------------------------------

    def mutate(self, command: MutationCommand) -> PendingReply:
        """Ship one planner command; FIFO order makes it a barrier."""
        return self.transport.send(
            Envelope(kind="mutate", payload={"command": command})
        )

    def replay(
        self, nodes: np.ndarray, times: np.ndarray, end: Optional[float]
    ) -> PendingReply:
        """Ship this shard's slice of a logical-clock trace."""
        return self.transport.send(
            Envelope(
                kind="replay",
                payload={"nodes": nodes, "times": times, "end": end},
            )
        )

    def pull_telemetry(self) -> PendingReply:
        return self.transport.send(Envelope(kind="telemetry"))

    def pull_metrics(self) -> PendingReply:
        return self.transport.send(Envelope(kind="metrics"))

    def pull_serving_state(self) -> PendingReply:
        return self.transport.send(Envelope(kind="serving_state"))

    def clock_probe(self) -> dict:
        """One synchronous clock-alignment probe (see ``repro.obs.dist``).

        Blocking on purpose: the handshake's offset math needs the caller's
        clock readings to bracket the engine's, so there is nothing to
        overlap.
        """
        return self.transport.send(Envelope(kind="clock")).result()

    def reset(self) -> PendingReply:
        pending = self.transport.send(Envelope(kind="reset"))
        self.requests_routed = 0
        self.halo_requests = 0
        return pending

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inbox_depth(self) -> int:
        return int(getattr(self.transport, "inbox_depth", 0))

    def summary(self, telemetry_payload: dict) -> dict:
        """Shard summary row from a pulled telemetry payload."""
        stats = dict(telemetry_payload["summary"])
        stats.update(
            shard=self.spec.shard_id,
            owned=self.spec.num_owned,
            halo=int(self.spec.halo.size),
            requests_routed=self.requests_routed,
            halo_requests=self.halo_requests,
            respawns=self.respawns,
            inbox_depth=self.inbox_depth,
            cache_size=telemetry_payload["cache_size"],
        )
        return stats
