"""Shard planning: partition + halo replication for sharded serving.

The planner turns one serving graph into ``k`` shard graphs that can answer
requests for their *owned* nodes **bit-identically** to a whole-graph
server.  The argument rests on WIDEN's serving-path locality (see
``repro.graph.halo``): embedding a target queries the adjacency lists of
nodes within ``reach - 1`` out-hops and reads the features of nodes within
``reach`` out-hops, where ``reach`` is the model's declared sampling reach
(:attr:`WidenConfig.serving_reach`).  A shard therefore materializes:

- **closure sources** — ``k_hop_out(owned, reach - 1)``: every node whose
  out-edge list an owned computation can query; the shard keeps exactly the
  global edges whose source lies in this set.
- **halo** — ``k_hop_out(owned, reach)``: every node whose features an
  owned computation can read; features outside the halo are zeroed.

Shard graphs keep the **global id space** (same ``num_nodes``, same node
ordering).  Because :meth:`HeteroGraph._rebuild_csr` sorts edges with a
*stable* argsort on the source column, filtering the global CSR arrays by a
source mask preserves every surviving adjacency list verbatim — same
neighbors, same order — so seeded neighbor sampling draws identical indices
on the shard and on the whole graph.  Zeroing non-halo features is not an
optimization (the arrays keep their global shape); it is the *proof of
locality*: if an owned request ever read outside its halo, the shard would
visibly diverge from the whole-graph server, and the equivalence tests
would catch it.

Ownership is a :func:`repro.graph.partition.partition_graph` partition
(balanced, low edge cut — fewer cut edges means smaller halos and fewer
boundary-crossing requests).  The plan also precomputes, per shard, the
``touches_halo`` mask — owned nodes within ``reach`` out-hops of a
non-owned node — which the router uses to count boundary-crossing requests
without any per-request BFS.

Since the transport refactor, shard state crosses a **message boundary**:

- :meth:`ShardSpec.to_payload` / :meth:`ShardSpec.from_payload` are the
  compact serialized form a spawned worker process rebuilds its shard from
  — plain arrays only, features restricted to the halo rows (everything
  outside is zero by construction), so spawning a shard costs plan
  *shipping*, not re-planning.
- Streaming mutations propagate as serializable **commands**
  (:class:`AddNodesCommand` / :class:`RefreshCommand`) instead of Python
  closures.  The plan applies each command to its own router-side mirror
  spec (so routing masks and the next refresh diff stay current) and the
  router ships the identical command to the shard engine, which applies it
  to its independent copy — the two sides stay aligned because they replay
  the same command stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.graph import HeteroGraph, k_hop_in, k_hop_out
from repro.graph.partition import edge_cut, partition_graph


@dataclass
class AddNodesCommand:
    """Serializable per-shard applier for a streaming node arrival.

    Every shard appends the same global ids (the id space must stay
    aligned); only the owner receives real ``features`` — the rest get
    zeros until some edge pulls the arrivals into their halo.
    """

    type_name: str
    features: Optional[np.ndarray]
    labels: Optional[np.ndarray]
    count: int
    expected_ids: np.ndarray
    is_owner: bool


@dataclass
class RefreshCommand:
    """Serializable applier bringing a shard up to date with the global
    edge set after ``add_edges`` moved its materialized closure.

    Carries the shard's full new edge arrays, the refreshed halo (ids +
    feature rows) and routing masks, plus the *global* ``changed_sources``
    so the shard server's reverse-BFS bumps exactly the frontier a
    whole-graph server would.
    """

    src: np.ndarray
    dst: np.ndarray
    edge_types: np.ndarray
    closure_sources: np.ndarray
    halo: np.ndarray
    halo_features: Optional[np.ndarray]
    touches_halo: np.ndarray
    changed_sources: np.ndarray


MutationCommand = Union[AddNodesCommand, RefreshCommand]


@dataclass
class ShardSpec:
    """One shard: its ownership, replication sets and materialized graph.

    All node ids are **global** ids; ``graph`` spans the full id space with
    edges restricted to ``closure_sources`` and features zeroed outside
    ``halo``.  Two instances of a spec exist at runtime: the plan's
    router-side mirror (routing masks, refresh diffs) and the engine's
    working copy (rebuilt from :meth:`to_payload` behind the transport) —
    both advance by applying the same :class:`MutationCommand` stream via
    :meth:`apply`.
    """

    shard_id: int
    owned: np.ndarray
    closure_sources: np.ndarray
    halo: np.ndarray
    graph: HeteroGraph
    touches_halo: np.ndarray  # bool mask over the global id space

    @property
    def num_owned(self) -> int:
        return int(self.owned.size)

    @property
    def halo_only(self) -> np.ndarray:
        """Replicated (non-owned) nodes whose features this shard carries."""
        owned_mask = np.zeros(self.graph.num_nodes, dtype=bool)
        owned_mask[self.owned] = True
        return self.halo[~owned_mask[self.halo]]

    def summary(self) -> Dict[str, int]:
        return {
            "shard": self.shard_id,
            "owned": self.num_owned,
            "halo": int(self.halo.size),
            "halo_only": int(self.halo_only.size),
            "closure_sources": int(self.closure_sources.size),
            "edges": int(self.graph.num_edges),
            "boundary_nodes": int(
                self.touches_halo[self.owned].sum() if self.owned.size else 0
            ),
        }

    # ------------------------------------------------------------------
    # Message-boundary serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Compact, picklable form of this shard (plain arrays only).

        Features ship as halo rows plus the halo index — everything outside
        the halo is zero by construction, so a shard of a large graph
        crosses the process boundary at replication-factor cost, not
        whole-feature-matrix cost.
        """
        graph = self.graph
        return {
            "shard_id": int(self.shard_id),
            "owned": self.owned,
            "closure_sources": self.closure_sources,
            "halo": self.halo,
            "touches_halo": self.touches_halo,
            "node_types": graph.node_types,
            "src": graph._src,
            "dst": graph.indices,
            "edge_types": graph.edge_type_of,
            "node_type_names": list(graph.node_type_names),
            "edge_type_names": list(graph.edge_type_names),
            "labels": graph.labels,
            "num_classes": int(graph.num_classes),
            "version": int(graph.version),
            "feature_dim": (
                None if graph.features is None else int(graph.features.shape[1])
            ),
            "halo_features": (
                None if graph.features is None else graph.features[self.halo]
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ShardSpec":
        """Rebuild an independent spec (own graph, own arrays) from
        :meth:`to_payload` output.

        The payload's edge arrays are already in stable CSR order, and
        ``HeteroGraph._rebuild_csr`` uses a stable argsort, so the rebuilt
        adjacency lists are verbatim identical — the precondition for
        bit-identical seeded sampling on the far side of the boundary.
        """
        features = None
        if payload["feature_dim"] is not None:
            features = np.zeros(
                (payload["node_types"].shape[0], payload["feature_dim"])
            )
            features[payload["halo"]] = payload["halo_features"]
        graph = HeteroGraph(
            node_types=payload["node_types"].copy(),
            src=payload["src"].copy(),
            dst=payload["dst"].copy(),
            edge_types=payload["edge_types"].copy(),
            node_type_names=list(payload["node_type_names"]),
            edge_type_names=list(payload["edge_type_names"]),
            features=features,
            labels=payload["labels"].copy(),
            num_classes=payload["num_classes"],
        )
        # Align the version counter (the rng-seed base of the shard server)
        # with the global graph at plan time.
        graph.version = payload["version"]
        return cls(
            shard_id=payload["shard_id"],
            owned=payload["owned"].copy(),
            closure_sources=payload["closure_sources"].copy(),
            halo=payload["halo"].copy(),
            graph=graph,
            touches_halo=payload["touches_halo"].copy(),
        )

    # ------------------------------------------------------------------
    # Command application (runs on the mirror AND inside the engine)
    # ------------------------------------------------------------------

    def apply(self, command: MutationCommand) -> None:
        """Apply one mutation command to this spec's graph and sets.

        The same function runs on the router-side mirror and inside every
        shard engine; determinism of the command stream is what keeps the
        two aligned without shared memory.
        """
        if isinstance(command, AddNodesCommand):
            self._apply_add_nodes(command)
        elif isinstance(command, RefreshCommand):
            self._apply_refresh(command)
        else:
            raise TypeError(f"unknown mutation command {type(command).__name__}")

    def _apply_add_nodes(self, command: AddNodesCommand) -> None:
        got = self.graph.add_nodes(
            command.type_name,
            features=command.features,
            labels=command.labels,
            count=command.count,
        )
        if not np.array_equal(got, command.expected_ids):
            raise RuntimeError(
                f"shard {self.shard_id} id space diverged: appended "
                f"{got}, global appended {command.expected_ids}"
            )
        grown = np.zeros(self.graph.num_nodes, dtype=bool)
        grown[: self.touches_halo.size] = self.touches_halo
        self.touches_halo = grown
        if command.is_owner:
            # Isolated arrivals: owned and in-halo by definition (depth-0
            # reachability), crossing nothing yet.
            self.owned = np.concatenate([self.owned, command.expected_ids])
            self.closure_sources = np.union1d(
                self.closure_sources, command.expected_ids
            )
            self.halo = np.union1d(self.halo, command.expected_ids)

    def _apply_refresh(self, command: RefreshCommand) -> None:
        if command.halo_features is not None:
            self.graph.features[command.halo] = command.halo_features
        self.closure_sources = command.closure_sources
        self.halo = command.halo
        self.touches_halo = command.touches_halo
        self.graph.replace_edges(
            command.src,
            command.dst,
            command.edge_types,
            changed_sources=command.changed_sources,
        )


def _shard_edge_arrays(graph: HeteroGraph, closure_sources: np.ndarray):
    """The global edges whose source lies in the closure, **in CSR order**.

    The global CSR is stably sorted by source, so a boolean-mask gather
    yields per-source adjacency lists identical (contents *and* order) to
    the whole graph — the load-bearing fact behind bit-identical sampling.
    """
    closure_mask = np.zeros(graph.num_nodes, dtype=bool)
    closure_mask[closure_sources] = True
    edge_mask = closure_mask[graph._src]
    return (
        graph._src[edge_mask],
        graph.indices[edge_mask],
        graph.edge_type_of[edge_mask],
    )


def _masked_features(graph: HeteroGraph, halo: np.ndarray) -> Optional[np.ndarray]:
    if graph.features is None:
        return None
    features = np.zeros_like(graph.features)
    features[halo] = graph.features[halo]
    return features


def _touches_halo_mask(graph: HeteroGraph, owned: np.ndarray, reach: int) -> np.ndarray:
    """Owned nodes whose ``reach``-hop neighborhood leaves the owned set."""
    owned_mask = np.zeros(graph.num_nodes, dtype=bool)
    owned_mask[owned] = True
    foreign = np.flatnonzero(~owned_mask)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    if foreign.size == 0:
        return mask
    crossers = k_hop_in(graph, foreign, reach)
    mask[crossers] = True
    mask &= owned_mask
    return mask


class ShardPlanner:
    """Builds a :class:`ClusterPlan` from one serving graph.

    ``reach`` must be the model's declared sampling reach
    (:func:`repro.serve.server.serving_reach_of`); sharding an
    unknown-reach classifier is refused at the router level because no
    finite halo would be provably sufficient.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        reach: int,
        num_shards: int,
        *,
        balance_slack: float = 1.3,
        refine_passes: int = 2,
        seed: int = 0,
    ) -> None:
        if reach < 1:
            raise ValueError(f"reach must be >= 1, got {reach}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.graph = graph
        self.reach = int(reach)
        self.num_shards = int(num_shards)
        self.balance_slack = balance_slack
        self.refine_passes = refine_passes
        self.seed = seed

    def plan(self) -> "ClusterPlan":
        parts = partition_graph(
            self.graph,
            self.num_shards,
            refine_passes=self.refine_passes,
            balance_slack=self.balance_slack,
            rng=self.seed,
        )
        owner_of = np.empty(self.graph.num_nodes, dtype=np.int64)
        for shard_id, owned in enumerate(parts):
            owner_of[owned] = shard_id
        shards = [
            self._build_shard(shard_id, owned)
            for shard_id, owned in enumerate(parts)
        ]
        return ClusterPlan(
            global_graph=self.graph,
            reach=self.reach,
            shards=shards,
            owner_of=owner_of,
            partition_edge_cut=edge_cut(self.graph, parts),
        )

    def _build_shard(self, shard_id: int, owned: np.ndarray) -> ShardSpec:
        graph = self.graph
        closure_sources = k_hop_out(graph, owned, self.reach - 1)
        halo = k_hop_out(graph, owned, self.reach)
        src, dst, etypes = _shard_edge_arrays(graph, closure_sources)
        shard_graph = HeteroGraph(
            node_types=graph.node_types.copy(),
            src=src,
            dst=dst,
            edge_types=etypes,
            node_type_names=graph.node_type_names,
            edge_type_names=graph.edge_type_names,
            features=_masked_features(graph, halo),
            labels=graph.labels.copy(),
            num_classes=graph.num_classes,
        )
        # Align the shard's version counter with the global graph so a
        # shard server's version base — the rng-seed component — matches a
        # single whole-graph server's (bit-identical responses need
        # bit-identical seeds).
        shard_graph.version = graph.version
        return ShardSpec(
            shard_id=shard_id,
            owned=owned,
            closure_sources=closure_sources,
            halo=halo,
            graph=shard_graph,
            touches_halo=_touches_halo_mask(graph, owned, self.reach),
        )


@dataclass
class ClusterPlan:
    """The sharding decision plus the machinery to keep it fresh.

    The plan owns the ownership map and, under streaming mutations, knows
    how to propagate a change from the global graph into each shard: which
    shards are affected at all, and what serializable command brings them
    up to date.  Command builders apply each command to the plan's own
    mirror spec immediately (routing masks and the next refresh diff stay
    current) and return it for the router to ship to the shard engine —
    the engine's copy replays the identical command behind the transport.
    """

    global_graph: HeteroGraph
    reach: int
    shards: List[ShardSpec]
    owner_of: np.ndarray
    partition_edge_cut: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self.owner_of.size:
            raise IndexError(
                f"node {node} out of range [0, {self.owner_of.size})"
            )
        return int(self.owner_of[node])

    def replication_factor(self) -> float:
        """Mean copies of a node's features across shards (>= 1.0)."""
        total = sum(int(spec.halo.size) for spec in self.shards)
        return total / self.global_graph.num_nodes if self.global_graph.num_nodes else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "reach": self.reach,
            "edge_cut": self.partition_edge_cut,
            "replication_factor": self.replication_factor(),
            "shards": [spec.summary() for spec in self.shards],
        }

    # ------------------------------------------------------------------
    # Streaming mutation propagation
    # ------------------------------------------------------------------

    def place_new_nodes(self, count: int) -> int:
        """Owner shard for a batch of arriving nodes: the least-loaded one.

        Deterministic (ties break toward the lowest shard id) so a replayed
        mutation stream reproduces the same ownership.
        """
        sizes = [spec.num_owned for spec in self.shards]
        return int(np.argmin(sizes))

    def add_nodes_commands(
        self,
        owner: int,
        new_ids: np.ndarray,
        type_name: str,
        features: Optional[np.ndarray],
        labels: Optional[np.ndarray],
        count: int,
    ) -> List[AddNodesCommand]:
        """Per-shard commands for a node arrival already on the global graph.

        Every shard appends the same ids (the global id space must stay
        aligned), but only the owner receives real features — for everyone
        else the arrivals are outside the halo until some edge pulls them
        in, at which point :meth:`refresh_command` re-materializes features.
        ``HeteroGraph.add_nodes`` fires an ``add_nodes`` event on each shard
        graph, so per-shard servers bump exactly the new ids — the same
        no-drop invalidation a whole-graph server performs.
        """
        new_ids = np.asarray(new_ids, dtype=np.int64)
        zeros = None if features is None else np.zeros_like(np.atleast_2d(features))
        commands = []
        for spec in self.shards:
            is_owner = spec.shard_id == owner
            command = AddNodesCommand(
                type_name=type_name,
                features=(features if is_owner else zeros),
                labels=labels,
                count=count,
                expected_ids=new_ids,
                is_owner=is_owner,
            )
            spec.apply(command)  # keep the router-side mirror current
            commands.append(command)
        self.owner_of = np.concatenate(
            [self.owner_of, np.full(new_ids.size, owner, dtype=np.int64)]
        )
        return commands

    def refresh_command(
        self, spec: ShardSpec, changed_sources: np.ndarray
    ) -> Optional[RefreshCommand]:
        """Command bringing ``spec`` up to date with the global edge set.

        Returns ``None`` when the shard's materialized edges are unchanged
        — the adjacency lists inside its closure did not move, hence (by
        path-locality) no owned node's served embedding can observe the
        mutation, and the shard is skipped without any envelope at all.

        Otherwise the command refreshes halo features, swaps the edge set
        in one :meth:`HeteroGraph.replace_edges` call and reports the
        *global* ``changed_sources``: the shard server's reverse-BFS then
        bumps ``frontier ∩ owned`` exactly as a whole-graph server does
        (every ``<= reach-1``-hop path from an owned node to a changed
        source runs inside the closure, so shard-local reachability agrees
        with global reachability on owned nodes).  One mutation, one event,
        one bump — the version counters stay aligned with the
        single-server timeline.
        """
        graph = self.global_graph
        closure_sources = k_hop_out(graph, spec.owned, self.reach - 1)
        halo = k_hop_out(graph, spec.owned, self.reach)
        src, dst, etypes = _shard_edge_arrays(graph, closure_sources)
        unchanged = (
            src.size == spec.graph.num_edges
            and np.array_equal(src, spec.graph._src)
            and np.array_equal(dst, spec.graph.indices)
            and np.array_equal(etypes, spec.graph.edge_type_of)
        )
        if unchanged:
            return None
        command = RefreshCommand(
            src=src,
            dst=dst,
            edge_types=etypes,
            closure_sources=closure_sources,
            halo=halo,
            halo_features=(
                None if graph.features is None else graph.features[halo]
            ),
            touches_halo=_touches_halo_mask(graph, spec.owned, self.reach),
            changed_sources=np.asarray(changed_sources, dtype=np.int64),
        )
        spec.apply(command)  # keep the router-side mirror current
        return command
