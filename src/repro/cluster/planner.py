"""Shard planning: partition + halo replication for sharded serving.

The planner turns one serving graph into ``k`` shard graphs that can answer
requests for their *owned* nodes **bit-identically** to a whole-graph
server.  The argument rests on WIDEN's serving-path locality (see
``repro.graph.halo``): embedding a target queries the adjacency lists of
nodes within ``reach - 1`` out-hops and reads the features of nodes within
``reach`` out-hops, where ``reach`` is the model's declared sampling reach
(:attr:`WidenConfig.serving_reach`).  A shard therefore materializes:

- **closure sources** — ``k_hop_out(owned, reach - 1)``: every node whose
  out-edge list an owned computation can query; the shard keeps exactly the
  global edges whose source lies in this set.
- **halo** — ``k_hop_out(owned, reach)``: every node whose features an
  owned computation can read; features outside the halo are zeroed.

Shard graphs keep the **global id space** (same ``num_nodes``, same node
ordering).  Because :meth:`HeteroGraph._rebuild_csr` sorts edges with a
*stable* argsort on the source column, filtering the global CSR arrays by a
source mask preserves every surviving adjacency list verbatim — same
neighbors, same order — so seeded neighbor sampling draws identical indices
on the shard and on the whole graph.  Zeroing non-halo features is not an
optimization (the arrays keep their global shape); it is the *proof of
locality*: if an owned request ever read outside its halo, the shard would
visibly diverge from the whole-graph server, and the equivalence tests
would catch it.

Ownership is a :func:`repro.graph.partition.partition_graph` partition
(balanced, low edge cut — fewer cut edges means smaller halos and fewer
boundary-crossing requests).  The plan also precomputes, per shard, the
``touches_halo`` mask — owned nodes within ``reach`` out-hops of a
non-owned node — which the router uses to count boundary-crossing requests
without any per-request BFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.graph import HeteroGraph, k_hop_in, k_hop_out
from repro.graph.partition import edge_cut, partition_graph


@dataclass
class ShardSpec:
    """One shard: its ownership, replication sets and materialized graph.

    All node ids are **global** ids; ``graph`` spans the full id space with
    edges restricted to ``closure_sources`` and features zeroed outside
    ``halo``.
    """

    shard_id: int
    owned: np.ndarray
    closure_sources: np.ndarray
    halo: np.ndarray
    graph: HeteroGraph
    touches_halo: np.ndarray  # bool mask over the global id space

    @property
    def num_owned(self) -> int:
        return int(self.owned.size)

    @property
    def halo_only(self) -> np.ndarray:
        """Replicated (non-owned) nodes whose features this shard carries."""
        owned_mask = np.zeros(self.graph.num_nodes, dtype=bool)
        owned_mask[self.owned] = True
        return self.halo[~owned_mask[self.halo]]

    def summary(self) -> Dict[str, int]:
        return {
            "shard": self.shard_id,
            "owned": self.num_owned,
            "halo": int(self.halo.size),
            "halo_only": int(self.halo_only.size),
            "closure_sources": int(self.closure_sources.size),
            "edges": int(self.graph.num_edges),
            "boundary_nodes": int(
                self.touches_halo[self.owned].sum() if self.owned.size else 0
            ),
        }


def _shard_edge_arrays(graph: HeteroGraph, closure_sources: np.ndarray):
    """The global edges whose source lies in the closure, **in CSR order**.

    The global CSR is stably sorted by source, so a boolean-mask gather
    yields per-source adjacency lists identical (contents *and* order) to
    the whole graph — the load-bearing fact behind bit-identical sampling.
    """
    closure_mask = np.zeros(graph.num_nodes, dtype=bool)
    closure_mask[closure_sources] = True
    edge_mask = closure_mask[graph._src]
    return (
        graph._src[edge_mask],
        graph.indices[edge_mask],
        graph.edge_type_of[edge_mask],
    )


def _masked_features(graph: HeteroGraph, halo: np.ndarray) -> Optional[np.ndarray]:
    if graph.features is None:
        return None
    features = np.zeros_like(graph.features)
    features[halo] = graph.features[halo]
    return features


def _touches_halo_mask(graph: HeteroGraph, owned: np.ndarray, reach: int) -> np.ndarray:
    """Owned nodes whose ``reach``-hop neighborhood leaves the owned set."""
    owned_mask = np.zeros(graph.num_nodes, dtype=bool)
    owned_mask[owned] = True
    foreign = np.flatnonzero(~owned_mask)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    if foreign.size == 0:
        return mask
    crossers = k_hop_in(graph, foreign, reach)
    mask[crossers] = True
    mask &= owned_mask
    return mask


class ShardPlanner:
    """Builds a :class:`ClusterPlan` from one serving graph.

    ``reach`` must be the model's declared sampling reach
    (:func:`repro.serve.server.serving_reach_of`); sharding an
    unknown-reach classifier is refused at the router level because no
    finite halo would be provably sufficient.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        reach: int,
        num_shards: int,
        *,
        balance_slack: float = 1.3,
        refine_passes: int = 2,
        seed: int = 0,
    ) -> None:
        if reach < 1:
            raise ValueError(f"reach must be >= 1, got {reach}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.graph = graph
        self.reach = int(reach)
        self.num_shards = int(num_shards)
        self.balance_slack = balance_slack
        self.refine_passes = refine_passes
        self.seed = seed

    def plan(self) -> "ClusterPlan":
        parts = partition_graph(
            self.graph,
            self.num_shards,
            refine_passes=self.refine_passes,
            balance_slack=self.balance_slack,
            rng=self.seed,
        )
        owner_of = np.empty(self.graph.num_nodes, dtype=np.int64)
        for shard_id, owned in enumerate(parts):
            owner_of[owned] = shard_id
        shards = [
            self._build_shard(shard_id, owned)
            for shard_id, owned in enumerate(parts)
        ]
        return ClusterPlan(
            global_graph=self.graph,
            reach=self.reach,
            shards=shards,
            owner_of=owner_of,
            partition_edge_cut=edge_cut(self.graph, parts),
        )

    def _build_shard(self, shard_id: int, owned: np.ndarray) -> ShardSpec:
        graph = self.graph
        closure_sources = k_hop_out(graph, owned, self.reach - 1)
        halo = k_hop_out(graph, owned, self.reach)
        src, dst, etypes = _shard_edge_arrays(graph, closure_sources)
        shard_graph = HeteroGraph(
            node_types=graph.node_types.copy(),
            src=src,
            dst=dst,
            edge_types=etypes,
            node_type_names=graph.node_type_names,
            edge_type_names=graph.edge_type_names,
            features=_masked_features(graph, halo),
            labels=graph.labels.copy(),
            num_classes=graph.num_classes,
        )
        # Align the shard's version counter with the global graph so a
        # shard server's version base — the rng-seed component — matches a
        # single whole-graph server's (bit-identical responses need
        # bit-identical seeds).
        shard_graph.version = graph.version
        return ShardSpec(
            shard_id=shard_id,
            owned=owned,
            closure_sources=closure_sources,
            halo=halo,
            graph=shard_graph,
            touches_halo=_touches_halo_mask(graph, owned, self.reach),
        )


@dataclass
class ClusterPlan:
    """The sharding decision plus the machinery to keep it fresh.

    The plan owns the ownership map and, under streaming mutations, knows
    how to propagate a change from the global graph into each shard: which
    shards are affected at all, what their new edge sets / halos are, and
    what ``changed_sources`` to report so per-shard fine-grained
    invalidation bumps exactly the nodes a whole-graph server would bump.
    The router applies the resulting callables inside each shard's worker
    (the worker owns its graph; the plan never mutates across threads).
    """

    global_graph: HeteroGraph
    reach: int
    shards: List[ShardSpec]
    owner_of: np.ndarray
    partition_edge_cut: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self.owner_of.size:
            raise IndexError(
                f"node {node} out of range [0, {self.owner_of.size})"
            )
        return int(self.owner_of[node])

    def replication_factor(self) -> float:
        """Mean copies of a node's features across shards (>= 1.0)."""
        total = sum(int(spec.halo.size) for spec in self.shards)
        return total / self.global_graph.num_nodes if self.global_graph.num_nodes else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "reach": self.reach,
            "edge_cut": self.partition_edge_cut,
            "replication_factor": self.replication_factor(),
            "shards": [spec.summary() for spec in self.shards],
        }

    # ------------------------------------------------------------------
    # Streaming mutation propagation
    # ------------------------------------------------------------------

    def place_new_nodes(self, count: int) -> int:
        """Owner shard for a batch of arriving nodes: the least-loaded one.

        Deterministic (ties break toward the lowest shard id) so a replayed
        mutation stream reproduces the same ownership.
        """
        sizes = [spec.num_owned for spec in self.shards]
        return int(np.argmin(sizes))

    def add_nodes_callables(
        self,
        owner: int,
        new_ids: np.ndarray,
        type_name: str,
        features: Optional[np.ndarray],
        labels: Optional[np.ndarray],
        count: int,
    ) -> List[Callable[[], None]]:
        """Per-shard appliers for a node arrival already on the global graph.

        Every shard appends the same ids (the global id space must stay
        aligned), but only the owner receives real features — for everyone
        else the arrivals are outside the halo until some edge pulls them
        in, at which point :meth:`refresh_shard` re-materializes features.
        ``HeteroGraph.add_nodes`` fires an ``add_nodes`` event on each shard
        graph, so per-shard servers bump exactly the new ids — the same
        no-drop invalidation a whole-graph server performs.
        """
        new_ids = np.asarray(new_ids, dtype=np.int64)
        zeros = None if features is None else np.zeros_like(np.atleast_2d(features))
        appliers = []
        for spec in self.shards:
            is_owner = spec.shard_id == owner
            appliers.append(
                self._make_add_nodes_applier(
                    spec,
                    new_ids,
                    type_name,
                    (features if is_owner else zeros),
                    labels,
                    count,
                    is_owner,
                )
            )
        self.owner_of = np.concatenate(
            [self.owner_of, np.full(new_ids.size, owner, dtype=np.int64)]
        )
        return appliers

    def _make_add_nodes_applier(
        self,
        spec: ShardSpec,
        new_ids: np.ndarray,
        type_name: str,
        features: Optional[np.ndarray],
        labels: Optional[np.ndarray],
        count: int,
        is_owner: bool,
    ) -> Callable[[], None]:
        def apply() -> None:
            got = spec.graph.add_nodes(
                type_name, features=features, labels=labels, count=count
            )
            if not np.array_equal(got, new_ids):
                raise RuntimeError(
                    f"shard {spec.shard_id} id space diverged: appended "
                    f"{got}, global appended {new_ids}"
                )
            grown = np.zeros(spec.graph.num_nodes, dtype=bool)
            grown[: spec.touches_halo.size] = spec.touches_halo
            spec.touches_halo = grown
            if is_owner:
                # Isolated arrivals: owned and in-halo by definition
                # (depth-0 reachability), crossing nothing yet.
                spec.owned = np.concatenate([spec.owned, new_ids])
                spec.closure_sources = np.union1d(spec.closure_sources, new_ids)
                spec.halo = np.union1d(spec.halo, new_ids)

        return apply

    def refresh_shard(
        self, spec: ShardSpec, changed_sources: np.ndarray
    ) -> Optional[Callable[[], None]]:
        """Applier bringing ``spec`` up to date with the global edge set.

        Returns ``None`` when the shard's materialized edges are unchanged
        — the adjacency lists inside its closure did not move, hence (by
        path-locality) no owned node's served embedding can observe the
        mutation, and the shard is skipped without firing any invalidation.

        Otherwise the applier refreshes halo features, swaps the edge set in
        one :meth:`HeteroGraph.replace_edges` call and reports the *global*
        ``changed_sources``: the shard server's reverse-BFS then bumps
        ``frontier ∩ owned`` exactly as a whole-graph server does (every
        ``<= reach-1``-hop path from an owned node to a changed source runs
        inside the closure, so shard-local reachability agrees with global
        reachability on owned nodes).  One mutation, one event, one bump —
        the version counters stay aligned with the single-server timeline.
        """
        graph = self.global_graph
        closure_sources = k_hop_out(graph, spec.owned, self.reach - 1)
        halo = k_hop_out(graph, spec.owned, self.reach)
        src, dst, etypes = _shard_edge_arrays(graph, closure_sources)
        unchanged = (
            src.size == spec.graph.num_edges
            and np.array_equal(src, spec.graph._src)
            and np.array_equal(dst, spec.graph.indices)
            and np.array_equal(etypes, spec.graph.edge_type_of)
        )
        if unchanged:
            return None
        touches = _touches_halo_mask(graph, spec.owned, self.reach)
        changed_sources = np.asarray(changed_sources, dtype=np.int64)
        features = graph.features

        def apply() -> None:
            if features is not None:
                spec.graph.features[halo] = features[halo]
            spec.closure_sources = closure_sources
            spec.halo = halo
            spec.touches_halo = touches
            spec.graph.replace_edges(
                src, dst, etypes, changed_sources=changed_sources
            )

        return apply
