"""Scatter-gather routing over a fleet of shard engines behind transports.

:class:`ClusterRouter` is the cluster's front door: it owns the *global*
serving graph (the source of truth mutations land on first), the
:class:`~repro.cluster.planner.ClusterPlan` (ownership + halos + the
router-side mirror specs), and one
:class:`~repro.cluster.worker.ShardWorker` per shard — a protocol stub
over a pluggable :mod:`~repro.cluster.transport` (``inline`` /
``thread`` / ``mp``).  Its contract is **indistinguishability**:
``router.embed(nodes)`` returns bit-for-bit what one whole-graph
:class:`~repro.serve.server.InferenceServer` with the same seed would
return, in the caller's node order — sharding *and transport choice* are
deployment decisions, not semantics changes (``tests/test_cluster.py`` and
``tests/test_transport.py`` assert this exactly, boundary-crossing nodes
and post-mutation state included).

The request path is **async scatter-gather**: requests group by owner
shard, one serve envelope per shard is issued for the whole group (so
every shard computes concurrently on the thread and mp transports), and
the replies are gathered afterwards with a per-shard timeout, re-stitched
into request order.  Shard failures come back as error envelopes and are
raised at the gather as :class:`~repro.cluster.transport.ShardError` —
never as a hung router.

Mutations are **fan-out barriers**: ``add_nodes`` / ``add_edges`` land on
the global graph, the plan turns them into serializable commands (applied
to its own mirror specs for routing), and each affected shard replays the
identical command behind its transport — FIFO with its serve envelopes.
Unaffected shards are skipped entirely: no envelope, no event, caches
fully warm.

Telemetry crosses the boundary as data: :meth:`summary` merges per-shard
:class:`~repro.serve.telemetry.Telemetry` payloads (cluster percentiles
over the union of request records), and :meth:`render_prometheus` merges
every shard's serialized registry snapshot into one exposition with a
``shard`` label per series — the same output whether the registries live
in this process or in four others.
"""

from __future__ import annotations

import pickle
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.engine import ShardEngine
from repro.cluster.net import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_MISSES,
    DEFAULT_MAX_FRAME_BYTES,
    FleetSupervisor,
    LocalWorkerSpawner,
    MutationLog,
    ShardRegistry,
    SocketTransport,
    WorkerDown,
)
from repro.cluster.planner import ClusterPlan, ShardPlanner
from repro.cluster.transport import (
    InlineTransport,
    MpTransport,
    ThreadTransport,
    Transport,
    validate_transport,
)
from repro.cluster.worker import ShardWorker
from repro.graph import HeteroGraph
from repro.obs.dist import DistTracer, clock_handshake, make_trace_ctx
from repro.obs.metrics import MetricsRegistry, nearest_rank_percentile
from repro.obs.slo import AttributionRecord, SLOMonitor, SLOTarget, SlowRequestLog
from repro.obs.tracing import _NULL_SPAN as _NULL_CTX
from repro.serve.server import load_checkpoint_classifier, serving_reach_of

_MODE_ALIASES = {"sync": "inline", "thread": "thread"}


class ClusterRouter:
    """Shards one serving graph and routes requests by ownership.

    ``classifier_factory(shard_graph)`` must return an *independent*
    classifier bound to the given graph — one instance per shard, no shared
    mutable state.  The ``mp`` transport cannot ship live classifiers
    across the process boundary, so it requires checkpoint-driven
    construction: use :meth:`from_checkpoint`, or :meth:`from_classifier`
    (which round-trips through a temp checkpoint for any transport).
    ``mode`` is the pre-transport spelling and maps ``sync``→``inline``.
    """

    def __init__(
        self,
        classifier_factory: Optional[Callable[[HeteroGraph], object]],
        graph: HeteroGraph,
        num_shards: int,
        *,
        transport: Optional[str] = None,
        mode: Optional[str] = None,
        checkpoint: Optional[str] = None,
        max_batch_size: int = 16,
        max_wait: float = 0.002,
        cache_capacity: int = 1024,
        seed: int = 0,
        inbox_capacity: int = 256,
        partition_seed: int = 0,
        request_timeout: Optional[float] = 120.0,
        start_timeout: float = 120.0,
        prometheus_path: Optional[str] = None,
        prometheus_interval: float = 10.0,
        store_path: Optional[str] = None,
        dist_tracing: bool = False,
        slo_target: Optional[SLOTarget] = None,
        slow_log_capacity: int = 16,
        workers: Optional[Sequence[str]] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_misses: int = DEFAULT_HEARTBEAT_MISSES,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        mutation_log_capacity: int = 256,
    ) -> None:
        if transport is None:
            if mode is None:
                transport = "thread"
            elif mode in _MODE_ALIASES:
                transport = _MODE_ALIASES[mode]
            else:
                raise ValueError(
                    f"unknown mode {mode!r}; expected one of "
                    f"{tuple(sorted(_MODE_ALIASES))} (or pass transport=)"
                )
        elif mode is not None:
            raise ValueError("pass either transport= or the legacy mode=, not both")
        # Eager validation: an unknown transport fails here, with the full
        # registered menu, not deep inside a spawn path.
        validate_transport(transport)
        if transport in ("mp", "socket") and checkpoint is None:
            raise ValueError(
                f"the {transport} transport rebuilds each shard's server in "
                "a worker process and needs a checkpoint; construct the "
                "router via from_checkpoint()/from_classifier()"
            )
        if workers is not None and transport != "socket":
            raise ValueError(
                f"workers= (remote shard addresses) only applies to the "
                f"socket transport, not {transport!r}"
            )
        if classifier_factory is None and checkpoint is None:
            raise ValueError("need a classifier_factory or a checkpoint")
        self.graph = graph
        self.transport_kind = transport
        self.seed = int(seed)
        self.request_timeout = request_timeout
        self.registry = MetricsRegistry()  # router-scope series
        self._prometheus_path = prometheus_path
        self._prometheus_interval = float(prometheus_interval)
        self._prometheus_last_flush = float("-inf")
        # Probe the reach before partitioning: a classifier without a
        # declared sampling reach has no provably sufficient halo.
        if classifier_factory is not None:
            probe = classifier_factory(graph)
        else:
            probe = load_checkpoint_classifier(checkpoint)
        reach = serving_reach_of(probe)
        if not hasattr(probe, "embed_for_serving") or reach is None:
            raise ValueError(
                "sharded serving needs an identity-free classifier with a "
                "declared sampling reach (WidenConfig.serving_reach); got "
                f"{type(probe).__name__} with reach={reach!r}"
            )
        self.plan: ClusterPlan = ShardPlanner(
            graph, reach, num_shards, seed=partition_seed
        ).plan()
        # Materialized-aggregate tier: validate once against the probe
        # classifier (same parameters and seed every shard will use), then
        # slice per shard by ownership — owned nodes only, because a shard
        # serves only nodes it owns; its halo exists to make local
        # sampling exact, not to answer requests.
        self.store = None
        if store_path is not None:
            from repro.store import AggregateStore

            self.store = AggregateStore.open(store_path)
            reason = self.store.compatible_with(probe, int(seed))
            if reason is not None:
                raise ValueError(
                    f"store at {store_path!r} incompatible with this "
                    f"cluster: {reason}"
                )
        config = {
            "max_batch_size": int(max_batch_size),
            "max_wait": float(max_wait),
            "cache_capacity": int(cache_capacity),
            "seed": int(seed),
        }
        # Socket fleet plumbing: the worker registry (spawned loopback
        # processes or static remote addresses), the bounded mutation log
        # recovery replays from, and the supervisor owning both plus the
        # per-shard rebuild baselines.  All None on in-process transports —
        # every fleet check below is a single ``is not None``.
        self.fleet: Optional[FleetSupervisor] = None
        self.shard_registry: Optional[ShardRegistry] = None
        self.mutation_log: Optional[MutationLog] = None
        if transport == "socket":
            if workers is None:
                self.shard_registry = ShardRegistry(LocalWorkerSpawner())
            else:
                addresses = list(workers)
                if len(addresses) != self.plan.num_shards:
                    raise ValueError(
                        f"workers= names {len(addresses)} addresses for "
                        f"{self.plan.num_shards} shards"
                    )
                self.shard_registry = ShardRegistry.from_addresses(addresses)
            self.mutation_log = MutationLog(mutation_log_capacity)
            self.fleet = FleetSupervisor(
                self,
                self.shard_registry,
                self.mutation_log,
                checkpoint_bytes=Path(checkpoint).read_bytes(),
                shard_configs={},
                max_frame_bytes=max_frame_bytes,
                heartbeat_interval=heartbeat_interval,
                heartbeat_misses=heartbeat_misses,
                start_timeout=start_timeout,
            )
        self.workers: List[ShardWorker] = []
        for spec in self.plan.shards:
            shard_config = dict(config)
            if self.store is not None:
                shard_config["store"] = self.store.slice_payload(
                    spec.owned.tolist()
                )
            if transport == "socket":
                channel = self._make_socket_transport(spec, shard_config)
            else:
                channel = self._make_transport(
                    transport,
                    spec.shard_id,
                    spec.to_payload(),
                    shard_config,
                    checkpoint=checkpoint,
                    classifier_factory=classifier_factory,
                    inbox_capacity=inbox_capacity,
                    start_timeout=start_timeout,
                )
            self.workers.append(ShardWorker(spec, channel).start())
        # Gather readiness after *all* spawns are launched, so a fleet of
        # mp workers loads its checkpoints concurrently.  Once this returns
        # the checkpoint file is no longer needed (from_classifier relies
        # on that to delete its temp dir).
        for worker in self.workers:
            worker.wait_ready(start_timeout)
        if self.fleet is not None:
            for spec in self.plan.shards:
                self.registry.gauge(
                    "fleet_worker_connected", shard=str(spec.shard_id)
                ).set(1)
        self._closed = False
        # Request-lifecycle observability, both off by default — the guard
        # in _scatter_gather is a pair of ``is None`` checks, so the
        # disabled path stays the hot path.
        self.dist: Optional[DistTracer] = None
        self.slo_monitor: Optional[SLOMonitor] = None
        self.slow_log: Optional[SlowRequestLog] = None
        self.attributions: List[AttributionRecord] = []
        self._slow_log_capacity = int(slow_log_capacity)
        if dist_tracing:
            self.enable_dist_tracing()
        if slo_target is not None:
            self.enable_slo(slo_target)

    @staticmethod
    def _make_transport(
        kind: str,
        shard_id: int,
        spec_payload: Dict[str, object],
        config: Dict[str, object],
        *,
        checkpoint: Optional[str],
        classifier_factory,
        inbox_capacity: int,
        start_timeout: float,
    ) -> Transport:
        if kind == "mp":
            engine_args = pickle.dumps(
                {
                    "spec_payload": spec_payload,
                    "checkpoint": str(checkpoint),
                    "config": config,
                }
            )
            return MpTransport(
                shard_id,
                engine_args,
                inbox_capacity=inbox_capacity,
                start_timeout=start_timeout,
            )
        checkpoint_str = None if checkpoint is None else str(checkpoint)

        def engine_factory() -> ShardEngine:
            return ShardEngine.build(
                spec_payload,
                config=config,
                checkpoint=checkpoint_str,
                classifier_factory=classifier_factory,
            )

        if kind == "thread":
            return ThreadTransport(
                shard_id, engine_factory, inbox_capacity=inbox_capacity
            )
        return InlineTransport(shard_id, engine_factory)

    def _make_socket_transport(self, spec, shard_config) -> SocketTransport:
        """One TCP channel to this shard's worker, wired to the supervisor.

        Records the shard's rebuild baseline (the exact payload the worker
        spawns from, trivial serving state, current global version) and its
        config so a later :meth:`FleetSupervisor.recover` can reproduce the
        engine bit for bit.  The engine arguments ship checkpoint *bytes* —
        the worker machine needs no shared filesystem.
        """
        fleet = self.fleet
        shard_id = spec.shard_id
        fleet.shard_configs[shard_id] = shard_config
        payload = spec.to_payload()
        fleet.set_baseline(shard_id, payload, None, self.graph.version)
        if self.shard_registry.spawner is not None:
            handle = self.shard_registry.spawn(shard_id)
        else:
            handle = self.shard_registry.handle(shard_id)
        return SocketTransport(
            shard_id,
            handle.address,
            {
                "spec_payload": payload,
                "checkpoint": None,
                "checkpoint_bytes": fleet.checkpoint_bytes,
                "config": shard_config,
                "serving_state": None,
            },
            max_frame_bytes=fleet.max_frame_bytes,
            heartbeat_interval=fleet.heartbeat_interval,
            heartbeat_misses=fleet.heartbeat_misses,
            **fleet.transport_callbacks(),
        )

    def _recover_worker(self, exc: WorkerDown) -> None:
        """React to a gather-time :class:`WorkerDown`: count it, recover.

        ``shard_errors_total{kind="transport"}`` puts wire failures on the
        same dashboard as engine error replies; the supervisor then
        respawns + catches the worker up (or re-raises when this router
        has no fleet to recover with).
        """
        shard = exc.shard_id
        self.registry.counter(
            "shard_errors_total", kind="transport", shard=str(shard)
        ).inc()
        if self.fleet is None:
            raise exc
        self.fleet.recover(shard, reason=exc.reason)

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls, path, graph: HeteroGraph, num_shards: int, **kwargs
    ) -> "ClusterRouter":
        """One server per shard, each rebuilt from the same checkpoint.

        This is the only construction path the ``mp`` transport supports:
        the checkpoint is what crosses the process boundary.
        """
        return cls(None, graph, num_shards, checkpoint=str(path), **kwargs)

    @classmethod
    def from_classifier(
        cls, classifier, graph: HeteroGraph, num_shards: int, **kwargs
    ) -> "ClusterRouter":
        """Clone a fitted classifier per shard via a checkpoint round-trip.

        Saving once and loading per shard is the clean way to get fully
        independent instances (parameters copied, no shared trainer state)
        without deep-copying live graph references — and it is exactly the
        spawn path mp workers need.  The temp checkpoint is deleted as soon
        as every shard has confirmed loading it.
        """
        if not hasattr(classifier, "save"):
            raise ValueError(
                f"{type(classifier).__name__} has no save(); shard it via "
                "from_checkpoint with an explicit checkpoint instead"
            )
        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
            checkpoint = Path(tmp) / "classifier.npz"
            classifier.save(checkpoint)
            return cls.from_checkpoint(checkpoint, graph, num_shards, **kwargs)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def embed(self, nodes, now: Optional[float] = None) -> np.ndarray:
        """Embeddings for ``nodes`` in the given order (scatter-gather)."""
        return self._scatter_gather(nodes, "embed", now)

    def classify(self, nodes, now: Optional[float] = None) -> np.ndarray:
        """Class predictions for ``nodes`` in the given order."""
        return self._scatter_gather(nodes, "classify", now)

    def _scatter_gather(self, nodes, kind: str, now: Optional[float]) -> np.ndarray:
        self._check_open()
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        # Observability guard: two attribute reads and two None checks on
        # the disabled path — no timestamps, no allocations, no records.
        if self.dist is not None or self.slo_monitor is not None:
            return self._scatter_gather_observed(nodes, kind, now)
        groups: Dict[int, List[int]] = {}
        for position, node in enumerate(nodes):
            shard = self.plan.owner(int(node))
            self._count_routed(shard, int(node))
            groups.setdefault(shard, []).append(position)
        self._maybe_flush_prometheus()
        # Scatter: one serve envelope per shard for its whole group, all
        # issued before any gather — shards overlap on concurrent
        # transports.  Gather: per-shard timeout, order-preserving stitch.
        pending: List[Tuple[List[int], object]] = []
        for shard, positions in groups.items():
            reply = self.workers[shard].submit_serve(
                nodes[positions], kind, now=now
            )
            pending.append((positions, reply))
        results: List[Optional[object]] = [None] * nodes.size
        for positions, reply in pending:
            try:
                values = _unwrap_serve(reply, self.request_timeout)
            except WorkerDown as exc:
                # Serve legs are idempotent: recover the shard (respawn +
                # mutation-log catch-up), then re-issue this exact group.
                self._recover_worker(exc)
                retry = self.workers[reply.shard_id].submit_serve(
                    nodes[positions], kind, now=now
                )
                values = _unwrap_serve(retry, self.request_timeout)
            for position, value in zip(positions, values):
                results[position] = value
        if kind == "embed":
            return np.stack(results)
        return np.asarray(results)

    def _scatter_gather_observed(
        self, nodes: np.ndarray, kind: str, now: Optional[float]
    ) -> np.ndarray:
        """The traced/monitored twin of :meth:`_scatter_gather`.

        Same scatter, same gather, same stitch — plus: a ``trace_ctx`` on
        every envelope (the engines root private span buffers and ship
        them back on replies), router-side spans around scatter and each
        shard's gather, and one :class:`AttributionRecord` per request —
        queue-wait vs compute on the critical path (max across shards, a
        scatter is as slow as its slowest leg) and per-rung node counts
        that sum to the node count.  Failures are attributed too
        (``ok=False`` burns SLO budget), then re-raised unchanged.
        """
        dist = self.dist
        slo = self.slo_monitor
        trace_id = dist.new_trace_id() if dist is not None else f"u{id(nodes):x}"
        start = time.perf_counter()
        root = dist.tracer.span(
            "router.serve", trace_id=trace_id, nodes=int(nodes.size), kind=kind
        ) if dist is not None else None
        error: Optional[BaseException] = None
        rungs: Dict[str, int] = {}
        queue_wait = 0.0
        compute = 0.0
        groups: Dict[int, List[int]] = {}
        results: List[Optional[object]] = [None] * nodes.size
        try:
            if root is not None:
                root.__enter__()
            for position, node in enumerate(nodes):
                shard = self.plan.owner(int(node))
                self._count_routed(shard, int(node))
                groups.setdefault(shard, []).append(position)
            self._maybe_flush_prometheus()
            pending: List[Tuple[int, List[int], object]] = []
            for shard, positions in groups.items():
                ctx = make_trace_ctx(trace_id) if dist is not None else None
                span = (
                    dist.tracer.span(f"router.scatter.shard{shard}")
                    if dist is not None
                    else _NULL_CTX
                )
                with span:
                    reply = self.workers[shard].submit_serve(
                        nodes[positions], kind, now=now, trace_ctx=ctx
                    )
                pending.append((shard, positions, reply))
            for shard, positions, reply in pending:
                span = (
                    dist.tracer.span(f"router.gather.shard{shard}")
                    if dist is not None
                    else _NULL_CTX
                )
                with span:
                    try:
                        items = self._gather_serve(reply, dist)
                    except WorkerDown as down:
                        self._recover_worker(down)
                        ctx = make_trace_ctx(trace_id) if dist is not None else None
                        retry = self.workers[shard].submit_serve(
                            nodes[positions], kind, now=now, trace_ctx=ctx
                        )
                        items = self._gather_serve(retry, dist)
                shard_queue = 0.0
                shard_compute = 0.0
                for position, item in zip(positions, items):
                    results[position] = item["value"]
                    rung = item.get("rung", "recompute")
                    rungs[rung] = rungs.get(rung, 0) + 1
                    shard_queue = max(shard_queue, item.get("queue_wait", 0.0))
                    shard_compute = max(shard_compute, item.get("compute", 0.0))
                queue_wait = max(queue_wait, shard_queue)
                compute = max(compute, shard_compute)
        except BaseException as exc:
            error = exc
            raise
        finally:
            if root is not None:
                root.__exit__(None, None, None)
            latency = time.perf_counter() - start
            record = AttributionRecord(
                trace_id=trace_id,
                nodes=int(nodes.size),
                shards=len(groups) if groups else 0,
                latency=latency,
                queue_wait=queue_wait,
                compute=compute,
                rungs=rungs,
                ok=error is None,
                error=None if error is None else type(error).__name__,
            )
            self.attributions.append(record)
            if slo is not None:
                slo.observe(latency, ok=error is None)
            if self.slow_log is not None:
                self.slow_log.observe(record)
        if kind == "embed":
            return np.stack(results)
        return np.asarray(results)

    def _gather_serve(self, reply, dist: Optional[DistTracer]) -> List[dict]:
        """Gather one serve reply, harvesting its piggybacked span buffer.

        Uses ``reply.wait()`` (not ``result()``) so the shard's trace rides
        error replies too — a raising engine's spans reach the stitched
        trace *before* the :class:`ShardError` propagates.
        """
        from repro.cluster.transport import ShardError

        raw = reply.wait(self.request_timeout)
        if dist is not None and raw.trace is not None:
            dist.add_reply_trace(raw.trace)
            self.registry.counter("trace_spans_total").inc(
                len(raw.trace.get("spans", []))
            )
        if not raw.ok:
            error = raw.error or {}
            if error.get("type") == "WorkerDown":
                raise WorkerDown.from_error(reply.shard_id, error)
            raise ShardError(reply.shard_id, error)
        items = []
        for item in raw.payload["items"]:
            if not item["ok"]:
                raise ShardError(reply.shard_id, item["error"])
            items.append(item)
        return items

    def _count_routed(self, shard: int, node: int) -> None:
        worker = self.workers[shard]
        worker.requests_routed += 1
        self.registry.counter(
            "cluster_requests_total", shard=str(shard)
        ).inc()
        if worker.spec.touches_halo[node]:
            worker.halo_requests += 1
            self.registry.counter(
                "cluster_halo_requests_total", shard=str(shard)
            ).inc()

    # ------------------------------------------------------------------
    # Distributed tracing + SLO monitoring (repro.obs.dist / .slo)
    # ------------------------------------------------------------------

    def enable_dist_tracing(self, *, clock_samples: int = 5) -> DistTracer:
        """Turn on cross-shard tracing for subsequent requests.

        Runs the clock-alignment handshake against every shard first
        (min-RTT NTP-style probes over the ``clock`` envelope), so spans
        from ``mp`` workers — whose ``perf_counter`` epochs share nothing
        with ours — land correctly on the router timeline at stitch time.
        """
        self._check_open()
        if self.dist is None:
            self.dist = DistTracer()
        for worker in self.workers:
            clock = clock_handshake(
                worker.clock_probe,
                shard_id=worker.spec.shard_id,
                samples=clock_samples,
            )
            self.dist.register_clock(clock)
        return self.dist

    def enable_slo(
        self,
        target: Optional[SLOTarget] = None,
        *,
        slow_log_capacity: Optional[int] = None,
    ) -> SLOMonitor:
        """Attach a rolling-window SLO monitor + slow-request log."""
        self.slo_monitor = SLOMonitor(target)
        self.slow_log = SlowRequestLog(
            slow_log_capacity
            if slow_log_capacity is not None
            else self._slow_log_capacity
        )
        return self.slo_monitor

    def write_dist_trace(self, path) -> int:
        """Write the stitched Chrome trace; returns the event count."""
        if self.dist is None:
            raise RuntimeError("distributed tracing is not enabled")
        return self.dist.write_chrome_trace(path)

    def slo_report(self) -> Dict[str, object]:
        """The SLO monitor's windowed report plus the slow-request log."""
        if self.slo_monitor is None:
            raise RuntimeError("SLO monitoring is not enabled")
        report = self.slo_monitor.report()
        report["slow_requests"] = (
            self.slow_log.to_records() if self.slow_log is not None else []
        )
        if self.fleet is not None:
            # Fleet health in the same report as latency: WorkerDown
            # events, recovery breakdowns, mutation-log occupancy.
            report["fleet"] = self.fleet.summary()
        return report

    def attribution_records(self) -> List[Dict[str, object]]:
        """Every observed request's attribution, in request order."""
        return [record.to_record() for record in self.attributions]

    # ------------------------------------------------------------------
    # Streaming mutation fan-out
    # ------------------------------------------------------------------

    def add_nodes(
        self,
        type_name: str,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Streaming node arrival, propagated to every shard (barrier).

        All shards append the same global ids (the id space must stay
        aligned); the owner — chosen deterministically as the least-loaded
        shard — receives the real features, everyone else zeros until an
        edge pulls the node into their halo.
        """
        self._check_open()
        new_ids = self.graph.add_nodes(
            type_name, features=features, labels=labels, count=count
        )
        if features is not None:
            features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if self.fleet is not None:
            self.fleet.before_mutation()
        owner = self.plan.place_new_nodes(new_ids.size)
        commands = self.plan.add_nodes_commands(
            owner, new_ids, type_name, features, labels, new_ids.size
        )
        jobs = list(enumerate(commands))
        if self.fleet is not None:
            self.fleet.record_mutation("add_nodes", dict(jobs))
        self._fanout_mutations(jobs, kind="add_nodes")
        return new_ids

    def add_edges(self, edge_type: str, src, dst, symmetric: bool = True) -> None:
        """Streaming edge arrival, propagated to *affected* shards only.

        The edges land on the global graph first; the plan diffs each
        shard's materialized edge set against it, and shards whose closure
        did not move are skipped outright — no envelope, no event, caches
        fully warm.  Affected shards replay one serializable refresh
        command carrying the global changed-sources, so their servers
        invalidate exactly the frontier a whole-graph server would.
        """
        self._check_open()
        self.graph.add_edges(edge_type, src, dst, symmetric=symmetric)
        event = self.graph.last_mutation
        changed_sources = (
            event.sources if event is not None else np.empty(0, np.int64)
        )
        if self.fleet is not None:
            self.fleet.before_mutation()
        jobs = []
        for spec in self.plan.shards:
            command = self.plan.refresh_command(spec, changed_sources)
            if command is not None:
                jobs.append((spec.shard_id, command))
        if self.fleet is not None:
            self.fleet.record_mutation("add_edges", dict(jobs))
        self._fanout_mutations(jobs, kind="add_edges")

    def _fanout_mutations(self, jobs, *, kind: str) -> None:
        """Ship per-shard commands, then gather every barrier ack.

        A worker that dies at its barrier is recovered instead of retried:
        the command was logged *before* fan-out, so the supervisor's
        catch-up replay applies it exactly once — re-sending here would
        double-apply.
        """
        pending = [
            (shard, self.workers[shard].mutate(command)) for shard, command in jobs
        ]
        for shard, reply in pending:
            try:
                reply.result(self.request_timeout)
            except WorkerDown as exc:
                self._recover_worker(exc)
            self.registry.counter(
                "cluster_mutations_total", kind=kind, shard=str(shard)
            ).inc()

    # ------------------------------------------------------------------
    # Deterministic trace replay (benchmarks)
    # ------------------------------------------------------------------

    def replay(self, trace: Sequence, *, overlap: bool = True) -> Dict[str, object]:
        """Replay a logical-clock trace through the cluster.

        Events route to their owner shard with the trace's logical arrival
        times (the same convention as :func:`repro.serve.loadgen.replay`),
        each shard processes its slice *atomically inside one replay
        envelope* — batch composition is driven by trace times alone, so
        the replay is deterministic on every transport, while the shards
        themselves still run concurrently on ``thread`` and ``mp``.  The
        cluster summary uses the union of per-shard records — throughput
        over the cluster-wide logical span, so shard parallelism shows up
        as span compression, not wishful addition.

        ``overlap=False`` gathers each shard's replay before dispatching
        the next.  Batch composition and results are identical either way
        (the logical clock decides those); what changes is measurement
        hygiene: on a machine with fewer cores than shards, overlapped
        engines time-slice the CPU and each one's *measured* compute time
        absorbs its neighbours' preemption, corrupting the very busy-time
        the logical span is built from.  Benchmarks that report span
        compression should replay without overlap.
        """
        self._check_open()
        self.reset_telemetry()
        nodes_by_shard: Dict[int, List[int]] = {}
        times_by_shard: Dict[int, List[float]] = {}
        for event in trace:
            node = int(event.node)
            shard = self.plan.owner(node)
            self._count_routed(shard, node)
            nodes_by_shard.setdefault(shard, []).append(node)
            times_by_shard.setdefault(shard, []).append(float(event.time))
        end = float(trace[-1].time) if len(trace) else None

        def _dispatch(shard: int):
            return self.workers[shard].replay(
                np.asarray(nodes_by_shard[shard], dtype=np.int64),
                np.asarray(times_by_shard[shard], dtype=np.float64),
                end,
            )

        if overlap:
            pending = [_dispatch(shard) for shard in nodes_by_shard]
            for reply in pending:
                reply.result(self.request_timeout)
        else:
            for shard in nodes_by_shard:
                _dispatch(shard).result(self.request_timeout)
        return self.summary()

    def reset_telemetry(self) -> None:
        """Clear per-shard reductions and clocks (between replay passes)."""
        pending = [worker.reset() for worker in self.workers]
        for reply in pending:
            reply.result(self.request_timeout)

    # ------------------------------------------------------------------
    # Telemetry aggregation
    # ------------------------------------------------------------------

    def _pull_telemetry(self) -> List[dict]:
        pending = [worker.pull_telemetry() for worker in self.workers]
        return [reply.result(self.request_timeout) for reply in pending]

    def summary(self) -> Dict[str, object]:
        """Cluster-level reductions plus one summary block per shard."""
        payloads = self._pull_telemetry()
        latencies: List[float] = []
        arrivals: List[float] = []
        completions: List[float] = []
        for payload in payloads:
            requests = payload["telemetry"]["requests"]
            arrival = np.asarray(requests["arrival"], dtype=np.float64)
            completion = np.asarray(requests["completion"], dtype=np.float64)
            latencies.extend((completion - arrival).tolist())
            if arrival.size:
                arrivals.append(float(arrival.min()))
                completions.append(float(completion.max()))
        count = len(latencies)
        span = (max(completions) - min(arrivals)) if arrivals else 0.0
        return {
            "num_shards": self.plan.num_shards,
            "transport": self.transport_kind,
            "requests": count,
            "throughput_rps": (
                count / span if span > 0 else float("inf") if count else 0.0
            ),
            "latency_p50_s": nearest_rank_percentile(latencies, 50),
            "latency_p95_s": nearest_rank_percentile(latencies, 95),
            "latency_p99_s": nearest_rank_percentile(latencies, 99),
            "halo_requests": sum(w.halo_requests for w in self.workers),
            "edge_cut": self.plan.partition_edge_cut,
            "replication_factor": self.plan.replication_factor(),
            "shards": [
                worker.summary(payload)
                for worker, payload in zip(self.workers, payloads)
            ],
        }

    def merged_registry(self) -> MetricsRegistry:
        """Every shard's registry snapshot + router series, shard-labeled.

        Registries cross the shard boundary as serialized payloads
        (:meth:`MetricsRegistry.to_payload`), so the merge is identical
        whether the shards share this process or run in their own.
        """
        merged = MetricsRegistry()
        if self.fleet is not None:
            up = sum(
                0 if getattr(worker.transport, "is_down", False) else 1
                for worker in self.workers
            )
            self.registry.gauge("fleet_workers_connected").set(up)
        merged.merge_payload(self.registry.to_payload())
        pending = [
            (worker.spec.shard_id, worker.pull_metrics())
            for worker in self.workers
        ]
        for shard_id, reply in pending:
            try:
                payload = reply.result(self.request_timeout)
            except WorkerDown:
                # A down shard has no registry to pull; the fleet gauges
                # above already say so.  Scraping must not hang on it.
                continue
            merged.merge_payload(
                payload["registry"], extra_labels={"shard": str(shard_id)}
            )
        if self.slo_monitor is not None:
            report = self.slo_monitor.report()
            merged.gauge("slo_window_requests").set(report["window_count"])
            merged.gauge("slo_error_budget_remaining").set(
                report["error_budget_remaining"]
            )
            merged.gauge("slo_burn_rate").set(report["burn_rate"])
            for q in ("p50", "p95", "p99"):
                merged.gauge("slo_latency_seconds", quantile=q).set(
                    report[f"{q}_s"]
                )
        return merged

    def render_prometheus(self) -> str:
        """One Prometheus exposition for the whole cluster."""
        return self.merged_registry().render_prometheus()

    def flush_prometheus(self) -> Optional[int]:
        """Write the merged exposition now; None when no path is set."""
        if self._prometheus_path is None:
            return None
        return self.merged_registry().write_prometheus(self._prometheus_path)

    def _maybe_flush_prometheus(self) -> None:
        if self._prometheus_path is None:
            return
        now = time.monotonic()
        if now - self._prometheus_last_flush < self._prometheus_interval:
            return
        self._prometheus_last_flush = now
        self.flush_prometheus()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every transport (drains outstanding envelopes first)."""
        if self._closed:
            return
        for worker in self.workers:
            worker.stop()
        if self.shard_registry is not None:
            self.shard_registry.close()
        self._closed = True

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("cluster router is closed")


def _unwrap_serve(reply, timeout: Optional[float]) -> List[object]:
    """Gather one serve reply; re-raise the first per-item error."""
    from repro.cluster.transport import ShardError

    payload = reply.result(timeout)
    values = []
    for item in payload["items"]:
        if not item["ok"]:
            raise ShardError(reply.shard_id, item["error"])
        values.append(item["value"])
    return values
