"""Scatter-gather routing over a fleet of shard workers.

:class:`ClusterRouter` is the cluster's front door: it owns the *global*
serving graph (the source of truth mutations land on first), the
:class:`~repro.cluster.planner.ClusterPlan` (ownership + halos), and one
:class:`~repro.cluster.worker.ShardWorker` per shard.  Its contract is
**indistinguishability**: ``router.embed(nodes)`` returns bit-for-bit what
one whole-graph :class:`~repro.serve.server.InferenceServer` with the same
seed would return, in the caller's node order — sharding is a deployment
decision, not a semantics change (``tests/test_cluster.py`` asserts this
exactly, boundary-crossing nodes included).

Request routing is ownership-based scatter-gather: each node goes to its
owner shard (whose halo makes the answer exact), responses are re-stitched
into request order.  Boundary-crossing requests — owned nodes whose
``reach``-hop neighborhood leaves the shard — are counted per shard via the
plan's precomputed masks (``cluster_halo_requests_total``).

Mutations are **fan-out barriers**: ``add_nodes`` / ``add_edges`` land on
the global graph, the plan computes which shards are affected and how, and
the appliers run inside each affected worker (FIFO with its requests).
Unaffected shards are skipped entirely — their servers never see an event,
their caches keep every entry — which is the scaling point of fine-grained
invalidation under sharding.

Telemetry is aggregated two ways: :meth:`summary` merges per-shard
:class:`~repro.serve.telemetry.Telemetry` reductions (cluster percentiles
are computed over the union of request records), and
:meth:`render_prometheus` merges every shard's private registry into one
exposition with a ``shard`` label per series.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.planner import ClusterPlan, ShardPlanner
from repro.cluster.worker import ShardWorker
from repro.graph import HeteroGraph
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank_percentile,
)
from repro.serve.server import InferenceServer, serving_reach_of


class ClusterRouter:
    """Shards one serving graph and routes requests by ownership.

    ``classifier_factory(shard_graph)`` must return an *independent*
    classifier bound to the given graph — one instance per shard, no shared
    mutable state (thread mode runs them concurrently).  Use
    :meth:`from_checkpoint` (one load per shard) or :meth:`from_classifier`
    (checkpoint round-trip through a temp file) instead of calling the
    constructor directly.
    """

    def __init__(
        self,
        classifier_factory: Callable[[HeteroGraph], object],
        graph: HeteroGraph,
        num_shards: int,
        *,
        mode: str = "thread",
        max_batch_size: int = 16,
        max_wait: float = 0.002,
        cache_capacity: int = 1024,
        seed: int = 0,
        inbox_capacity: int = 256,
        partition_seed: int = 0,
        prometheus_path: Optional[str] = None,
        prometheus_interval: float = 10.0,
    ) -> None:
        if mode not in ("thread", "sync"):
            raise ValueError(f"unknown cluster mode {mode!r}")
        self.graph = graph
        self.mode = mode
        self.seed = int(seed)
        self.registry = MetricsRegistry()  # router-scope series
        self._prometheus_path = prometheus_path
        self._prometheus_interval = float(prometheus_interval)
        self._prometheus_last_flush = float("-inf")
        # Probe the reach before partitioning: a classifier without a
        # declared sampling reach has no provably sufficient halo.
        probe = classifier_factory(graph)
        reach = serving_reach_of(probe)
        if not hasattr(probe, "embed_for_serving") or reach is None:
            raise ValueError(
                "sharded serving needs an identity-free classifier with a "
                "declared sampling reach (WidenConfig.serving_reach); got "
                f"{type(probe).__name__} with reach={reach!r}"
            )
        self.plan: ClusterPlan = ShardPlanner(
            graph, reach, num_shards, seed=partition_seed
        ).plan()
        self.workers: List[ShardWorker] = []
        for spec in self.plan.shards:
            server = InferenceServer(
                classifier_factory(spec.graph),
                spec.graph,
                max_batch_size=max_batch_size,
                max_wait=max_wait,
                cache_capacity=cache_capacity,
                seed=seed,
                registry=MetricsRegistry(),  # private per shard; merged on render
            )
            self.workers.append(
                ShardWorker(
                    spec, server, mode=mode, inbox_capacity=inbox_capacity
                ).start()
            )
        self._closed = False

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls, path, graph: HeteroGraph, num_shards: int, **kwargs
    ) -> "ClusterRouter":
        """One classifier per shard, each loaded from the same checkpoint."""
        from repro.core.classifier import WidenClassifier

        return cls(
            lambda shard_graph: WidenClassifier.load(path, graph=shard_graph),
            graph,
            num_shards,
            **kwargs,
        )

    @classmethod
    def from_classifier(
        cls, classifier, graph: HeteroGraph, num_shards: int, **kwargs
    ) -> "ClusterRouter":
        """Clone a fitted classifier per shard via a checkpoint round-trip.

        Saving once and loading per shard is the clean way to get fully
        independent instances (parameters copied, no shared trainer state)
        without deep-copying live graph references.
        """
        if not hasattr(classifier, "save"):
            raise ValueError(
                f"{type(classifier).__name__} has no save(); shard it via "
                "from_checkpoint with an explicit checkpoint instead"
            )
        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
            checkpoint = Path(tmp) / "classifier.npz"
            classifier.save(checkpoint)
            return cls.from_checkpoint(checkpoint, graph, num_shards, **kwargs)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def embed(self, nodes, now: Optional[float] = None) -> np.ndarray:
        """Embeddings for ``nodes`` in the given order (scatter-gather)."""
        return self._scatter_gather(nodes, "embed", now)

    def classify(self, nodes, now: Optional[float] = None) -> np.ndarray:
        """Class predictions for ``nodes`` in the given order."""
        return self._scatter_gather(nodes, "classify", now)

    def _scatter_gather(self, nodes, kind: str, now: Optional[float]) -> np.ndarray:
        self._check_open()
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        groups: Dict[int, List[int]] = {}
        for position, node in enumerate(nodes):
            shard = self.plan.owner(int(node))
            self._count_routed(shard, int(node))
            groups.setdefault(shard, []).append(position)
        self._maybe_flush_prometheus()
        results: List[Optional[object]] = [None] * nodes.size
        if self.mode == "thread":
            # Fan out first so shards compute concurrently, gather after.
            futures = []
            for shard, positions in groups.items():
                worker = self.workers[shard]
                for position in positions:
                    futures.append(
                        (position, worker.request(int(nodes[position]), kind, now=now))
                    )
            for position, future in futures:
                results[position] = future.result()
        else:
            for shard, positions in groups.items():
                values = self.workers[shard].serve_batch(
                    nodes[positions], kind, now=now
                )
                for position, value in zip(positions, values):
                    results[position] = value
        if kind == "embed":
            return np.stack(results)
        return np.asarray(results)

    def _count_routed(self, shard: int, node: int) -> None:
        worker = self.workers[shard]
        worker.requests_routed += 1
        self.registry.counter(
            "cluster_requests_total", shard=str(shard)
        ).inc()
        if worker.spec.touches_halo[node]:
            worker.halo_requests += 1
            self.registry.counter(
                "cluster_halo_requests_total", shard=str(shard)
            ).inc()

    # ------------------------------------------------------------------
    # Streaming mutation fan-out
    # ------------------------------------------------------------------

    def add_nodes(
        self,
        type_name: str,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Streaming node arrival, propagated to every shard (barrier).

        All shards append the same global ids (the id space must stay
        aligned); the owner — chosen deterministically as the least-loaded
        shard — receives the real features, everyone else zeros until an
        edge pulls the node into their halo.
        """
        self._check_open()
        new_ids = self.graph.add_nodes(
            type_name, features=features, labels=labels, count=count
        )
        if features is not None:
            features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        owner = self.plan.place_new_nodes(new_ids.size)
        appliers = self.plan.add_nodes_callables(
            owner, new_ids, type_name, features, labels, new_ids.size
        )
        self._barrier(
            [(shard, fn) for shard, fn in enumerate(appliers)], kind="add_nodes"
        )
        return new_ids

    def add_edges(self, edge_type: str, src, dst, symmetric: bool = True) -> None:
        """Streaming edge arrival, propagated to *affected* shards only.

        The edges land on the global graph first; each shard's materialized
        edge set is then recomputed, and shards whose closure did not move
        are skipped outright — no event, no invalidation, caches fully warm.
        Affected shards apply the repair as one ``replace_edges`` barrier
        carrying the global changed-sources, so their servers invalidate
        exactly the frontier a whole-graph server would.
        """
        self._check_open()
        self.graph.add_edges(edge_type, src, dst, symmetric=symmetric)
        event = self.graph.last_mutation
        changed_sources = (
            event.sources if event is not None else np.empty(0, np.int64)
        )
        jobs = []
        for spec in self.plan.shards:
            applier = self.plan.refresh_shard(spec, changed_sources)
            if applier is not None:
                jobs.append((spec.shard_id, applier))
        self._barrier(jobs, kind="add_edges")

    def _barrier(self, jobs, *, kind: str) -> None:
        """Run per-shard appliers through their workers; wait for all."""
        futures = [
            (shard, self.workers[shard].run_task(fn)) for shard, fn in jobs
        ]
        for shard, future in futures:
            future.result()
            self.registry.counter(
                "cluster_mutations_total", kind=kind, shard=str(shard)
            ).inc()

    # ------------------------------------------------------------------
    # Deterministic trace replay (benchmarks)
    # ------------------------------------------------------------------

    def replay(self, trace: Sequence) -> Dict[str, object]:
        """Replay a logical-clock trace through the cluster; sync mode only.

        Events route to their owner shard with the trace's logical arrival
        times (the same convention as :func:`repro.serve.loadgen.replay`),
        every shard drains at end-of-stream, and the cluster summary uses
        the union of per-shard records — throughput over the cluster-wide
        logical span, so shard parallelism shows up as span compression,
        not wishful addition.
        """
        self._check_open()
        if self.mode != "sync":
            raise RuntimeError(
                "replay() needs mode='sync': logical-clock arrivals are "
                "deterministic only when the caller drives every shard "
                "itself (thread scheduling would perturb batch composition)"
            )
        self.reset_telemetry()
        pending: Dict[int, List[int]] = {}
        for event in trace:
            node = int(event.node)
            shard = self.plan.owner(node)
            self._count_routed(shard, node)
            server = self.workers[shard].server
            pending.setdefault(shard, []).append(
                server.submit(node, now=float(event.time))
            )
        end = float(trace[-1].time) if len(trace) else None
        for shard, ids in pending.items():
            server = self.workers[shard].server
            server.drain(end)
            for request_id in ids:
                server.result(request_id)
        return self.summary()

    def reset_telemetry(self) -> None:
        """Clear per-shard reductions and clocks (between replay passes)."""
        for worker in self.workers:
            worker.server.telemetry.reset()
            worker.server.reset_clock()
            worker.requests_routed = 0
            worker.halo_requests = 0

    # ------------------------------------------------------------------
    # Telemetry aggregation
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Cluster-level reductions plus one summary block per shard."""
        records = []
        for worker in self.workers:
            records.extend(worker.server.telemetry.requests)
        latencies = [record.latency for record in records]
        if records:
            span = max(r.completion for r in records) - min(
                r.arrival for r in records
            )
        else:
            span = 0.0
        return {
            "num_shards": self.plan.num_shards,
            "mode": self.mode,
            "requests": len(records),
            "throughput_rps": (
                len(records) / span if span > 0 else float("inf") if records else 0.0
            ),
            "latency_p50_s": nearest_rank_percentile(latencies, 50),
            "latency_p95_s": nearest_rank_percentile(latencies, 95),
            "latency_p99_s": nearest_rank_percentile(latencies, 99),
            "halo_requests": sum(w.halo_requests for w in self.workers),
            "edge_cut": self.plan.partition_edge_cut,
            "replication_factor": self.plan.replication_factor(),
            "shards": [worker.summary() for worker in self.workers],
        }

    def merged_registry(self) -> MetricsRegistry:
        """Every shard's private registry + router series, shard-labeled."""
        merged = MetricsRegistry()
        for instrument in self.registry.series():
            self._copy_instrument(merged, instrument, {})
        for worker in self.workers:
            extra = {"shard": str(worker.spec.shard_id)}
            for instrument in worker.server.telemetry.registry.series():
                self._copy_instrument(merged, instrument, extra)
        return merged

    @staticmethod
    def _copy_instrument(
        merged: MetricsRegistry, instrument, extra: Dict[str, str]
    ) -> None:
        labels = {**instrument.labels, **extra}
        if isinstance(instrument, Counter):
            merged.counter(instrument.name, **labels).inc(instrument.value)
        elif isinstance(instrument, Gauge):
            merged.gauge(instrument.name, **labels).set(instrument.value)
        elif isinstance(instrument, Histogram):
            merged.histogram(instrument.name, **labels).observe_many(
                instrument._values
            )

    def render_prometheus(self) -> str:
        """One Prometheus exposition for the whole cluster."""
        return self.merged_registry().render_prometheus()

    def flush_prometheus(self) -> Optional[int]:
        """Write the merged exposition now; None when no path is set."""
        if self._prometheus_path is None:
            return None
        return self.merged_registry().write_prometheus(self._prometheus_path)

    def _maybe_flush_prometheus(self) -> None:
        if self._prometheus_path is None:
            return
        now = time.monotonic()
        if now - self._prometheus_last_flush < self._prometheus_interval:
            return
        self._prometheus_last_flush = now
        self.flush_prometheus()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (drains inboxes) and detach the servers."""
        if self._closed:
            return
        for worker in self.workers:
            worker.stop()
        self._closed = True

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("cluster router is closed")
