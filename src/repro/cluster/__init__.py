"""Sharded, concurrent inference serving (``repro.cluster``).

Scales the single :class:`~repro.serve.server.InferenceServer` horizontally
while preserving its exact semantics:

- :mod:`~repro.cluster.planner` — partition the serving graph into owned
  sets (``repro.graph.partition``) and materialize, per shard, the owned
  subgraph plus the L-hop *halo* that makes owned answers bit-identical to
  a whole-graph server (L = the model's declared sampling reach).  Shard
  specs serialize compactly (:meth:`ShardSpec.to_payload`) and mutations
  propagate as serializable commands — nothing in the plan assumes shared
  memory.
- :mod:`~repro.cluster.transport` — the pluggable message boundary: typed
  :class:`Envelope`/:class:`Reply` pairs over ``inline`` (deterministic
  replay on the caller's thread, pickle round-trip included), ``thread``
  (bounded-inbox worker thread) or ``mp`` (one OS process per shard,
  rebuilt from checkpoint + shard payload on spawn).
- :mod:`~repro.cluster.engine` — the far side of the boundary: one rebuilt
  shard spec + one :class:`InferenceServer`, driven entirely by envelope
  dispatch.
- :mod:`~repro.cluster.worker` — the router's per-shard protocol stub
  (serve scatter legs, mutation barriers, telemetry pulls).
- :mod:`~repro.cluster.router` — ownership-based async scatter-gather with
  order-preserving merges, per-shard gather timeouts, mutation fan-out
  barriers that skip unaffected shards, and cluster-wide
  telemetry/Prometheus aggregation over serialized snapshots.

The contract throughout: sharding — and the transport it runs on — is a
deployment decision, not a semantics change. ``ClusterRouter.embed(nodes)``
equals a single server's output bit for bit, for any shard count, on every
transport.
"""

from repro.cluster.engine import ShardEngine
from repro.cluster.planner import (
    AddNodesCommand,
    ClusterPlan,
    RefreshCommand,
    ShardPlanner,
    ShardSpec,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.transport import (
    Envelope,
    InlineTransport,
    MpTransport,
    Reply,
    ShardCrashError,
    ShardError,
    ShardTimeoutError,
    ThreadTransport,
    Transport,
)
from repro.cluster.worker import ShardWorker

__all__ = [
    "AddNodesCommand",
    "ClusterPlan",
    "ClusterRouter",
    "Envelope",
    "InlineTransport",
    "MpTransport",
    "RefreshCommand",
    "Reply",
    "ShardCrashError",
    "ShardEngine",
    "ShardError",
    "ShardPlanner",
    "ShardSpec",
    "ShardTimeoutError",
    "ShardWorker",
    "ThreadTransport",
    "Transport",
]
