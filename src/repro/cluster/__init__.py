"""Sharded, concurrent inference serving (``repro.cluster``).

Scales the single :class:`~repro.serve.server.InferenceServer` horizontally
while preserving its exact semantics:

- :mod:`~repro.cluster.planner` — partition the serving graph into owned
  sets (``repro.graph.partition``) and materialize, per shard, the owned
  subgraph plus the L-hop *halo* that makes owned answers bit-identical to
  a whole-graph server (L = the model's declared sampling reach).
- :mod:`~repro.cluster.worker` — one :class:`InferenceServer` per shard
  behind a bounded FIFO inbox; single-writer ownership instead of locks.
- :mod:`~repro.cluster.router` — ownership-based scatter-gather with
  order-preserving merges, mutation fan-out barriers that skip unaffected
  shards, and cluster-wide telemetry/Prometheus aggregation.

The contract throughout: sharding is a deployment decision, not a
semantics change — ``ClusterRouter.embed(nodes)`` equals a single server's
output bit for bit, for any shard count.
"""

from repro.cluster.planner import ClusterPlan, ShardPlanner, ShardSpec
from repro.cluster.router import ClusterRouter
from repro.cluster.worker import ShardWorker

__all__ = [
    "ClusterPlan",
    "ClusterRouter",
    "ShardPlanner",
    "ShardSpec",
    "ShardWorker",
]
