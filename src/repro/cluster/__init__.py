"""Sharded, concurrent inference serving (``repro.cluster``).

Scales the single :class:`~repro.serve.server.InferenceServer` horizontally
while preserving its exact semantics:

- :mod:`~repro.cluster.planner` — partition the serving graph into owned
  sets (``repro.graph.partition``) and materialize, per shard, the owned
  subgraph plus the L-hop *halo* that makes owned answers bit-identical to
  a whole-graph server (L = the model's declared sampling reach).  Shard
  specs serialize compactly (:meth:`ShardSpec.to_payload`) and mutations
  propagate as serializable commands — nothing in the plan assumes shared
  memory.
- :mod:`~repro.cluster.transport` — the pluggable message boundary: typed
  :class:`Envelope`/:class:`Reply` pairs over ``inline`` (deterministic
  replay on the caller's thread, pickle round-trip included), ``thread``
  (bounded-inbox worker thread), ``mp`` (one OS process per shard,
  rebuilt from checkpoint + shard payload on spawn) or ``socket``
  (TCP workers, possibly on other hosts — see below).
- :mod:`~repro.cluster.net` — the ``socket`` lane: length-prefixed TCP
  framing for the same pickle protocol, a ``python -m repro shard-worker``
  server entrypoint, heartbeat liveness riding ``clock`` envelopes, and a
  :class:`FleetSupervisor` that turns a SIGKILL'd worker into a typed
  :class:`WorkerDown`, respawns it from checkpoint bytes + the serialized
  shard plan, and replays a bounded :class:`MutationLog` before
  readmitting it to scatter-gather.
- :mod:`~repro.cluster.engine` — the far side of the boundary: one rebuilt
  shard spec + one :class:`InferenceServer`, driven entirely by envelope
  dispatch.
- :mod:`~repro.cluster.worker` — the router's per-shard protocol stub
  (serve scatter legs, mutation barriers, telemetry pulls).
- :mod:`~repro.cluster.router` — ownership-based async scatter-gather with
  order-preserving merges, per-shard gather timeouts, mutation fan-out
  barriers that skip unaffected shards, and cluster-wide
  telemetry/Prometheus aggregation over serialized snapshots.

The contract throughout: sharding — and the transport it runs on — is a
deployment decision, not a semantics change. ``ClusterRouter.embed(nodes)``
equals a single server's output bit for bit, for any shard count, on every
transport.

:mod:`~repro.cluster.train` extends the same substrate to data-parallel
*training*: :class:`TrainEngine` answers the ``train_*`` envelope family
with a partition-local :class:`~repro.core.trainer.WidenTrainer` replica,
:class:`TrainWorker` is its coordinator stub speaking the
:class:`~repro.core.train_loop.TrainLoop` client protocol, and
:class:`DistributedTrainer` plans, spawns, reduces gradients and
checkpoints the fleet for elastic resume.
"""

from repro.cluster.engine import ShardEngine, build_engine_from_args
from repro.cluster.net import (
    FleetSupervisor,
    LocalWorkerSpawner,
    MutationLog,
    MutationLogHorizonError,
    RecoveryRecord,
    ShardRegistry,
    ShardWorkerServer,
    SocketTransport,
    WorkerDown,
    WorkerHandle,
)
from repro.cluster.planner import (
    AddNodesCommand,
    ClusterPlan,
    RefreshCommand,
    ShardPlanner,
    ShardSpec,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.train import DistributedTrainer, TrainEngine, TrainWorker
from repro.cluster.transport import (
    Envelope,
    InlineTransport,
    MpTransport,
    Reply,
    ShardCrashError,
    ShardError,
    ShardTimeoutError,
    ThreadTransport,
    Transport,
    registered_transports,
    validate_transport,
)
from repro.cluster.worker import ShardWorker

__all__ = [
    "AddNodesCommand",
    "ClusterPlan",
    "ClusterRouter",
    "DistributedTrainer",
    "Envelope",
    "FleetSupervisor",
    "InlineTransport",
    "LocalWorkerSpawner",
    "MpTransport",
    "MutationLog",
    "MutationLogHorizonError",
    "RecoveryRecord",
    "RefreshCommand",
    "Reply",
    "ShardCrashError",
    "ShardEngine",
    "ShardError",
    "ShardPlanner",
    "ShardRegistry",
    "ShardSpec",
    "ShardTimeoutError",
    "ShardWorker",
    "ShardWorkerServer",
    "SocketTransport",
    "ThreadTransport",
    "TrainEngine",
    "TrainWorker",
    "Transport",
    "WorkerDown",
    "WorkerHandle",
    "build_engine_from_args",
    "registered_transports",
    "validate_transport",
]
