"""The :class:`Dataset` bundle: graph + task definition + splits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph import HeteroGraph


@dataclass
class TransductiveSplit:
    """Node-id arrays for semi-supervised transductive learning."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        self.train = np.asarray(self.train, dtype=np.int64)
        self.val = np.asarray(self.val, dtype=np.int64)
        self.test = np.asarray(self.test, dtype=np.int64)
        overlap = (
            set(self.train.tolist()) & set(self.val.tolist())
            | set(self.train.tolist()) & set(self.test.tolist())
            | set(self.val.tolist()) & set(self.test.tolist())
        )
        if overlap:
            raise ValueError(f"split sets overlap on {len(overlap)} nodes")


@dataclass
class Dataset:
    """A named heterogeneous graph with a node-classification task."""

    name: str
    graph: HeteroGraph
    target_type: str
    split: TransductiveSplit

    @property
    def num_classes(self) -> int:
        return self.graph.num_classes

    def target_nodes(self) -> np.ndarray:
        return self.graph.nodes_of_type(self.target_type)

    def statistics(self) -> Dict[str, object]:
        """Table-1-shaped statistics including split sizes."""
        stats = self.graph.statistics()
        stats.update(
            {
                "name": self.name,
                "target_type": self.target_type,
                "train_nodes": int(self.split.train.size),
                "val_nodes": int(self.split.val.size),
                "test_nodes": int(self.split.test.size),
            }
        )
        return stats
