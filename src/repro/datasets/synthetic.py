"""Schema-driven synthetic heterogeneous graph generation.

A :class:`SchemaConfig` declares node types (one of which is *primary* — the
labeled classification target), edge types between them, feature style and
structural knobs.  :func:`generate_heterogeneous_graph` then builds a graph
where class information is recoverable through two channels, mirroring what
makes the real datasets learnable:

1. **Feature channel** — every class has a topic over a synthetic vocabulary;
   primary nodes draw bag-of-words (or dense word2vec-like) features from
   their class topic, and secondary nodes from the mixture of classes they
   attach to.
2. **Structure channel** — every secondary node has a latent class affinity;
   primary nodes connect to affinity-matching secondary nodes with
   probability ``homophily`` and uniformly otherwise.  Two primary nodes of
   the same class therefore share intermediate neighbors far more often than
   across classes, which is exactly the signal heterogeneous GNNs exploit.

Degree sequences are right-skewed (lognormal), matching the sparsity profile
the paper highlights (user-item graphs with average degree below 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph import GraphBuilder, HeteroGraph
from repro.utils.rng import SeedLike, new_rng


@dataclass
class EdgeSpec:
    """One edge type between two node types.

    ``mean_degree`` is the expected number of such edges per source-type
    node.  ``homophilous`` controls whether the class-affinity channel is
    used when wiring (it is for edges incident to the primary type).
    """

    name: str
    src_type: str
    dst_type: str
    mean_degree: float
    homophilous: bool = True
    homophily: Optional[float] = None
    """Per-edge-type homophily override; ``None`` inherits the schema-wide
    value.  Real heterogeneous graphs have *differentially* informative edge
    types (authorship is a strong class signal, subject tagging a weak one);
    this knob reproduces that, which is precisely what separates type-aware
    models from type-blind ones."""


@dataclass
class SchemaConfig:
    """Full recipe for a synthetic heterogeneous dataset."""

    name: str
    node_counts: Dict[str, int]
    primary_type: str
    num_classes: int
    edges: List[EdgeSpec]
    num_features: int = 64
    feature_style: str = "bow"  # "bow" | "dense"
    tokens_per_node: int = 40
    topic_sharpness: float = 8.0
    homophily: float = 0.8
    feature_noise: float = 0.3
    secondary_feature_signal: float = 1.0
    """How class-correlated *non-primary* node features are, in [0, 1].
    Real heterogeneous benchmarks give secondary types weak or meaningless
    raw features (conference nodes in DBLP carry no bag-of-words); lowering
    this reproduces that, making indiscriminate neighbor averaging costly."""
    degree_sigma: float = 0.6
    degree_style: str = "lognormal"  # "lognormal" | "powerlaw"
    pareto_alpha: float = 1.3
    """Tail exponent for ``degree_style="powerlaw"``: smaller is heavier.
    Power-law degree sequences put most nodes at degree 1-2 with a few hubs
    at the sampling cap — the skew regime where padded minibatch grids waste
    most of their slots and the CSR kernels earn their keep."""

    def __post_init__(self) -> None:
        if self.primary_type not in self.node_counts:
            raise ValueError(
                f"primary type {self.primary_type!r} missing from node_counts"
            )
        if not 0.0 <= self.homophily <= 1.0:
            raise ValueError(f"homophily must be in [0, 1], got {self.homophily}")
        if not 0.0 <= self.secondary_feature_signal <= 1.0:
            raise ValueError(
                "secondary_feature_signal must be in [0, 1], got "
                f"{self.secondary_feature_signal}"
            )
        if self.num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {self.num_classes}")
        if self.feature_style not in ("bow", "dense"):
            raise ValueError(f"unknown feature_style {self.feature_style!r}")
        if self.degree_style not in ("lognormal", "powerlaw"):
            raise ValueError(f"unknown degree_style {self.degree_style!r}")
        if self.pareto_alpha <= 0:
            raise ValueError(f"pareto_alpha must be > 0, got {self.pareto_alpha}")
        for spec in self.edges:
            for side in (spec.src_type, spec.dst_type):
                if side not in self.node_counts:
                    raise ValueError(f"edge {spec.name!r} references unknown type {side!r}")


def generate_heterogeneous_graph(
    config: SchemaConfig, seed: SeedLike = None
) -> Tuple[HeteroGraph, Dict[str, np.ndarray]]:
    """Generate a graph from ``config``.

    Returns ``(graph, id_ranges)`` where ``id_ranges[type_name]`` holds the
    global node ids of that type.
    """
    rng = new_rng(seed)
    builder = GraphBuilder()
    id_ranges: Dict[str, np.ndarray] = {}
    for type_name, count in config.node_counts.items():
        id_ranges[type_name] = builder.add_nodes(type_name, count)

    # Latent class affinity for every node.  Primary nodes: their label.
    # Secondary nodes: a uniformly drawn affinity that steers homophilous
    # wiring and feature generation.
    affinity = np.empty(builder.num_nodes, dtype=np.int64)
    labels = np.full(builder.num_nodes, -1, dtype=np.int64)
    primary_ids = id_ranges[config.primary_type]
    primary_classes = rng.integers(0, config.num_classes, size=primary_ids.size)
    labels[primary_ids] = primary_classes
    for type_name, ids in id_ranges.items():
        if type_name == config.primary_type:
            affinity[ids] = primary_classes
        else:
            affinity[ids] = rng.integers(0, config.num_classes, size=ids.size)

    for spec in config.edges:
        src_ids = id_ranges[spec.src_type]
        dst_ids = id_ranges[spec.dst_type]
        src, dst = _wire_edges(spec, src_ids, dst_ids, affinity, config, rng)
        builder.add_edges(spec.name, src, dst, symmetric=True)

    features = _make_features(config, id_ranges, affinity, rng)
    graph = builder.finalize(
        features=features, labels=labels, num_classes=config.num_classes
    )
    return graph, id_ranges


def _wire_edges(
    spec: EdgeSpec,
    src_ids: np.ndarray,
    dst_ids: np.ndarray,
    affinity: np.ndarray,
    config: SchemaConfig,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw edges for one edge type with skewed degrees and homophily."""
    # Right-skewed degree sequence with the requested mean: lognormal for
    # the paper-matching datasets, Pareto for the high-skew benchmark graphs
    # (most nodes at degree 1, rare hubs orders of magnitude above).
    if config.degree_style == "powerlaw":
        raw = 1.0 + rng.pareto(config.pareto_alpha, size=src_ids.size)
    else:
        raw = rng.lognormal(mean=0.0, sigma=config.degree_sigma, size=src_ids.size)
    degrees = np.maximum(1, np.round(raw * spec.mean_degree / raw.mean())).astype(int)

    # Bucket destination candidates by affinity class for homophilous wiring.
    buckets = [dst_ids[affinity[dst_ids] == c] for c in range(config.num_classes)]
    homophily = config.homophily if spec.homophily is None else spec.homophily
    src_list: List[np.ndarray] = []
    dst_list: List[np.ndarray] = []
    for node, degree in zip(src_ids, degrees):
        if spec.homophilous:
            same = buckets[affinity[node]]
            use_same = rng.random(degree) < homophily
            n_same = int(use_same.sum())
            picks = []
            if n_same and same.size:
                picks.append(same[rng.integers(same.size, size=n_same)])
            n_any = degree - (len(picks[0]) if picks else 0)
            if n_any:
                picks.append(dst_ids[rng.integers(dst_ids.size, size=n_any)])
            chosen = np.concatenate(picks)
        else:
            chosen = dst_ids[rng.integers(dst_ids.size, size=degree)]
        chosen = chosen[chosen != node]  # drop accidental self-loops (same-type edges)
        chosen = np.unique(chosen)
        src_list.append(np.full(chosen.size, node, dtype=np.int64))
        dst_list.append(chosen)
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    # Deduplicate the (src, dst) pairs so parallel edges do not accumulate.
    pair_key = src * (affinity.size + 1) + dst
    _, unique_index = np.unique(pair_key, return_index=True)
    return src[unique_index], dst[unique_index]


def _make_features(
    config: SchemaConfig,
    id_ranges: Dict[str, np.ndarray],
    affinity: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class-correlated features: bag-of-words counts or dense vectors."""
    num_nodes = affinity.size
    # One topic per class: a Dirichlet sharpened on a class-specific block of
    # the vocabulary, so topics overlap partially (classification is not
    # trivially separable from features alone).
    concentration = np.ones((config.num_classes, config.num_features))
    block = config.num_features // config.num_classes
    for c in range(config.num_classes):
        start = c * block
        concentration[c, start : start + block] += config.topic_sharpness
    topics = np.stack([rng.dirichlet(concentration[c]) for c in range(config.num_classes)])
    uniform = np.full(config.num_features, 1.0 / config.num_features)

    features = np.zeros((num_nodes, config.num_features))
    for type_name, ids in id_ranges.items():
        is_primary = type_name == config.primary_type
        signal = 1.0 if is_primary else config.secondary_feature_signal
        for node in ids:
            topic = signal * topics[affinity[node]] + (1.0 - signal) * uniform
            mixed = (1.0 - config.feature_noise) * topic + config.feature_noise * uniform
            if config.feature_style == "bow":
                counts = rng.multinomial(config.tokens_per_node, mixed)
                features[node] = counts
            else:
                # Dense word2vec-like: topic embedding + Gaussian noise.
                features[node] = mixed * config.num_features + rng.normal(
                    0.0, config.feature_noise * 3.0, size=config.num_features
                )
    if config.feature_style == "bow":
        # Row-normalize counts to frequencies (the common preprocessing).
        totals = features.sum(axis=1, keepdims=True)
        features = features / np.maximum(totals, 1.0)
    return features
