"""Concrete dataset recipes matching the paper's three benchmarks.

Each factory matches the real dataset's schema exactly (Table 1's node/edge
types, labeled node type, class count) at a single-CPU-friendly scale.  The
``scale`` parameter multiplies all node counts for the scalability
experiments (Fig. 5 samples *down* instead, via ``HeteroGraph.subgraph``).

| Paper dataset | Nodes (paper) | Nodes (here, scale=1) | Labeled type  |
|---------------|---------------|-----------------------|---------------|
| ACM           | 8,994         | ~1,080                | paper (3)     |
| DBLP          | 18,405        | ~1,530                | author (4)    |
| Yelp          | 2,179,470     | ~3,800                | business (3)  |
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.dataset import Dataset
from repro.datasets.splits import make_transductive_split
from repro.datasets.synthetic import EdgeSpec, SchemaConfig, generate_heterogeneous_graph
from repro.utils.rng import SeedLike, spawn_rngs


def make_acm(seed: SeedLike = 0, scale: float = 1.0) -> Dataset:
    """ACM-like graph: classify *papers* into 3 research areas.

    Schema (paper Section 4.1): paper/author/subject nodes; paper-author and
    paper-subject edges; bag-of-words features.
    """
    config = SchemaConfig(
        name="acm",
        node_counts={
            "paper": _scaled(600, scale),
            "author": _scaled(420, scale),
            "subject": _scaled(60, scale),
        },
        primary_type="paper",
        num_classes=3,
        edges=[
            # Authorship is a strong class signal; subject tags are broad and
            # noisy — mixing them indiscriminately (as type-blind models do)
            # dilutes the signal, mirroring real heterogeneous graphs.
            EdgeSpec("paper-author", "paper", "author", mean_degree=2.5, homophily=0.9),
            EdgeSpec("paper-subject", "paper", "subject", mean_degree=1.5, homophily=0.15),
        ],
        num_features=96,
        feature_style="bow",
        tokens_per_node=20,
        topic_sharpness=2.0,
        feature_noise=0.6,
        homophily=0.8,
    )
    return _build(config, train_per_class=40, val_per_class=20, seed=seed, scale=scale)


def make_dblp(seed: SeedLike = 0, scale: float = 1.0) -> Dataset:
    """DBLP-like graph: classify *authors* into 4 research areas.

    Schema: paper/author/conference/term nodes; paper-author, paper-conference
    and paper-term edges; bag-of-words features.
    """
    config = SchemaConfig(
        name="dblp",
        node_counts={
            "paper": _scaled(800, scale),
            "author": _scaled(480, scale),
            "conference": _scaled(24, scale),
            "term": _scaled(220, scale),
        },
        primary_type="author",
        num_classes=4,
        edges=[
            # Authors are the labeled type, so author-incident edges carry the
            # homophily channel.
            EdgeSpec("paper-author", "author", "paper", mean_degree=3.0, homophily=0.9),
            EdgeSpec("paper-conference", "paper", "conference", mean_degree=1.0, homophily=0.9),
            EdgeSpec("paper-term", "paper", "term", mean_degree=3.0, homophily=0.25),
        ],
        num_features=64,
        feature_style="bow",
        tokens_per_node=20,
        topic_sharpness=2.5,
        feature_noise=0.6,
        homophily=0.85,
    )
    return _build(config, train_per_class=40, val_per_class=20, seed=seed, scale=scale)


def make_yelp(seed: SeedLike = 0, scale: float = 1.0) -> Dataset:
    """Yelp-like graph: classify *businesses* into 3 service-quality tiers.

    Schema: user/business/category/attribute nodes; user-business, user-user,
    business-category and business-attribute edges; dense word2vec-like
    features (the paper averages pre-trained word embeddings of reviews).
    The graph is sparser and noisier than the academic graphs, mirroring the
    paper's observation that user-item graphs have average degree below 5.
    """
    config = SchemaConfig(
        name="yelp",
        node_counts={
            "business": _scaled(1200, scale),
            "user": _scaled(2400, scale),
            "category": _scaled(60, scale),
            "attribute": _scaled(120, scale),
        },
        primary_type="business",
        num_classes=3,
        edges=[
            EdgeSpec("user-business", "business", "user", mean_degree=3.0, homophily=0.75),
            EdgeSpec("user-user", "user", "user", mean_degree=1.5, homophilous=False),
            EdgeSpec("business-category", "business", "category", mean_degree=1.5, homophily=0.3),
            EdgeSpec("business-attribute", "business", "attribute", mean_degree=2.0, homophily=0.85),
        ],
        num_features=48,
        feature_style="dense",
        topic_sharpness=2.0,
        homophily=0.7,
        feature_noise=0.75,
    )
    return _build(config, train_per_class=100, val_per_class=50, seed=seed, scale=scale)


def make_skewed(seed: SeedLike = 0, scale: float = 1.0) -> Dataset:
    """Power-law user-item graph: the padding-tax stress case.

    Not a paper dataset — a benchmark companion for the CSR sparse kernels
    (``forward_mode="sparse"``).  Pareto degrees put most users at degree
    1-2 with rare hubs saturating the neighbor-sampling cap, so padded
    minibatch grids are mostly padding while the edge count stays small.
    """
    config = SchemaConfig(
        name="skewed",
        node_counts={
            "user": _scaled(600, scale),
            "item": _scaled(900, scale),
            "tag": _scaled(50, scale),
        },
        primary_type="user",
        num_classes=3,
        edges=[
            EdgeSpec("user-item", "user", "item", mean_degree=4.0, homophily=0.85),
            EdgeSpec("item-tag", "item", "tag", mean_degree=1.5, homophily=0.3),
        ],
        num_features=64,
        feature_style="dense",
        topic_sharpness=2.0,
        homophily=0.8,
        feature_noise=0.6,
        degree_style="powerlaw",
        pareto_alpha=1.05,
    )
    return _build(config, train_per_class=60, val_per_class=30, seed=seed, scale=scale)


DATASETS: Dict[str, Callable[..., Dataset]] = {
    "acm": make_acm,
    "dblp": make_dblp,
    "yelp": make_yelp,
    "skewed": make_skewed,
}


def make_dataset(name: str, seed: SeedLike = 0, scale: float = 1.0) -> Dataset:
    """Factory by name (``"acm"``, ``"dblp"``, ``"yelp"``)."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    return factory(seed=seed, scale=scale)


def _scaled(count: int, scale: float) -> int:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(2, int(round(count * scale)))


def _build(
    config: SchemaConfig,
    train_per_class: int,
    val_per_class: int,
    seed: SeedLike,
    scale: float = 1.0,
) -> Dataset:
    graph_rng, split_rng = spawn_rngs(seed, 2)
    graph, _ = generate_heterogeneous_graph(config, seed=graph_rng)
    # Split sizes follow the dataset scale so reduced-scale graphs keep the
    # paper's train/test proportions (with sane floors).
    split = make_transductive_split(
        graph,
        config.primary_type,
        train_per_class=max(5, int(round(train_per_class * scale))),
        val_per_class=max(3, int(round(val_per_class * scale))),
        rng=split_rng,
    )
    return Dataset(
        name=config.name, graph=graph, target_type=config.primary_type, split=split
    )
