"""Train/validation/test splits for the two evaluation protocols.

- :func:`make_transductive_split` mirrors Table 1: a small labeled training
  set, a validation set, and a large test set, all drawn from the primary
  node type with per-class stratification.
- :func:`make_inductive_split` mirrors Section 4.3's inductive protocol:
  20% of labeled nodes are *removed from the graph* during training and the
  model must embed them afterwards from their (restored) neighborhoods.
- :func:`label_fraction` subsamples the training set to 25/50/75/100%
  supervision strengths (Table 2's columns).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.datasets.dataset import Dataset, TransductiveSplit
from repro.graph import HeteroGraph
from repro.utils.rng import SeedLike, new_rng


@dataclass
class InductiveSplit:
    """The inductive protocol's artifacts.

    ``train_graph`` is the original graph with holdout nodes removed;
    ``train_mapping[new_id] == old_id`` maps its ids back; ``holdout`` are
    the original ids of the removed labeled nodes (the inductive test set);
    ``train_nodes`` are *train-graph-local* ids of labeled training nodes.
    """

    train_graph: HeteroGraph
    train_mapping: np.ndarray
    holdout: np.ndarray
    train_nodes: np.ndarray


def make_transductive_split(
    graph: HeteroGraph,
    target_type: str,
    train_per_class: int,
    val_per_class: int,
    rng: SeedLike = None,
) -> TransductiveSplit:
    """Stratified split of labeled target-type nodes."""
    rng = new_rng(rng)
    targets = graph.nodes_of_type(target_type)
    labeled = targets[graph.labels[targets] >= 0]
    train_parts, val_parts, test_parts = [], [], []
    for cls in range(graph.num_classes):
        members = labeled[graph.labels[labeled] == cls]
        members = members[rng.permutation(members.size)]
        need = train_per_class + val_per_class
        if members.size <= need:
            raise ValueError(
                f"class {cls} has only {members.size} labeled nodes; "
                f"need more than {need} for the requested split"
            )
        train_parts.append(members[:train_per_class])
        val_parts.append(members[train_per_class:need])
        test_parts.append(members[need:])
    return TransductiveSplit(
        train=np.concatenate(train_parts),
        val=np.concatenate(val_parts),
        test=np.concatenate(test_parts),
    )


def label_fraction(
    train_nodes: np.ndarray, fraction: float, rng: SeedLike = None
) -> np.ndarray:
    """Subsample the training set to ``fraction`` of its size (>= 1 node)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = new_rng(rng)
    train_nodes = np.asarray(train_nodes)
    keep = max(1, int(round(fraction * train_nodes.size)))
    return train_nodes[rng.permutation(train_nodes.size)[:keep]]


def make_inductive_split(
    dataset: Dataset,
    holdout_fraction: float = 0.2,
    rng: SeedLike = None,
) -> InductiveSplit:
    """Hold out ``holdout_fraction`` of labeled nodes, removing them from the
    training graph entirely (nodes *and* incident edges)."""
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    rng = new_rng(rng)
    graph = dataset.graph
    labeled = graph.labeled_nodes()
    count = max(1, int(round(holdout_fraction * labeled.size)))
    holdout = labeled[rng.permutation(labeled.size)[:count]]
    train_graph, mapping = graph.remove_nodes(holdout)
    # Remaining labeled nodes, in train-graph-local ids.
    old_to_new = np.full(graph.num_nodes, -1, dtype=np.int64)
    old_to_new[mapping] = np.arange(mapping.size)
    remaining = np.setdiff1d(labeled, holdout)
    train_nodes = old_to_new[remaining]
    return InductiveSplit(
        train_graph=train_graph,
        train_mapping=mapping,
        holdout=holdout,
        train_nodes=train_nodes,
    )
