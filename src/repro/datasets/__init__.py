"""Synthetic, schema-preserving stand-ins for the paper's datasets.

The paper evaluates on real DBLP, ACM and Yelp heterogeneous graphs that are
not available offline.  These generators produce graphs with the **same
schema** (node types, edge types, labeled node type, class count), the same
qualitative structure (degree skew, class homophily through shared
intermediate nodes, class-correlated features) at a CPU-friendly scale.
Every model in the evaluation consumes the same graphs, so comparative
results keep their shape.

Public entry points::

    dataset = make_acm(seed=0)      # ACM: classify papers (3 classes)
    dataset = make_dblp(seed=0)     # DBLP: classify authors (4 classes)
    dataset = make_yelp(seed=0)     # Yelp: classify businesses (3 classes)
"""

from repro.datasets.dataset import Dataset, TransductiveSplit
from repro.datasets.catalog import (
    make_acm, make_dblp, make_yelp, make_skewed, make_dataset, DATASETS,
)
from repro.datasets.splits import label_fraction, make_inductive_split, InductiveSplit
from repro.datasets.synthetic import SchemaConfig, generate_heterogeneous_graph

__all__ = [
    "Dataset",
    "TransductiveSplit",
    "InductiveSplit",
    "make_acm",
    "make_dblp",
    "make_yelp",
    "make_skewed",
    "make_dataset",
    "DATASETS",
    "label_fraction",
    "make_inductive_split",
    "SchemaConfig",
    "generate_heterogeneous_graph",
]
