"""GraphSAGE baseline (Hamilton, Ying & Leskovec, 2017).

Two layers of the sample-and-aggregate scheme with the mean aggregator::

    h_v^(l+1) = ReLU( W^(l) [ h_v^(l) ; mean_{u ∈ N_k(v)} h_u^(l) ] )

Minibatch training over target nodes with recursive neighbor sampling
(``fanout`` neighbors at each of the two hops), final embeddings L2
normalized as in the original.  Fully inductive: parameters touch only
features, never node identities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaseClassifier, sample_neighbor_matrix
from repro.graph import HeteroGraph
from repro.nn import Linear, Module
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class _SageLayer(Module):
    def __init__(self, in_dim: int, out_dim: int, rng):
        super().__init__()
        self.transform = Linear(2 * in_dim, out_dim, rng=rng)

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        """``self_feats``: (B, d); ``neighbor_feats``: (B, K, d)."""
        pooled = ops.mean(neighbor_feats, axis=1)
        return ops.relu(self.transform(ops.concat([self_feats, pooled], axis=1)))


class _SageNet(Module):
    def __init__(self, in_dim: int, hidden: int, out_dim: int, rngs):
        super().__init__()
        self.layer1 = _SageLayer(in_dim, hidden, rngs[0])
        self.layer2 = _SageLayer(hidden, hidden, rngs[1])
        self.classifier = Linear(hidden, out_dim, rng=rngs[2])


class GraphSAGE(BaseClassifier):
    """Two-layer mean-aggregator GraphSAGE with neighbor sampling."""

    name = "graphsage"

    def __init__(
        self,
        hidden: int = 32,
        fanout: int = 5,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.fanout = fanout
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        rngs = spawn_rngs(seed, 4)
        self._net_rngs = rngs[:3]
        self._rng = new_rng(rngs[3])
        self.net: Optional[_SageNet] = None

    def _build(self, graph: HeteroGraph) -> None:
        self.net = _SageNet(
            graph.features.shape[1], self.hidden, graph.num_classes, self._net_rngs
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )

    def _forward_batch(self, nodes: np.ndarray, graph: HeteroGraph) -> Tensor:
        """Embeddings for ``nodes`` via 2-hop sampled aggregation."""
        k = self.fanout
        hop1 = sample_neighbor_matrix(graph, nodes, k, self._rng)  # (B, K)
        hop2 = sample_neighbor_matrix(graph, hop1.reshape(-1), k, self._rng)  # (B*K, K)
        features = graph.features
        # Layer 1 applied to the hop-1 frontier (targets of layer 2).
        frontier_self = Tensor(features[hop1.reshape(-1)])  # (B*K, d0)
        frontier_neigh = Tensor(features[hop2].reshape(nodes.size * k, k, -1))
        frontier_hidden = self.net.layer1(frontier_self, frontier_neigh)  # (B*K, h)
        # Layer 1 applied to the batch itself.
        batch_self = Tensor(features[nodes])
        batch_neigh = Tensor(features[hop1].reshape(nodes.size, k, -1))
        batch_hidden = self.net.layer1(batch_self, batch_neigh)  # (B, h)
        # Layer 2: batch aggregates its hop-1 frontier's hidden states.
        frontier_3d = ops.reshape(frontier_hidden, (nodes.size, k, self.hidden))
        out = self.net.layer2(batch_hidden, frontier_3d)
        return F.l2_normalize(out, axis=-1)

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        order = self._rng.permutation(train_nodes.size)
        shuffled = train_nodes[order]
        total_loss = 0.0
        count = 0
        for start in range(0, shuffled.size, self.batch_size):
            batch = shuffled[start : start + self.batch_size]
            embeddings = self._forward_batch(batch, self.graph)
            logits = self.net.classifier(embeddings)
            loss = F.cross_entropy(logits, self.graph.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * batch.size
            count += batch.size
        return total_loss / max(count, 1)

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        out = self._forward_batch(nodes, graph).data
        self.net.train()
        return out

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        logits = self.net.classifier(self._forward_batch(nodes, graph))
        self.net.train()
        return logits.data.argmax(axis=1)
