"""The eight baselines of the paper's evaluation (Section 4.2).

All baselines run on the same autograd engine and graph substrate as WIDEN,
so relative comparisons (accuracy, per-epoch time, parameter counts) are
apples to apples.  Each model subclasses
:class:`~repro.baselines.common.BaseClassifier` and exposes the same
``fit`` / ``predict`` / ``embed`` interface the protocol runners consume.

| Paper baseline | Class            | Notes on the reproduction           |
|----------------|------------------|-------------------------------------|
| Node2Vec       | :class:`Node2Vec`| biased walks + SGNS, id embeddings; transductive only |
| GCN            | :class:`GCN`     | full-batch spectral convolutions (sparse propagation) |
| FastGCN        | :class:`FastGCN` | layerwise importance-sampled minibatch GCN |
| GraphSAGE      | :class:`GraphSAGE`| mean aggregator, 2-layer neighbor sampling |
| GAT            | :class:`GAT`     | neighborhood attention, 2 layers    |
| GTN            | :class:`GTN`     | soft edge-type selection + composed meta-path convolution (dense; slow by design, as in the paper) |
| HAN            | :class:`HAN`     | meta-path node-level + semantic attention |
| HGT            | :class:`HGT`     | type-specific projections + heterogeneous mutual attention |
"""

from repro.baselines.common import BaseClassifier
from repro.baselines.node2vec import Node2Vec
from repro.baselines.gcn import GCN
from repro.baselines.fastgcn import FastGCN
from repro.baselines.graphsage import GraphSAGE
from repro.baselines.gat import GAT
from repro.baselines.gtn import GTN
from repro.baselines.han import HAN
from repro.baselines.hgt import HGT

BASELINES = {
    "node2vec": Node2Vec,
    "gcn": GCN,
    "fastgcn": FastGCN,
    "graphsage": GraphSAGE,
    "gat": GAT,
    "gtn": GTN,
    "han": HAN,
    "hgt": HGT,
}

__all__ = [
    "BaseClassifier",
    "Node2Vec",
    "GCN",
    "FastGCN",
    "GraphSAGE",
    "GAT",
    "GTN",
    "HAN",
    "HGT",
    "BASELINES",
]
