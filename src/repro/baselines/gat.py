"""GAT baseline (Veličković et al., 2018).

Neighborhood attention over sampled neighborhoods::

    e_ij   = LeakyReLU( a · [W h_i ; W h_j] )
    α_ij   = softmax_j(e_ij)
    h_i'   = σ( Σ_j α_ij W h_j )

Two attention layers, single head each (multi-head averaging adds little at
this scale), minibatch training with the same 2-hop sampling scheme as
GraphSAGE so per-epoch costs are comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaseClassifier, sample_neighbor_matrix
from repro.graph import HeteroGraph
from repro.nn import Linear, Module, Parameter, init
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class _GatLayer(Module):
    def __init__(self, in_dim: int, out_dim: int, rng):
        super().__init__()
        from repro.utils.rng import spawn_rngs

        rngs = spawn_rngs(rng, 3)
        self.transform = Linear(in_dim, out_dim, bias=False, rng=rngs[0])
        self.attn_self = Parameter(init.xavier_uniform((out_dim,), rng=rngs[1]))
        self.attn_neigh = Parameter(init.xavier_uniform((out_dim,), rng=rngs[2]))

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        """``self_feats``: (B, d_in); ``neighbor_feats``: (B, K, d_in).

        The additive attention ``a·[Wh_i ; Wh_j]`` is decomposed as
        ``a_self·Wh_i + a_neigh·Wh_j`` (the standard GAT trick).
        """
        h_self = self.transform(self_feats)  # (B, d)
        h_neigh = self.transform(neighbor_feats)  # (B, K, d)
        score_self = ops.matmul(h_self, self.attn_self)  # (B,)
        score_neigh = ops.matmul(h_neigh, self.attn_neigh)  # (B, K)
        scores = ops.leaky_relu(
            ops.reshape(score_self, (len(self_feats), 1)) + score_neigh
        )
        alpha = F.softmax(scores, axis=-1)  # (B, K)
        weighted = ops.reshape(alpha, (*alpha.shape, 1)) * h_neigh  # (B, K, d)
        return ops.relu(ops.sum(weighted, axis=1) + h_self)


class _GatNet(Module):
    def __init__(self, in_dim: int, hidden: int, out_dim: int, rngs):
        super().__init__()
        self.layer1 = _GatLayer(in_dim, hidden, rngs[0])
        self.layer2 = _GatLayer(hidden, hidden, rngs[1])
        self.classifier = Linear(hidden, out_dim, rng=rngs[2])


class GAT(BaseClassifier):
    """Two-layer graph attention network over sampled neighborhoods."""

    name = "gat"

    def __init__(
        self,
        hidden: int = 32,
        fanout: int = 5,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.fanout = fanout
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        rngs = spawn_rngs(seed, 4)
        self._net_rngs = rngs[:3]
        self._rng = new_rng(rngs[3])
        self.net: Optional[_GatNet] = None

    def _build(self, graph: HeteroGraph) -> None:
        self.net = _GatNet(
            graph.features.shape[1], self.hidden, graph.num_classes, self._net_rngs
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )

    def _forward_batch(self, nodes: np.ndarray, graph: HeteroGraph) -> Tensor:
        k = self.fanout
        hop1 = sample_neighbor_matrix(graph, nodes, k, self._rng)
        hop2 = sample_neighbor_matrix(graph, hop1.reshape(-1), k, self._rng)
        features = graph.features
        frontier_hidden = self.net.layer1(
            Tensor(features[hop1.reshape(-1)]),
            Tensor(features[hop2].reshape(nodes.size * k, k, -1)),
        )
        batch_hidden = self.net.layer1(
            Tensor(features[nodes]),
            Tensor(features[hop1].reshape(nodes.size, k, -1)),
        )
        frontier_3d = ops.reshape(frontier_hidden, (nodes.size, k, self.hidden))
        out = self.net.layer2(batch_hidden, frontier_3d)
        return F.l2_normalize(out, axis=-1)

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        order = self._rng.permutation(train_nodes.size)
        shuffled = train_nodes[order]
        total_loss = 0.0
        count = 0
        for start in range(0, shuffled.size, self.batch_size):
            batch = shuffled[start : start + self.batch_size]
            logits = self.net.classifier(self._forward_batch(batch, self.graph))
            loss = F.cross_entropy(logits, self.graph.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * batch.size
            count += batch.size
        return total_loss / max(count, 1)

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        out = self._forward_batch(nodes, graph).data
        self.net.train()
        return out

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        logits = self.net.classifier(self._forward_batch(nodes, graph))
        self.net.train()
        return logits.data.argmax(axis=1)
