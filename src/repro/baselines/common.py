"""Shared baseline infrastructure.

:class:`BaseClassifier` fixes the interface every baseline implements so
evaluation protocols and benchmark harnesses treat all models uniformly:

- ``fit(graph, train_nodes, epochs)`` — semi-supervised training on labeled
  nodes of ``graph``; records per-epoch losses and wall-clock seconds.
- ``predict(nodes, graph=None)`` / ``embed(nodes, graph=None)`` — inference.
  Passing a *different* graph than the one trained on realizes the paper's
  inductive protocol (Section 4.3) for models whose parameters are node-count
  independent; identity-based models (Node2Vec) set
  ``supports_inductive = False`` and reject it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph import HeteroGraph
from repro.nn import Module
from repro.tensor import no_grad
from repro.obs import Timer


def sample_neighbor_matrix(
    graph: HeteroGraph, nodes: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Fixed-size neighbor sample: ``(len(nodes), k)`` ids, with replacement.

    Isolated nodes fall back to themselves, which makes the mean/attention
    aggregators of GraphSAGE/GAT/HGT degenerate gracefully to self-loops.
    """
    result = np.empty((nodes.size, k), dtype=np.int64)
    for row, node in enumerate(nodes):
        neighbors, _ = graph.neighbors(int(node))
        if neighbors.size == 0:
            result[row] = node
        else:
            result[row] = neighbors[rng.integers(neighbors.size, size=k)]
    return result


def sample_typed_neighbor_matrix(
    graph: HeteroGraph, nodes: np.ndarray, k: int, rng: np.random.Generator
):
    """Like :func:`sample_neighbor_matrix` but also returns the edge types.

    Isolated nodes use their own self-loop edge type (HGT's fallback).
    """
    neighbor_ids = np.empty((nodes.size, k), dtype=np.int64)
    edge_types = np.empty((nodes.size, k), dtype=np.int64)
    for row, node in enumerate(nodes):
        neighbors, etypes = graph.neighbors(int(node))
        if neighbors.size == 0:
            neighbor_ids[row] = node
            edge_types[row] = graph.self_loop_type(int(node))
        else:
            picks = rng.integers(neighbors.size, size=k)
            neighbor_ids[row] = neighbors[picks]
            edge_types[row] = etypes[picks]
    return neighbor_ids, edge_types


class BaseClassifier:
    """Common skeleton: training loop bookkeeping + inference plumbing."""

    name: str = "base"
    supports_inductive: bool = True

    def __init__(self) -> None:
        self.graph: Optional[HeteroGraph] = None
        self.losses: List[float] = []
        self.epoch_seconds: List[float] = []

    # -- subclass contract ----------------------------------------------

    def _build(self, graph: HeteroGraph) -> None:
        """Create parameters for ``graph``'s feature/class dimensions."""
        raise NotImplementedError

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        """One optimization epoch; returns mean training loss."""
        raise NotImplementedError

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        """Embeddings (pre-classifier representations) for ``nodes``."""
        raise NotImplementedError

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        """Predicted class per node."""
        raise NotImplementedError

    # -- public API -------------------------------------------------------

    def fit(
        self, graph: HeteroGraph, train_nodes: np.ndarray, epochs: int
    ) -> "BaseClassifier":
        train_nodes = np.asarray(train_nodes, dtype=np.int64)
        if (graph.labels[train_nodes] < 0).any():
            raise ValueError("all training nodes must be labeled")
        if self.graph is None:
            self.graph = graph
            self._build(graph)
        elif self.graph is not graph:
            raise ValueError("fit() must be called with the same graph each time")
        for _ in range(epochs):
            with Timer() as timer:
                loss = self._train_epoch(train_nodes)
            self.losses.append(loss)
            self.epoch_seconds.append(timer.laps[-1])
        return self

    def rebind(self, graph: HeteroGraph) -> None:
        """Point the model at a different graph without resetting parameters.

        Used by partition training (``fit_on_partitions``): the parameters
        are feature-dimensional, so they carry across subgraphs; per-graph
        caches are rebuilt via :meth:`_on_rebind`.
        """
        if self.graph is None:
            raise RuntimeError("rebind() before the first fit(); just call fit()")
        if graph is self.graph:
            return
        self.graph = graph
        self._on_rebind(graph)

    def _on_rebind(self, graph: HeteroGraph) -> None:
        """Hook for rebuilding graph-specific caches after :meth:`rebind`."""

    def refresh_graph_caches(self) -> None:
        """Rebuild per-graph derived state after an *in-place* mutation.

        ``rebind`` is a no-op when the graph object is unchanged, but the
        streaming serving path mutates the bound graph in place
        (``HeteroGraph.add_nodes``/``add_edges``); models that precompute
        per-node state (sampled neighborhoods, adjacency products) must
        then resample it.  The server calls this from its mutation hook.
        """
        if self.graph is None:
            raise RuntimeError("refresh_graph_caches() before the first fit()")
        self._on_rebind(self.graph)

    def predict(
        self, nodes: np.ndarray, graph: Optional[HeteroGraph] = None
    ) -> np.ndarray:
        graph = self._resolve_graph(graph)
        with no_grad():
            return self._predict(np.asarray(nodes, dtype=np.int64), graph)

    def embed(
        self, nodes: np.ndarray, graph: Optional[HeteroGraph] = None
    ) -> np.ndarray:
        graph = self._resolve_graph(graph)
        with no_grad():
            return self._embed(np.asarray(nodes, dtype=np.int64), graph)

    def num_parameters(self) -> int:
        """Trainable scalar count (Fig. 4's model-complexity context)."""
        total = 0
        for value in vars(self).values():
            if isinstance(value, Module):
                total += value.num_parameters()
        return total

    def _resolve_graph(self, graph: Optional[HeteroGraph]) -> HeteroGraph:
        if self.graph is None:
            raise RuntimeError(f"{self.name}: predict/embed called before fit")
        if graph is None or graph is self.graph:
            return self.graph
        if not self.supports_inductive:
            raise ValueError(
                f"{self.name} is transductive-only and cannot run on a new graph"
            )
        return graph
