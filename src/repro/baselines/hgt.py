"""HGT baseline (Hu et al., 2020).

The Heterogeneous Graph Transformer parameterizes attention by *meta
relations*: node-type-specific Key/Query/Value projections and edge-type-
specific attention/message transforms.  Per layer, for target ``t`` and
neighbor ``n`` connected by edge type ``e``::

    att(t, e, n) = ( Q_τ(t) h_t · W_att^e (K_τ(n) h_n)^T ) · μ_e / √d
    msg(e, n)    = V_τ(n) h_n · W_msg^e
    h_t'         = ReLU(W_out · Σ_n softmax(att)·msg) + h_t      (residual)

This reproduction keeps the paper's hierarchical structure: a type-specific
input projection followed by ``num_layers`` stacked transformer layers, each
recursively attending over freshly sampled typed neighborhoods — so a
2-layer HGT touches a 2-hop neighborhood per target, at the per-type /
per-relation parameter cost WIDEN's efficiency critique targets.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.common import BaseClassifier, sample_typed_neighbor_matrix
from repro.graph import HeteroGraph
from repro.nn import Linear, Module, Parameter
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class _HgtLayer(Module):
    """One heterogeneous mutual-attention layer (hidden -> hidden)."""

    def __init__(self, hidden: int, num_node_types: int, num_edge_types: int, rng):
        super().__init__()
        rngs = iter(spawn_rngs(rng, 3 * num_node_types + 2 * num_edge_types + 1))
        self.key_proj = self.register_modules(
            "key_proj",
            [Linear(hidden, hidden, rng=next(rngs)) for _ in range(num_node_types)],
        )
        self.query_proj = self.register_modules(
            "query_proj",
            [Linear(hidden, hidden, rng=next(rngs)) for _ in range(num_node_types)],
        )
        self.value_proj = self.register_modules(
            "value_proj",
            [Linear(hidden, hidden, rng=next(rngs)) for _ in range(num_node_types)],
        )
        self.w_att = self.register_modules(
            "w_att",
            [Linear(hidden, hidden, bias=False, rng=next(rngs))
             for _ in range(num_edge_types)],
        )
        self.w_msg = self.register_modules(
            "w_msg",
            [Linear(hidden, hidden, bias=False, rng=next(rngs))
             for _ in range(num_edge_types)],
        )
        self.edge_prior = Parameter(np.ones(num_edge_types), name="mu")
        self.out = Linear(hidden, hidden, rng=next(rngs))


class _HgtNet(Module):
    def __init__(
        self, in_dim: int, hidden: int, out_dim: int,
        num_node_types: int, num_edge_types: int, num_layers: int, rng,
    ):
        super().__init__()
        rngs = spawn_rngs(rng, num_node_types + num_layers + 1)
        self.input_proj = self.register_modules(
            "input_proj",
            [Linear(in_dim, hidden, rng=rngs[t]) for t in range(num_node_types)],
        )
        self.layers = self.register_modules(
            "layers",
            [
                _HgtLayer(hidden, num_node_types, num_edge_types,
                          rngs[num_node_types + layer])
                for layer in range(num_layers)
            ],
        )
        self.classifier = Linear(hidden, out_dim, rng=rngs[-1])


class HGT(BaseClassifier):
    """Stacked heterogeneous graph transformer over sampled neighborhoods."""

    name = "hgt"

    def __init__(
        self,
        hidden: int = 32,
        fanout: int = 5,
        num_layers: int = 2,
        batch_size: int = 64,
        learning_rate: float = 0.005,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.hidden = hidden
        self.fanout = fanout
        self.num_layers = num_layers
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        rngs = spawn_rngs(seed, 2)
        self._net_rng = rngs[0]
        self._rng = new_rng(rngs[1])
        self.net: Optional[_HgtNet] = None

    def _build(self, graph: HeteroGraph) -> None:
        self.net = _HgtNet(
            graph.features.shape[1], self.hidden, graph.num_classes,
            graph.num_node_types, graph.num_edge_types_with_loops,
            self.num_layers, self._net_rng,
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )

    def _represent(self, node: int, graph: HeteroGraph, depth: int) -> Tensor:
        """Representation of ``node`` after ``depth`` HGT layers.

        ``depth == 0`` is the type-specific input projection; deeper levels
        recursively attend over freshly sampled typed neighborhoods, so the
        receptive field grows one hop per layer, as in the original.
        """
        node_type = int(graph.node_types[node])
        if depth == 0:
            return self.net.input_proj[node_type](Tensor(graph.features[node]))
        layer = self.net.layers[depth - 1]
        h_target = self._represent(node, graph, depth - 1)
        query = layer.query_proj[node_type](h_target)
        neighbor_ids, edge_types = sample_typed_neighbor_matrix(
            graph, np.array([node]), self.fanout, self._rng
        )
        scores: List[Tensor] = []
        messages: List[Tensor] = []
        for neighbor, etype in zip(neighbor_ids[0], edge_types[0]):
            neighbor_type = int(graph.node_types[neighbor])
            h_neighbor = self._represent(int(neighbor), graph, depth - 1)
            key = layer.key_proj[neighbor_type](h_neighbor)
            value = layer.value_proj[neighbor_type](h_neighbor)
            attended_key = layer.w_att[int(etype)](key)
            prior = layer.edge_prior[int(etype)]
            scores.append(ops.sum(query * attended_key) * prior / np.sqrt(self.hidden))
            messages.append(layer.w_msg[int(etype)](value))
        alpha = F.softmax(ops.stack(scores), axis=-1)
        aggregated = alpha[0] * messages[0]
        for k in range(1, len(messages)):
            aggregated = aggregated + alpha[k] * messages[k]
        return ops.relu(layer.out(aggregated)) + h_target

    def _forward_batch(self, nodes: np.ndarray, graph: HeteroGraph) -> Tensor:
        rows = [self._represent(int(node), graph, self.num_layers) for node in nodes]
        return F.l2_normalize(ops.stack(rows), axis=-1)

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        order = self._rng.permutation(train_nodes.size)
        shuffled = train_nodes[order]
        total_loss = 0.0
        count = 0
        for start in range(0, shuffled.size, self.batch_size):
            batch = shuffled[start : start + self.batch_size]
            logits = self.net.classifier(self._forward_batch(batch, self.graph))
            loss = F.cross_entropy(logits, self.graph.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * batch.size
            count += batch.size
        return total_loss / max(count, 1)

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        out = self._forward_batch(nodes, graph).data
        self.net.train()
        return out

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        logits = self.net.classifier(self._forward_batch(nodes, graph))
        self.net.train()
        return logits.data.argmax(axis=1)
