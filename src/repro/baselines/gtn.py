"""GTN baseline (Yun et al., 2019).

The Graph Transformer Network learns *soft meta paths*: each hop carries a
trainable selection over edge-type adjacencies (including the identity, so
shorter paths remain expressible); consecutive hops are composed and a GCN
runs on the learned meta-path graph.  Per channel ``c`` and hop ``l``::

    A_mix^(c,l) = Σ_r softmax(θ^(c,l))_r · A_r        (A_0 = I)
    output_c    = rownorm(A_mix^(c,1)) rownorm(A_mix^(c,2)) X W

The composition is applied right-to-left against the feature matrix rather
than materializing the composed n×n adjacency (hop-wise row normalization;
the composition of row-stochastic matrices stays row-stochastic, preserving
GTN's D^-1 normalization up to reweighting).  Channels are concatenated and
classified with a linear layer.

As in the paper, GTN is the slowest baseline by far — the per-epoch cost is
O(hops · channels · nnz(A) · d) with dense feature propagation through every
edge type — and the paper skips it on Yelp for this reason.  The benchmark
harness reproduces that skip.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import BaseClassifier
from repro.graph import HeteroGraph
from repro.nn import Linear, Module, Parameter
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, spawn_rngs


class _GtnNet(Module):
    def __init__(
        self, in_dim: int, hidden: int, out_dim: int,
        num_edge_types: int, channels: int, hops: int, rngs,
    ):
        super().__init__()
        # +1 selection slot for the identity adjacency.
        self.selection = Parameter(
            np.zeros((channels, hops, num_edge_types + 1)), name="theta"
        )
        self.transform = Linear(in_dim, hidden, rng=rngs[0])
        self.classifier = Linear(hidden * channels, out_dim, rng=rngs[1])
        self.channels = channels
        self.hops = hops


class GTN(BaseClassifier):
    """Graph Transformer Network with soft edge-type selection."""

    name = "gtn"

    def __init__(
        self,
        hidden: int = 32,
        channels: int = 2,
        hops: int = 2,
        learning_rate: float = 0.01,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.channels = channels
        self.hops = hops
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self._rngs = spawn_rngs(seed, 2)
        self.net: Optional[_GtnNet] = None
        self._adjacencies: Optional[List[sp.csr_matrix]] = None

    def _build(self, graph: HeteroGraph) -> None:
        self.net = _GtnNet(
            graph.features.shape[1], self.hidden, graph.num_classes,
            graph.num_edge_types, self.channels, self.hops, self._rngs,
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        self._adjacencies = self._row_normalized_adjacencies(graph)

    def _on_rebind(self, graph: HeteroGraph) -> None:
        self._adjacencies = self._row_normalized_adjacencies(graph)

    @staticmethod
    def _row_normalized_adjacencies(graph: HeteroGraph) -> List[sp.csr_matrix]:
        matrices = []
        for etype in range(graph.num_edge_types):
            adj = graph.adjacency(edge_type=etype)
            degree = np.asarray(adj.sum(axis=1)).reshape(-1)
            inv = np.where(degree > 0, 1.0 / np.maximum(degree, 1e-12), 0.0)
            matrices.append((sp.diags(inv) @ adj).tocsr())
        matrices.append(sp.eye(graph.num_nodes, format="csr"))
        return matrices

    def _propagate(self, features: Tensor, adjacencies: List[sp.csr_matrix]) -> Tensor:
        """All channels' composed propagation, concatenated: (n, channels*h)."""
        hidden = self.net.transform(features)  # (n, h)
        outputs = []
        for channel in range(self.channels):
            channel_hidden = hidden
            # Apply hops right-to-left: A^(1) (A^(2) (… X)).
            for hop in reversed(range(self.hops)):
                weights = F.softmax(self.net.selection[channel, hop], axis=-1)
                mixed_parts = []
                for r, adjacency in enumerate(adjacencies):
                    propagated = ops.spmm(adjacency, channel_hidden)
                    mixed_parts.append(weights[r] * propagated)
                channel_hidden = mixed_parts[0]
                for part in mixed_parts[1:]:
                    channel_hidden = channel_hidden + part
            outputs.append(ops.relu(channel_hidden))
        return ops.concat(outputs, axis=1)

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        combined = self._propagate(Tensor(self.graph.features), self._adjacencies)
        logits = self.net.classifier(combined)
        loss = F.cross_entropy(logits[train_nodes], self.graph.labels[train_nodes])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def _forward_eval(self, graph: HeteroGraph):
        adjacencies = (
            self._adjacencies
            if graph is self.graph
            else self._row_normalized_adjacencies(graph)
        )
        self.net.eval()
        combined = self._propagate(Tensor(graph.features), adjacencies)
        logits = self.net.classifier(combined)
        self.net.train()
        return logits, combined

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        _, combined = self._forward_eval(graph)
        return combined.data[nodes]

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        logits, _ = self._forward_eval(graph)
        return logits.data[nodes].argmax(axis=1)
