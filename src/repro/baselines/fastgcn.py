"""FastGCN baseline (Chen, Ma & Xiao, 2018).

GCN with **layerwise importance sampling**: instead of full-batch
propagation, each minibatch samples a fixed-size support set per layer with
probability proportional to the squared column norm of ``Â``, and the
convolution is evaluated as an importance-weighted Monte-Carlo estimate::

    H^(l+1)[batch] = σ( Â[batch, S] diag(1 / (s · q[S])) H^(l)[S] W )

This keeps per-step cost independent of graph size (the paper's "parallelizable
model ... retaining similar performance as GCN").  Evaluation uses the exact
full-batch forward.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import BaseClassifier
from repro.graph import HeteroGraph
from repro.nn import Linear, Module
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class _FastGcnNet(Module):
    def __init__(self, in_dim: int, hidden: int, out_dim: int, rngs):
        super().__init__()
        self.layer1 = Linear(in_dim, hidden, rng=rngs[0])
        self.layer2 = Linear(hidden, out_dim, rng=rngs[1])


class FastGCN(BaseClassifier):
    """Two-layer GCN trained with layerwise importance sampling."""

    name = "fastgcn"

    def __init__(
        self,
        hidden: int = 32,
        sample_size: int = 256,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.sample_size = sample_size
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        rngs = spawn_rngs(seed, 3)
        self._net_rngs = rngs[:2]
        self._rng = new_rng(rngs[2])
        self.net: Optional[_FastGcnNet] = None
        self._adj: Optional[sp.csr_matrix] = None
        self._importance: Optional[np.ndarray] = None

    def _build(self, graph: HeteroGraph) -> None:
        self.net = _FastGcnNet(
            graph.features.shape[1], self.hidden, graph.num_classes, self._net_rngs
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        self._adj = graph.normalized_adjacency()
        # Importance distribution q(v) ∝ ||Â[:, v]||² (the FastGCN choice).
        column_norms = np.asarray(self._adj.multiply(self._adj).sum(axis=0)).reshape(-1)
        total = column_norms.sum()
        if total <= 0:
            column_norms = np.ones_like(column_norms)
            total = column_norms.sum()
        self._importance = column_norms / total

    def _on_rebind(self, graph: HeteroGraph) -> None:
        self._adj = graph.normalized_adjacency()
        column_norms = np.asarray(self._adj.multiply(self._adj).sum(axis=0)).reshape(-1)
        total = column_norms.sum()
        if total <= 0:
            column_norms = np.ones_like(column_norms)
            total = column_norms.sum()
        self._importance = column_norms / total

    def _sample_support(self) -> np.ndarray:
        size = min(self.sample_size, self.graph.num_nodes)
        return self._rng.choice(
            self.graph.num_nodes, size=size, replace=False, p=self._importance
        )

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        order = self._rng.permutation(train_nodes.size)
        shuffled = train_nodes[order]
        total_loss = 0.0
        count = 0
        for start in range(0, shuffled.size, self.batch_size):
            batch = shuffled[start : start + self.batch_size]
            support1 = self._sample_support()  # hidden-layer support
            support2 = self._sample_support()  # input-layer support
            scale1 = 1.0 / (support1.size * self._importance[support1])
            scale2 = 1.0 / (support2.size * self._importance[support2])
            # Layer 1 estimate on support1: Â[s1, s2] diag(scale2) X[s2] W0
            block12 = self._adj[support1][:, support2].multiply(scale2).tocsr()
            hidden = ops.relu(
                ops.spmm(block12, self.net.layer1(Tensor(self.graph.features[support2])))
            )
            # Layer 2 estimate on the batch rows.
            block01 = self._adj[batch][:, support1].multiply(scale1).tocsr()
            logits = ops.spmm(block01, self.net.layer2(hidden))
            loss = F.cross_entropy(logits, self.graph.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * batch.size
            count += batch.size
        return total_loss / max(count, 1)

    def _full_forward(self, graph: HeteroGraph):
        adj = self._adj if graph is self.graph else graph.normalized_adjacency()
        self.net.eval()
        hidden = ops.relu(ops.spmm(adj, self.net.layer1(Tensor(graph.features))))
        logits = ops.spmm(adj, self.net.layer2(hidden))
        self.net.train()
        return logits, hidden

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        _, hidden = self._full_forward(graph)
        return hidden.data[nodes]

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        logits, _ = self._full_forward(graph)
        return logits.data[nodes].argmax(axis=1)
