"""GCN baseline (Kipf & Welling, 2017).

Two spectral convolution layers over the symmetric-normalized adjacency
``Â = D^-1/2 (A + I) D^-1/2`` of the heterogeneous graph (type information is
ignored — that is the point of the baseline)::

    H = ReLU(Â X W0)
    Z = Â H W1

Full-batch training, as in the original (the paper notes this requires the
full adjacency, making GCN transductive by design; the inductive protocol
masks held-out nodes during training and restores them for evaluation, which
our interface realizes by passing the full graph at predict time).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import BaseClassifier
from repro.graph import HeteroGraph
from repro.nn import Dropout, Linear, Module
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, spawn_rngs


class _GcnNet(Module):
    def __init__(self, in_dim: int, hidden: int, out_dim: int, dropout: float, rngs):
        super().__init__()
        self.layer1 = Linear(in_dim, hidden, rng=rngs[0])
        self.layer2 = Linear(hidden, out_dim, rng=rngs[1])
        self.dropout = Dropout(dropout, rng=rngs[2])

    def forward(self, adj: sp.csr_matrix, features: Tensor):
        hidden = ops.relu(ops.spmm(adj, self.layer1(features)))
        hidden = self.dropout(hidden)
        logits = ops.spmm(adj, self.layer2(hidden))
        return logits, hidden


class GCN(BaseClassifier):
    """Full-batch two-layer graph convolutional network."""

    name = "gcn"

    def __init__(
        self,
        hidden: int = 32,
        learning_rate: float = 0.01,
        weight_decay: float = 5e-4,
        dropout: float = 0.3,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self._rngs = spawn_rngs(seed, 3)
        self.net: Optional[_GcnNet] = None
        self._adj_cache: Dict[int, sp.csr_matrix] = {}

    def _build(self, graph: HeteroGraph) -> None:
        self.net = _GcnNet(
            graph.features.shape[1], self.hidden, graph.num_classes,
            self.dropout, self._rngs,
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )

    def _normalized(self, graph: HeteroGraph) -> sp.csr_matrix:
        key = id(graph)
        if key not in self._adj_cache:
            self._adj_cache[key] = graph.normalized_adjacency()
        return self._adj_cache[key]

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        adj = self._normalized(self.graph)
        logits, _ = self.net(adj, Tensor(self.graph.features))
        loss = F.cross_entropy(logits[train_nodes], self.graph.labels[train_nodes])
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def _forward_eval(self, graph: HeteroGraph):
        self.net.eval()
        out = self.net(self._normalized(graph), Tensor(graph.features))
        self.net.train()
        return out

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        _, hidden = self._forward_eval(graph)
        return hidden.data[nodes]

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        logits, _ = self._forward_eval(graph)
        return logits.data[nodes].argmax(axis=1)
