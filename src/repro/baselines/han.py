"""HAN baseline (Wang et al., 2019).

The Heterogeneous Attention Network runs two attention levels:

1. **Node-level**: for each meta path ``m``, a GAT-style attention
   aggregates a node's meta-path-based neighbors into ``z^m``.
2. **Semantic-level**: a learned query scores each meta path's summary
   ``w_m = mean_i q·tanh(W z_i^m + b)``; softmax weights β_m mix the per-path
   embeddings into the final representation.

Meta paths default to the symmetric 2-hop paths through every edge type
incident to the target node type (e.g. PAP and PSP on ACM) — exactly the
hand-crafted paths the original work uses, derived here automatically from
the schema.  This dependence on pre-defined meta paths (and the per-path
attention machinery) is the inflexibility/training-cost critique WIDEN makes
of HAN; keeping the structure faithful keeps that comparison meaningful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import BaseClassifier
from repro.graph import HeteroGraph, metapath_adjacency
from repro.nn import Linear, Module, Parameter, init
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, ops
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


def default_metapaths(graph: HeteroGraph, target_type: str) -> List[List[str]]:
    """Symmetric 2-hop meta paths through each edge type touching the target.

    With symmetric edge storage, following edge type ``e`` twice from a
    target-type node returns to target-type nodes (paper-author twice = PAP).
    """
    target_nodes = graph.nodes_of_type(target_type)
    incident_types: set = set()
    for node in target_nodes[: min(200, target_nodes.size)]:
        _, etypes = graph.neighbors(int(node))
        incident_types.update(etypes.tolist())
    if not incident_types:
        raise ValueError(f"no edges incident to node type {target_type!r}")
    return [
        [graph.edge_type_names[e], graph.edge_type_names[e]]
        for e in sorted(incident_types)
    ]


class _NodeLevelAttention(Module):
    """GAT-style attention over one meta path's neighbors."""

    def __init__(self, in_dim: int, out_dim: int, rng):
        super().__init__()
        rngs = spawn_rngs(rng, 3)
        self.transform = Linear(in_dim, out_dim, bias=False, rng=rngs[0])
        self.attn_self = Parameter(init.xavier_uniform((out_dim,), rng=rngs[1]))
        self.attn_neigh = Parameter(init.xavier_uniform((out_dim,), rng=rngs[2]))

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        h_self = self.transform(self_feats)
        h_neigh = self.transform(neighbor_feats)
        scores = ops.leaky_relu(
            ops.reshape(ops.matmul(h_self, self.attn_self), (len(self_feats), 1))
            + ops.matmul(h_neigh, self.attn_neigh)
        )
        alpha = F.softmax(scores, axis=-1)
        weighted = ops.reshape(alpha, (*alpha.shape, 1)) * h_neigh
        return ops.relu(ops.sum(weighted, axis=1) + h_self)


class _SemanticAttention(Module):
    """Scores each meta path's embedding matrix and mixes them."""

    def __init__(self, dim: int, attention_dim: int, rng):
        super().__init__()
        rngs = spawn_rngs(rng, 2)
        self.transform = Linear(dim, attention_dim, rng=rngs[0])
        self.query = Parameter(init.xavier_uniform((attention_dim,), rng=rngs[1]))

    def forward(self, per_path: List[Tensor]) -> Tensor:
        """``per_path``: list of (B, d) tensors, one per meta path."""
        scores = []
        for z in per_path:
            projected = ops.tanh(self.transform(z))  # (B, a)
            scores.append(ops.mean(ops.matmul(projected, self.query)))  # scalar
        beta = F.softmax(ops.stack(scores), axis=-1)  # (P,)
        mixed = beta[0] * per_path[0]
        for p in range(1, len(per_path)):
            mixed = mixed + beta[p] * per_path[p]
        return mixed


class _HanNet(Module):
    def __init__(self, in_dim: int, hidden: int, out_dim: int, num_paths: int, rngs):
        super().__init__()
        self.path_attention = self.register_modules(
            "path_attention",
            [_NodeLevelAttention(in_dim, hidden, rngs[p]) for p in range(num_paths)],
        )
        self.semantic = _SemanticAttention(hidden, hidden, rngs[num_paths])
        self.classifier = Linear(hidden, out_dim, rng=rngs[num_paths + 1])


class HAN(BaseClassifier):
    """Heterogeneous attention network over pre-defined meta paths."""

    name = "han"

    def __init__(
        self,
        metapaths: Optional[Sequence[Sequence[str]]] = None,
        target_type: Optional[str] = None,
        hidden: int = 32,
        fanout: int = 5,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.metapaths = [list(path) for path in metapaths] if metapaths else None
        self.target_type = target_type
        self.hidden = hidden
        self.fanout = fanout
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        rngs = spawn_rngs(seed, 10)
        self._net_rngs = rngs[:9]
        self._rng = new_rng(rngs[9])
        self.net: Optional[_HanNet] = None
        self._path_adjacency: Dict[int, List[sp.csr_matrix]] = {}

    def _build(self, graph: HeteroGraph) -> None:
        if self.metapaths is None:
            if self.target_type is None:
                raise ValueError("HAN needs either explicit metapaths or a target_type")
            self.metapaths = default_metapaths(graph, self.target_type)
        self.net = _HanNet(
            graph.features.shape[1], self.hidden, graph.num_classes,
            len(self.metapaths), self._net_rngs,
        )
        self.optimizer = Adam(
            self.net.parameters(), lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )

    def _adjacencies_for(self, graph: HeteroGraph) -> List[sp.csr_matrix]:
        key = id(graph)
        if key not in self._path_adjacency:
            self._path_adjacency[key] = [
                metapath_adjacency(graph, path) for path in self.metapaths
            ]
        return self._path_adjacency[key]

    def _sample_path_neighbors(
        self, adjacency: sp.csr_matrix, nodes: np.ndarray
    ) -> np.ndarray:
        """(B, K) meta-path neighbors; nodes without any fall back to self."""
        result = np.empty((nodes.size, self.fanout), dtype=np.int64)
        for row, node in enumerate(nodes):
            start, stop = adjacency.indptr[node], adjacency.indptr[node + 1]
            candidates = adjacency.indices[start:stop]
            if candidates.size == 0:
                result[row] = node
            else:
                result[row] = candidates[
                    self._rng.integers(candidates.size, size=self.fanout)
                ]
        return result

    def _forward_batch(self, nodes: np.ndarray, graph: HeteroGraph) -> Tensor:
        features = graph.features
        per_path = []
        for adjacency, attention in zip(
            self._adjacencies_for(graph), self.net.path_attention
        ):
            neighbors = self._sample_path_neighbors(adjacency, nodes)
            z = attention(
                Tensor(features[nodes]),
                Tensor(features[neighbors].reshape(nodes.size, self.fanout, -1)),
            )
            per_path.append(z)
        return self.net.semantic(per_path)

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        self.net.train()
        order = self._rng.permutation(train_nodes.size)
        shuffled = train_nodes[order]
        total_loss = 0.0
        count = 0
        for start in range(0, shuffled.size, self.batch_size):
            batch = shuffled[start : start + self.batch_size]
            logits = self.net.classifier(self._forward_batch(batch, self.graph))
            loss = F.cross_entropy(logits, self.graph.labels[batch])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * batch.size
            count += batch.size
        return total_loss / max(count, 1)

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        out = self._forward_batch(nodes, graph).data
        self.net.train()
        return out

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        self.net.eval()
        logits = self.net.classifier(self._forward_batch(nodes, graph))
        self.net.train()
        return logits.data.argmax(axis=1)
