"""Node2Vec baseline (Grover & Leskovec, 2016).

Unsupervised: biased second-order random walks feed a skip-gram objective
with negative sampling (SGNS), optimized with hand-rolled numpy gradients
(the classic formulation — no autograd needed, and it keeps the baseline
fast like the reference implementation).  A logistic-regression head is then
fit on the frozen embeddings of labeled training nodes, matching the paper's
protocol ("Node2Vec ... is trained in a solely unsupervised manner").

Transductive only: embeddings are indexed by node identity, so unseen nodes
have no representation — the paper excludes Node2Vec from the inductive
comparison for exactly this reason.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaseClassifier
from repro.graph import HeteroGraph, node2vec_walk
from repro.nn import Linear
from repro.optim import Adam
from repro.tensor import Tensor, functional as F
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class Node2Vec(BaseClassifier):
    """Biased random walks + SGNS embeddings + logistic-regression head."""

    name = "node2vec"
    supports_inductive = False

    def __init__(
        self,
        dim: int = 32,
        walk_length: int = 10,
        walks_per_node: int = 3,
        window: int = 3,
        negatives: int = 2,
        p: float = 1.0,
        q: float = 1.0,
        learning_rate: float = 0.025,
        classifier_epochs: int = 100,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.negatives = negatives
        self.p = p
        self.q = q
        self.learning_rate = learning_rate
        self.classifier_epochs = classifier_epochs
        rngs = spawn_rngs(seed, 3)
        self._rng = new_rng(rngs[0])
        self._head_rng = rngs[1]
        self._init_rng = new_rng(rngs[2])
        self.embeddings: Optional[np.ndarray] = None
        self.head: Optional[Linear] = None

    def _build(self, graph: HeteroGraph) -> None:
        n = graph.num_nodes
        self.embeddings = (self._init_rng.random((n, self.dim)) - 0.5) / self.dim
        self._context = np.zeros((n, self.dim))
        self.head = Linear(self.dim, graph.num_classes, rng=self._head_rng)
        self._head_optimizer = Adam(self.head.parameters(), lr=0.05)

    def _on_rebind(self, graph: HeteroGraph) -> None:
        raise ValueError(
            "node2vec embeds nodes by identity and cannot be rebound to a "
            "different graph (partition training is unsupported)"
        )

    def _train_epoch(self, train_nodes: np.ndarray) -> float:
        """One epoch = one pass of walks over all nodes + SGNS updates,
        followed by refreshing the logistic head on the training labels."""
        graph = self.graph
        total_loss = 0.0
        pairs = 0
        lr = self.learning_rate
        for start in self._rng.permutation(graph.num_nodes):
            for _ in range(self.walks_per_node):
                walk = node2vec_walk(
                    graph, int(start), self.walk_length, p=self.p, q=self.q,
                    rng=self._rng,
                )
                loss, count = self._sgns_update(walk, lr)
                total_loss += loss
                pairs += count
        self._fit_head(train_nodes)
        return total_loss / max(pairs, 1)

    def _sgns_update(self, walk: np.ndarray, lr: float):
        """Skip-gram with negative sampling over one walk (manual grads)."""
        emb, ctx = self.embeddings, self._context
        rng = self._rng
        n = self.graph.num_nodes
        loss = 0.0
        pairs = 0
        for center_pos, center in enumerate(walk):
            lo = max(0, center_pos - self.window)
            hi = min(walk.size, center_pos + self.window + 1)
            for context_pos in range(lo, hi):
                if context_pos == center_pos:
                    continue
                target = walk[context_pos]
                negatives = rng.integers(0, n, size=self.negatives)
                samples = np.concatenate(([target], negatives))
                labels = np.zeros(samples.size)
                labels[0] = 1.0
                vectors = ctx[samples]  # (1+neg, dim)
                scores = vectors @ emb[center]
                sig = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
                grad_scores = sig - labels  # d loss / d score
                grad_center = grad_scores @ vectors
                ctx[samples] -= lr * np.outer(grad_scores, emb[center])
                emb[center] -= lr * grad_center
                loss += float(
                    -np.log(np.clip(sig[0], 1e-10, 1))
                    - np.log(np.clip(1 - sig[1:], 1e-10, 1)).sum()
                )
                pairs += 1
        return loss, pairs

    def _fit_head(self, train_nodes: np.ndarray) -> None:
        features = Tensor(self.embeddings[train_nodes])
        labels = self.graph.labels[train_nodes]
        for _ in range(self.classifier_epochs):
            self._head_optimizer.zero_grad()
            loss = F.cross_entropy(self.head(features), labels)
            loss.backward()
            self._head_optimizer.step()

    def _embed(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        return self.embeddings[nodes]

    def _predict(self, nodes: np.ndarray, graph: HeteroGraph) -> np.ndarray:
        logits = self.head(Tensor(self.embeddings[nodes]))
        return logits.data.argmax(axis=1)
