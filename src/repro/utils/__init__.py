"""Shared utilities: deterministic RNG handling, timing, run logging."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timing import Timer, time_call

__all__ = ["RngMixin", "new_rng", "spawn_rngs", "Timer", "time_call"]
