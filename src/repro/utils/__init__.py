"""Shared utilities: deterministic RNG handling.

``Timer`` / ``time_call`` moved to :mod:`repro.obs`; they are re-exported
here (via the deprecated :mod:`repro.utils.timing` alias) for compatibility.
"""

from repro.obs.timing import Timer, time_call
from repro.utils.rng import RngMixin, new_rng, spawn_rngs

__all__ = ["RngMixin", "new_rng", "spawn_rngs", "Timer", "time_call"]
