"""Deterministic random-number management.

Every stochastic component in the library (samplers, initializers, trainers,
dataset generators) takes either a seed or a ``numpy.random.Generator`` so
experiments are exactly reproducible.  Nothing in the library touches numpy's
global random state.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is given already."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Useful when an experiment needs separate streams (e.g. one per model in a
    benchmark sweep) that stay reproducible regardless of call order.
    """
    root = new_rng(seed)
    return [np.random.default_rng(s) for s in root.integers(0, 2**63 - 1, size=count)]


class RngMixin:
    """Mixin giving a class a lazily created private ``self.rng``."""

    _rng: Optional[np.random.Generator] = None

    def seed(self, seed: SeedLike) -> None:
        """(Re)seed this object's private generator."""
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(None)
        return self._rng
