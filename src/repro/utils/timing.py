"""Deprecated alias — the timing helpers moved to :mod:`repro.obs.timing`.

Import :class:`~repro.obs.timing.Timer` / :func:`~repro.obs.timing.time_call`
from ``repro.obs`` instead; this module re-exports them so existing imports
keep working.
"""

from __future__ import annotations

from repro.obs.timing import Timer, time_call

__all__ = ["Timer", "time_call"]
