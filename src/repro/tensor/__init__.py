"""A from-scratch reverse-mode automatic differentiation engine on numpy.

This package is the computational substrate for every model in the
reproduction (WIDEN and all baselines).  It provides:

- :class:`~repro.tensor.tensor.Tensor` — an ndarray wrapper that records the
  operations applied to it and can backpropagate gradients through them.
- :mod:`~repro.tensor.ops` — broadcasting-aware primitive operations.
- :mod:`~repro.tensor.functional` — composite neural-network functions
  (softmax, attention, cross-entropy, ...).

The design mirrors the core of PyTorch's autograd at a much smaller scale:
each operation returns a new ``Tensor`` holding a closure that knows how to
push its output gradient back to the operation's inputs, and
``Tensor.backward()`` runs those closures in reverse topological order.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.ops import get_scatter_thresholds, set_scatter_thresholds
from repro.tensor.tuning import run_tuning
from repro.tensor import ops
from repro.tensor import functional
from repro.tensor import kernels
from repro.tensor.kernels import (
    get_forward_selection,
    run_kernel_tuning,
    set_forward_selection,
)

# Apply this host's measured kernel-selection table (scatter-add backends,
# padded-vs-sparse forward crossover) if one was persisted by
# ``python -m repro tune-kernels``.  Explicit REPRO_* env vars win over the
# table; a missing or invalid table leaves the built-in defaults.
_KERNEL_TABLE_APPLIED = kernels.auto_apply()

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "get_scatter_thresholds",
    "set_scatter_thresholds",
    "get_forward_selection",
    "set_forward_selection",
    "run_tuning",
    "run_kernel_tuning",
    "ops",
    "functional",
    "kernels",
]
