"""The :class:`Tensor` class: an ndarray with reverse-mode autodiff.

A ``Tensor`` wraps a ``numpy.ndarray`` and, when ``requires_grad`` is set,
records the parent tensors and a backward closure for every operation applied
to it.  Calling :meth:`Tensor.backward` on a scalar result walks the recorded
graph in reverse topological order and accumulates gradients into the
``grad`` attribute of every tensor that requires them.

Gradients are plain ``numpy.ndarray`` objects (not tensors), so higher-order
differentiation is intentionally out of scope — none of the reproduced models
need it.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

Number = Union[int, float, np.floating, np.integer]
TensorLike = Union["Tensor", Number, np.ndarray, Sequence]


class _GradMode(threading.local):
    """Per-thread grad-recording flag.

    Thread-local because concurrent serving (``repro.cluster`` shard workers)
    runs ``no_grad`` inference on worker threads while the main thread may
    keep training: a process-global flag would let one thread's ``no_grad``
    exit re-enable (or permanently disable) recording under another's feet.
    """

    enabled = True


_GRAD_MODE = _GradMode()

# Op-level profiler hook (see repro.obs.profiler.OpProfiler).  ``from_op`` is
# the one funnel every forward operation passes through, and ``backward``
# invokes every recorded closure, so these two sites see the whole engine.
# When no profiler is installed the cost is one ``is not None`` check.
_PROFILER = None


def set_profiler(profiler) -> None:
    """Install (or, with ``None``, remove) the op-level profiler hook."""
    global _PROFILER
    _PROFILER = profiler


def get_profiler():
    """The currently installed op-level profiler, or ``None``."""
    return _PROFILER


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_MODE.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (for inference/eval).

    The flag is per-thread, so concurrent shard workers can run inference
    without toggling grad recording for each other (or for a training loop
    on the main thread)."""
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


class Tensor:
    """An n-dimensional array supporting reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Stored as ``float64`` unless an
        integer/bool array is given explicitly (those never require grad).
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype.kind == "f":
            array = array.astype(np.float64, copy=False)
        elif requires_grad:
            raise TypeError(
                f"only floating-point tensors can require grad, got {array.dtype}"
            )
        self.data: np.ndarray = array
        self.requires_grad = bool(requires_grad) and _GRAD_MODE.enabled
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        name: Optional[str] = None,
    ) -> "Tensor":
        """Create the result tensor of an operation.

        ``backward`` receives the gradient of the loss w.r.t. this result and
        must accumulate into each parent via :meth:`accumulate_grad`.  The
        graph edge is only recorded when grad mode is on and at least one
        parent requires grad.
        """
        parents = tuple(parents)
        needs_grad = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad, name=name)
        if needs_grad:
            out._parents = parents
            out._backward = backward
        if _PROFILER is not None:
            _PROFILER.record_op(name, out.data, parents)
        return out

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` (no-op if not required)."""
        if not self.requires_grad:
            return
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.data.shape} for {self!r}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1 for scalar tensors; non-scalar roots must pass
        an explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order = self._topological_order()
        self.accumulate_grad(grad)
        profiler = _PROFILER
        if profiler is None:
            for node in reversed(order):
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)
        else:
            # Backward closures only touch numpy (they never create tensors),
            # so per-closure wall time is pure self-time for the op.
            for node in reversed(order):
                if node._backward is not None and node.grad is not None:
                    start = time.perf_counter()
                    node._backward(node.grad)
                    profiler.record_backward(
                        node.name, time.perf_counter() - start
                    )

    def _topological_order(self) -> list:
        """Return nodes reachable from ``self`` in topological order (iterative)."""
        order: list = []
        visited: set = set()
        # Iterative DFS with an explicit stack; graphs from long training
        # loops can exceed Python's recursion limit otherwise.
        stack: list = [(self, iter(self._parents))]
        visited.add(id(self))
        while stack:
            node, parents = stack[-1]
            advanced = False
            for parent in parents:
                if id(parent) not in visited:
                    visited.add(id(parent))
                    stack.append((parent, iter(parent._parents)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return order

    def zero_grad(self) -> None:
        """Reset accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    # ------------------------------------------------------------------
    # ndarray-ish conveniences
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view; do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    @staticmethod
    def _item_error() -> float:
        raise ValueError("item() requires a single-element tensor")

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad}{label})"

    # ------------------------------------------------------------------
    # Operator overloads (implemented in ops.py to avoid circular logic)
    # ------------------------------------------------------------------

    def __add__(self, other: TensorLike) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: TensorLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, other)

    def __rsub__(self, other: TensorLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(other, self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: Number) -> "Tensor":
        from repro.tensor import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from repro.tensor import ops

        return ops.take(self, index)

    # Reductions / shapes as methods for fluency.

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor import ops

        return ops.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self, axes)


def as_tensor(value: TensorLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
