"""Per-host kernel-selection table: measured crossovers, persisted once.

Two families of backend decisions are host-dependent:

- the scatter-add backward backends (``ufunc.at`` vs dense one-hot gemm vs
  flat bincount — :func:`repro.tensor.ops._scatter_add_rows`), and
- the minibatch forward kernel (padded ``[B, L_max, d]`` grids vs flat CSR
  segment ops) picked by ``forward_mode="auto"`` from a batch's would-be
  padding waste.

``python -m repro tune-kernels`` micro-sweeps both on the current machine
(:mod:`repro.tensor.tuning`) and persists the recommendations as a
versioned JSON table under ``~/.cache/repro/kernel_table.json`` (honoring
``XDG_CACHE_HOME``; the ``REPRO_KERNEL_TABLE`` env var overrides the
path).  ``repro.tensor`` auto-applies the table at import, so every
process on the host — trainer, serving shards, benchmarks — runs with the
measured crossovers without any per-run setup.

Precedence: explicit environment variables (``REPRO_SCATTER_*``,
``REPRO_SPARSE_MIN_WASTE``) always win over the table; the table wins
over the built-in defaults.  Unreadable, malformed, or version-mismatched
tables are ignored (the defaults are safe everywhere) — a stale table
must never break import.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Dict, Optional

from repro.tensor import ops

KERNEL_TABLE_VERSION = 1

ENV_TABLE_PATH = "REPRO_KERNEL_TABLE"
ENV_SPARSE_MIN_WASTE = "REPRO_SPARSE_MIN_WASTE"

# Padding-waste fraction at which "auto" minibatches switch from the
# padded grids to the CSR kernels.  The default is conservative: gemm
# over modest padding beats the segment ops' extra index work, so only
# visibly skewed batches route sparse until a host sweep says otherwise.
_FORWARD_DEFAULTS = {"sparse_min_waste": 0.5}


def _forward_from_env() -> tuple:
    selection = dict(_FORWARD_DEFAULTS)
    env_keys = set()
    raw = os.environ.get(ENV_SPARSE_MIN_WASTE)
    if raw is not None:
        try:
            value = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_SPARSE_MIN_WASTE} must be a float, got {raw!r}"
            ) from exc
        if not 0.0 <= value <= 1.0:
            raise ValueError(
                f"{ENV_SPARSE_MIN_WASTE} must be in [0, 1], got {value}"
            )
        selection["sparse_min_waste"] = value
        env_keys.add("sparse_min_waste")
    return selection, env_keys


_FORWARD_SELECTION, _FORWARD_ENV_KEYS = _forward_from_env()


def get_forward_selection() -> Dict[str, float]:
    """The active forward kernel-selection thresholds (a copy)."""
    return dict(_FORWARD_SELECTION)


def set_forward_selection(
    sparse_min_waste: Optional[float] = None,
) -> Dict[str, float]:
    """Override the forward-selection thresholds; returns the active values."""
    if sparse_min_waste is not None:
        value = float(sparse_min_waste)
        if not 0.0 <= value <= 1.0:
            raise ValueError(
                f"sparse_min_waste must be in [0, 1], got {value}"
            )
        _FORWARD_SELECTION["sparse_min_waste"] = value
    return get_forward_selection()


def host_fingerprint() -> Dict[str, Any]:
    """What the table was measured on — informational, never enforced.

    Crossovers drift with BLAS builds and core counts, not with hostnames;
    refusing a copied table would only force needless re-sweeps.
    """
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def table_path(path=None) -> Path:
    """Resolve the table location: explicit arg > env var > cache default."""
    if path is not None:
        return Path(path)
    env = os.environ.get(ENV_TABLE_PATH)
    if env:
        return Path(env)
    cache = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache) if cache else Path.home() / ".cache"
    return base / "repro" / "kernel_table.json"


def load_table(path=None) -> Optional[Dict[str, Any]]:
    """Read and validate the table; ``None`` on absent/garbage/mismatch."""
    resolved = table_path(path)
    try:
        with open(resolved) as handle:
            table = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(table, dict):
        return None
    if table.get("version") != KERNEL_TABLE_VERSION:
        return None
    return table


def save_table(table: Dict[str, Any], path=None) -> Path:
    resolved = table_path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    with open(resolved, "w") as handle:
        json.dump(table, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return resolved


def apply_table(table: Dict[str, Any]) -> Dict[str, Any]:
    """Install a table's thresholds, skipping anything the env pinned.

    Returns what was actually applied, keyed by family — empty when every
    value was env-pinned or absent.
    """
    applied: Dict[str, Any] = {}
    scatter = table.get("scatter")
    if isinstance(scatter, dict):
        env_keys = ops.get_scatter_env_keys()
        kwargs = {
            key: int(scatter[key])
            for key in ("sparse_min_rows", "dense_max_cells")
            if key in scatter and key not in env_keys
        }
        if kwargs:
            ops.set_scatter_thresholds(**kwargs)
            applied["scatter"] = kwargs
    forward = table.get("forward")
    if (
        isinstance(forward, dict)
        and "sparse_min_waste" in forward
        and "sparse_min_waste" not in _FORWARD_ENV_KEYS
    ):
        value = float(forward["sparse_min_waste"])
        set_forward_selection(sparse_min_waste=value)
        applied["forward"] = {"sparse_min_waste": value}
    return applied


def auto_apply(path=None) -> Optional[Dict[str, Any]]:
    """Import-time hook: apply the host table if present and valid."""
    table = load_table(path)
    if table is None:
        return None
    try:
        return apply_table(table)
    except (TypeError, ValueError):
        # A hand-edited table with out-of-range values must not break
        # import; the defaults are safe everywhere.
        return None


def build_table(dim: int = 64, repeats: int = 30) -> Dict[str, Any]:
    """Run both host sweeps and assemble a persistable table."""
    from repro.tensor import tuning

    scatter_report = tuning.run_tuning(dim=dim, repeats=repeats)
    forward_rows = tuning.sweep_forward_crossover(dim=dim, repeats=repeats)
    return {
        "version": KERNEL_TABLE_VERSION,
        "host": host_fingerprint(),
        "dim": dim,
        "repeats": repeats,
        "scatter": scatter_report["recommended"],
        "forward": {
            "sparse_min_waste": tuning.recommend_forward(forward_rows)
        },
        "sweeps": {
            "scatter": {
                "sparse_sweep": scatter_report["sparse_sweep"],
                "dense_sweep": scatter_report["dense_sweep"],
            },
            "forward": forward_rows,
        },
    }


def run_kernel_tuning(
    dim: int = 64,
    repeats: int = 30,
    apply: bool = True,
    write: bool = True,
    path=None,
) -> Dict[str, Any]:
    """The ``tune-kernels`` entry point: sweep, persist, apply.

    Subsumes ``tune-scatter``: one invocation measures the scatter-add
    crossovers *and* the padded-vs-sparse forward crossover, writes the
    versioned per-host table, and installs the thresholds in this process
    (env-pinned values stay untouched).
    """
    table = build_table(dim=dim, repeats=repeats)
    report: Dict[str, Any] = {"table": table, "path": None, "applied": None}
    if write:
        report["path"] = str(save_table(table, path))
    if apply:
        report["applied"] = apply_table(table)
    return report


def format_table_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a :func:`run_kernel_tuning` report."""
    table = report["table"]
    lines = [
        "kernel-selection table "
        f"(version {table['version']}, dim {table['dim']})",
        f"  host: {table['host']}",
        f"  scatter: {table['scatter']}",
        f"  forward: {table['forward']}",
    ]
    for row in table["sweeps"]["forward"]:
        winner = "sparse" if row["sparse_s"] < row["padded_s"] else "padded"
        lines.append(
            f"    waste={row['waste']:.2f}  padded={row['padded_s']:.6f}s  "
            f"sparse={row['sparse_s']:.6f}s  -> {winner}"
        )
    if report["path"]:
        lines.append(f"  wrote {report['path']}")
    if report["applied"]:
        lines.append(f"  applied {report['applied']}")
    elif report["applied"] is not None:
        lines.append("  applied nothing (env-pinned)")
    return "\n".join(lines)
