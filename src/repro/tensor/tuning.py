"""Micro-sweep for the scatter-add backend crossovers (``tune-scatter``).

The backward of the batched gather kernels picks between three scatter-add
backends (:func:`repro.tensor.ops._scatter_add_rows`): ``np.add.at`` for
tiny scatters, a dense one-hot gemm when the selector fits in
``dense_max_cells``, and a flat element-level ``np.bincount`` otherwise.
The shipped crossover points were measured on one reference machine; this
module re-measures them on *this* machine and prints the
``REPRO_SCATTER_*`` environment settings that make the defaults match.

The sweep times each backend directly (not through the dispatcher), so the
currently-active thresholds never bias the measurement.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.tensor.ops import (
    _SCATTER_DEFAULTS,
    get_scatter_thresholds,
    set_scatter_thresholds,
)

ENV_VARS = {
    "sparse_min_rows": "REPRO_SCATTER_SPARSE_MIN_ROWS",
    "dense_max_cells": "REPRO_SCATTER_DENSE_MAX_CELLS",
}

# Gathered-row counts around the expected ufunc/vectorized crossover (a few
# dozen rows) and destination sizes bracketing the gemm/bincount handoff.
SPARSE_SWEEP_M = (4, 8, 16, 32, 64, 128, 256)
DENSE_SWEEP_ROWS = (8, 32, 128, 512, 2048)


def _scatter_ufunc(num_rows: int, index: np.ndarray, grad: np.ndarray) -> np.ndarray:
    out = np.zeros((num_rows, grad.shape[1]), dtype=grad.dtype)
    np.add.at(out, index, grad)
    return out


def _scatter_dense(num_rows: int, index: np.ndarray, grad: np.ndarray) -> np.ndarray:
    onehot = np.zeros((index.size, num_rows))
    onehot[np.arange(index.size), index] = 1.0
    return onehot.T @ grad


def _scatter_bincount(num_rows: int, index: np.ndarray, grad: np.ndarray) -> np.ndarray:
    d = grad.shape[1]
    element_index = (index[:, np.newaxis] * d + np.arange(d)).ravel()
    return np.bincount(
        element_index, weights=grad.ravel(), minlength=num_rows * d
    ).reshape(num_rows, d)


_BACKENDS = {
    "ufunc": _scatter_ufunc,
    "dense": _scatter_dense,
    "bincount": _scatter_bincount,
}


def _time_backend(
    backend: str, num_rows: int, m: int, dim: int, repeats: int, rng: np.random.Generator
) -> float:
    """Median wall time of one backend at one shape (seconds)."""
    fn = _BACKENDS[backend]
    index = rng.integers(0, num_rows, size=m)
    grad = rng.standard_normal((m, dim))
    fn(num_rows, index, grad)  # warm up (allocator, BLAS thread pool)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(num_rows, index, grad)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def sweep_sparse_min_rows(
    dim: int = 64, num_rows: int = 4096, repeats: int = 30, rng: Optional[np.random.Generator] = None
) -> List[Dict[str, float]]:
    """Time ufunc vs. the best vectorized backend across gathered-row counts.

    ``num_rows`` is large enough that the dense path is out of budget at
    every swept ``m``, matching the hot gather shapes (node-feature rows),
    so "vectorized" here means bincount.
    """
    rng = rng or np.random.default_rng(0)
    rows = []
    for m in SPARSE_SWEEP_M:
        ufunc = _time_backend("ufunc", num_rows, m, dim, repeats, rng)
        bincount = _time_backend("bincount", num_rows, m, dim, repeats, rng)
        rows.append(
            {
                "m": m,
                "ufunc_s": ufunc,
                "bincount_s": bincount,
                "winner": "bincount" if bincount < ufunc else "ufunc",
            }
        )
    return rows


def sweep_dense_max_cells(
    dim: int = 64, m: int = 256, repeats: int = 30, rng: Optional[np.random.Generator] = None
) -> List[Dict[str, float]]:
    """Time dense gemm vs. bincount across destination sizes.

    Small destinations are the edge-type-table backward; large ones are the
    node-feature backward where the one-hot selector stops paying for
    itself.
    """
    rng = rng or np.random.default_rng(1)
    rows = []
    for num_rows in DENSE_SWEEP_ROWS:
        dense = _time_backend("dense", num_rows, m, dim, repeats, rng)
        bincount = _time_backend("bincount", num_rows, m, dim, repeats, rng)
        rows.append(
            {
                "num_rows": num_rows,
                "m": m,
                "cells": num_rows * m,
                "dense_s": dense,
                "bincount_s": bincount,
                "winner": "dense" if dense < bincount else "bincount",
            }
        )
    return rows


def recommend(sparse_rows: List[dict], dense_rows: List[dict]) -> Dict[str, int]:
    """Crossover thresholds implied by the sweep, defaults as fallback.

    ``sparse_min_rows`` is the smallest swept ``m`` from which bincount
    wins at every larger size (a single noisy win below the real crossover
    must not drag the threshold down).  ``dense_max_cells`` is the largest
    one-hot size at which the gemm still won.
    """
    sparse_min_rows = _SCATTER_DEFAULTS["sparse_min_rows"]
    for i, row in enumerate(sparse_rows):
        if all(r["winner"] == "bincount" for r in sparse_rows[i:]):
            sparse_min_rows = int(row["m"])
            break
    else:
        # ufunc never loses its lead at the swept sizes: disable the
        # vectorized paths for everything below the largest swept size.
        sparse_min_rows = int(sparse_rows[-1]["m"]) * 2
    dense_wins = [r["cells"] for r in dense_rows if r["winner"] == "dense"]
    dense_max_cells = int(max(dense_wins)) if dense_wins else 0
    return {"sparse_min_rows": sparse_min_rows, "dense_max_cells": dense_max_cells}


def run_tuning(
    dim: int = 64, repeats: int = 30, apply: bool = False
) -> Dict[str, object]:
    """Full sweep + recommendation; optionally applies it to this process."""
    sparse_rows = sweep_sparse_min_rows(dim=dim, repeats=repeats)
    dense_rows = sweep_dense_max_cells(dim=dim, repeats=repeats)
    recommended = recommend(sparse_rows, dense_rows)
    report = {
        "dim": dim,
        "repeats": repeats,
        "defaults": dict(_SCATTER_DEFAULTS),
        "active_before": get_scatter_thresholds(),
        "sparse_sweep": sparse_rows,
        "dense_sweep": dense_rows,
        "recommended": recommended,
        "env": [
            f"export {ENV_VARS[key]}={value}"
            for key, value in sorted(recommended.items())
        ],
    }
    if apply:
        report["active_after"] = set_scatter_thresholds(**recommended)
    return report


# ----------------------------------------------------------------------
# Padded vs sparse forward crossover (``tune-kernels``)
# ----------------------------------------------------------------------
#
# The ``forward_mode="auto"`` dispatch needs one number per host: the
# padding-waste fraction at which the CSR segment kernels overtake the
# padded-grid attention.  The sweep times a representative attention stage
# (key/value projection, scoring, softmax, weighted aggregation) both ways
# over the same segment geometry at several waste levels.

WASTE_SWEEP = (0.0, 0.2, 0.35, 0.5, 0.65, 0.8)
_FORWARD_BATCH = 64
_FORWARD_WIDTH = 24


def _waste_lengths(
    batch: int, width: int, waste: float, rng: np.random.Generator
) -> np.ndarray:
    """Segment lengths whose padded grid wastes ~``waste`` of its slots."""
    target_mean = max(1.0, (1.0 - waste) * width)
    lengths = np.clip(
        rng.poisson(target_mean, batch), 1, width
    ).astype(np.int64)
    # Pin one segment to the full width so the padded grid is `width` wide
    # regardless of the draw — that is what skew does on real graphs.
    lengths[int(rng.integers(batch))] = width
    return lengths


def _time_forward(run, repeats: int) -> float:
    run()  # warm up (allocator, BLAS thread pool)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def sweep_forward_crossover(
    dim: int = 64,
    batch: int = _FORWARD_BATCH,
    width: int = _FORWARD_WIDTH,
    repeats: int = 30,
    rng: Optional[np.random.Generator] = None,
) -> List[Dict[str, float]]:
    """Time the padded vs sparse attention stage across waste levels."""
    from repro.tensor import functional as functional_mod
    from repro.tensor import ops as ops_mod
    from repro.tensor.tensor import Tensor, no_grad

    rng = rng or np.random.default_rng(2)
    w_key = rng.standard_normal((dim, dim))
    w_value = rng.standard_normal((dim, dim))
    rows = []
    for waste in WASTE_SWEEP:
        lengths = _waste_lengths(batch, width, waste, rng)
        offsets = np.zeros(batch + 1, np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        flat = rng.standard_normal((total, dim))
        query = rng.standard_normal((batch, dim))
        seg_ids = np.repeat(np.arange(batch, dtype=np.int64), lengths)
        # Padded operands, identical convention to pack_batch: zero rows
        # beyond each segment's length, additive -inf mask.
        padded = np.zeros((batch, width, dim))
        valid = np.arange(width) < lengths[:, np.newaxis]
        padded[valid] = flat
        mask = np.where(valid, 0.0, -np.inf)[:, np.newaxis, :]
        scale = np.sqrt(dim)

        def run_padded():
            with no_grad():
                packs = Tensor(padded)
                k = ops_mod.matmul(packs, Tensor(w_key))
                v = ops_mod.matmul(packs, Tensor(w_value))
                q = Tensor(query[:, np.newaxis, :])
                scores = ops_mod.matmul(q, k, transpose_b=True)
                weights = functional_mod.masked_softmax(
                    scores, mask, scale=scale
                )
                ops_mod.matmul(weights, v)

        def run_sparse():
            with no_grad():
                packs = Tensor(flat)
                k = ops_mod.matmul(packs, Tensor(w_key))
                v = ops_mod.matmul(packs, Tensor(w_value))
                scores = ops_mod.sddmm(Tensor(query), k, seg_ids)
                weights = ops_mod.segment_softmax(scores, offsets, scale=scale)
                ops_mod.segment_matmul(weights, v, None, offsets)

        achieved = 1.0 - total / (batch * width)
        rows.append(
            {
                "waste": float(achieved),
                "target_waste": float(waste),
                "padded_s": _time_forward(run_padded, repeats),
                "sparse_s": _time_forward(run_sparse, repeats),
            }
        )
    rows.sort(key=lambda row: row["waste"])
    return rows


def recommend_forward(rows: List[dict]) -> float:
    """``sparse_min_waste`` implied by the sweep.

    The smallest swept waste from which sparse wins at every higher level
    — one noisy win below the real crossover must not route near-uniform
    batches off the gemm path.  1.0 (never) when sparse never sustains a
    win; 0.0 (always) when it wins everywhere.
    """
    for i, row in enumerate(rows):
        if all(r["sparse_s"] < r["padded_s"] for r in rows[i:]):
            return float(row["waste"])
    return 1.0


def format_report(report: Dict[str, object]) -> str:
    """The sweep as a printable table plus the env export lines."""
    lines = [
        f"scatter-add backend sweep (dim={report['dim']}, "
        f"{report['repeats']} repeats, median wall time)",
        "",
        "ufunc vs bincount by gathered rows (num_rows=4096)",
        f"{'m':>6} {'ufunc us':>10} {'bincount us':>12} {'winner':>9}",
    ]
    for row in report["sparse_sweep"]:
        lines.append(
            f"{row['m']:>6} {row['ufunc_s'] * 1e6:>10.1f} "
            f"{row['bincount_s'] * 1e6:>12.1f} {row['winner']:>9}"
        )
    lines += [
        "",
        "dense gemm vs bincount by one-hot size (m=256)",
        f"{'rows':>6} {'cells':>9} {'dense us':>10} {'bincount us':>12} {'winner':>9}",
    ]
    for row in report["dense_sweep"]:
        lines.append(
            f"{row['num_rows']:>6} {row['cells']:>9} {row['dense_s'] * 1e6:>10.1f} "
            f"{row['bincount_s'] * 1e6:>12.1f} {row['winner']:>9}"
        )
    recommended = report["recommended"]
    defaults = report["defaults"]
    lines += [
        "",
        f"recommended: sparse_min_rows={recommended['sparse_min_rows']} "
        f"(default {defaults['sparse_min_rows']}), "
        f"dense_max_cells={recommended['dense_max_cells']} "
        f"(default {defaults['dense_max_cells']})",
        "",
        "to make these the process defaults:",
    ]
    lines += [f"  {line}" for line in report["env"]]
    return "\n".join(lines)
