"""Primitive differentiable operations on :class:`~repro.tensor.Tensor`.

Every function here takes tensors (or values coercible to tensors), computes
the forward result with numpy, and registers a backward closure via
``Tensor.from_op``.  Broadcasting in elementwise ops is handled by
:func:`_unbroadcast`, which sums a gradient back down to a parent's shape.
"""

from __future__ import annotations

import builtins
from typing import Optional, Sequence

import numpy as np

from repro.tensor.tensor import Tensor, as_tensor


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad, a.data.shape))
        b.accumulate_grad(_unbroadcast(grad, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="add")


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad, a.data.shape))
        b.accumulate_grad(_unbroadcast(-grad, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="sub")


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad * b.data, a.data.shape))
        b.accumulate_grad(_unbroadcast(grad * a.data, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="mul")


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad / b.data, a.data.shape))
        b.accumulate_grad(_unbroadcast(-grad * a.data / (b.data**2), b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="div")


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(-grad)

    return Tensor.from_op(-a.data, (a,), backward, name="neg")


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * exponent * a.data ** (exponent - 1.0))

    return Tensor.from_op(out_data, (a,), backward, name="power")


def exp(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out_data)

    return Tensor.from_op(out_data, (a,), backward, name="exp")


def log(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad / a.data)

    return Tensor.from_op(out_data, (a,), backward, name="log")


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * 0.5 / out_data)

    return Tensor.from_op(out_data, (a,), backward, name="sqrt")


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * (1.0 - out_data**2))

    return Tensor.from_op(out_data, (a,), backward, name="tanh")


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Numerically stable split on the sign of the input.
    out_data = np.where(
        a.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(a.data, 0, None))),
        np.exp(np.clip(a.data, None, 0)) / (1.0 + np.exp(np.clip(a.data, None, 0))),
    )

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor.from_op(out_data, (a,), backward, name="sigmoid")


def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward, name="relu")


def leaky_relu(a, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU, used by the GAT baseline's attention logits."""
    a = as_tensor(a)
    mask = a.data > 0
    slope = float(negative_slope)
    out_data = np.where(mask, a.data, slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * np.where(mask, 1.0, slope))

    return Tensor.from_op(out_data, (a,), backward, name="leaky_relu")


def maximum(a, b) -> Tensor:
    """Elementwise max of two tensors (relay-edge maxpool, Eq. 8 in paper).

    Ties route the gradient to the first argument, matching numpy's
    ``np.maximum`` forward tie-breaking being irrelevant for values but
    needing a deterministic choice for gradients.
    """
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad * take_a, a.data.shape))
        b.accumulate_grad(_unbroadcast(grad * ~take_a, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="maximum")


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------


def _expand_reduced(grad: np.ndarray, shape: tuple, axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape).copy() if keepdims or grad.shape != shape else grad
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % len(shape) for ax in axes)
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape).copy()


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_expand_reduced(grad, a.data.shape, axis, keepdims))

    return Tensor.from_op(out_data, (a,), backward, name="sum")


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_expand_reduced(grad, a.data.shape, axis, keepdims) / count)

    return Tensor.from_op(out_data, (a,), backward, name="mean")


def max(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    expanded = a.data.max(axis=axis, keepdims=True)
    mask = a.data == expanded
    # Split ties evenly so the gradient check stays exact.
    counts = mask.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        grad_full = _expand_reduced(grad, a.data.shape, axis, keepdims)
        a.accumulate_grad(grad_full * mask / counts)

    return Tensor.from_op(out_data, (a,), backward, name="max")


# ----------------------------------------------------------------------
# Linear algebra & shape manipulation
# ----------------------------------------------------------------------


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            if b.data.ndim == 1:
                # out = a @ b with vector b: grad_a[..., i, j] = grad[..., i] * b[j]
                grad_a = (
                    grad * b.data
                    if a.data.ndim == 1
                    else np.expand_dims(grad, -1) * b.data
                )
            else:
                grad_a = grad @ np.swapaxes(b.data, -1, -2)
            if a.data.ndim == 1 and grad_a.ndim > 1:
                grad_a = grad_a.sum(axis=tuple(range(grad_a.ndim - 1)))
            a.accumulate_grad(_unbroadcast(grad_a, a.data.shape))
        if b.requires_grad:
            if a.data.ndim == 1:
                grad_b = np.outer(a.data, grad) if b.data.ndim == 2 else a.data * grad
            elif b.data.ndim == 1:
                # grad_b[j] = sum over leading dims of a[..., j] * grad[...]
                grad_b = (a.data * np.expand_dims(grad, -1)).reshape(-1, b.data.shape[0]).sum(axis=0)
            else:
                grad_b = np.swapaxes(a.data, -1, -2) @ grad
            b.accumulate_grad(_unbroadcast(grad_b, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="matmul")


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(np.transpose(grad, inverse))

    return Tensor.from_op(out_data, (a,), backward, name="transpose")


def reshape(a, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad.reshape(a.data.shape))

    return Tensor.from_op(out_data, (a,), backward, name="reshape")


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (the paper's ``[·;·]`` and ``∥``)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [builtins.slice(None)] * grad.ndim
            index[axis] = builtins.slice(start, stop)
            tensor.accumulate_grad(grad[tuple(index)])

    return Tensor.from_op(out_data, tuple(tensors), backward, name="concat")


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            # np.ascontiguousarray promotes 0-d slabs to 1-d; reshape instead.
            tensor.accumulate_grad(np.array(slab).reshape(tensor.data.shape))

    return Tensor.from_op(out_data, tuple(tensors), backward, name="stack")


def take(a, index) -> Tensor:
    """Differentiable indexing/slicing (``a[index]``).

    Supports anything numpy's basic and integer-array indexing supports; the
    backward pass scatter-adds the gradient into the indexed positions, which
    correctly handles repeated indices (embedding lookups).
    """
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        grad_full = np.zeros_like(a.data)
        np.add.at(grad_full, index, grad)
        a.accumulate_grad(grad_full)

    return Tensor.from_op(out_data, (a,), backward, name="take")


def embedding_lookup(weight, indices: np.ndarray) -> Tensor:
    """Gather rows ``weight[indices]`` with scatter-add backward.

    ``indices`` is a plain integer ndarray (it is data, never differentiated).
    """
    weight = as_tensor(weight)
    indices = np.asarray(indices)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        grad_weight = np.zeros_like(weight.data)
        np.add.at(grad_weight, indices, grad)
        weight.accumulate_grad(grad_weight)

    return Tensor.from_op(out_data, (weight,), backward, name="embedding_lookup")


def slice(a, start: int, stop: int, axis: int = 0) -> Tensor:  # noqa: A001
    """Contiguous slice along one axis (cheaper backward than :func:`take`)."""
    a = as_tensor(a)
    index = [builtins.slice(None)] * a.data.ndim
    index[axis] = builtins.slice(start, stop)
    index = tuple(index)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        grad_full = np.zeros_like(a.data)
        grad_full[index] = grad
        a.accumulate_grad(grad_full)

    return Tensor.from_op(out_data, (a,), backward, name="slice")


def spmm(matrix, dense) -> Tensor:
    """Sparse-constant @ dense-tensor product (GCN-style propagation).

    ``matrix`` is a scipy sparse matrix treated as a constant (adjacency
    structure is data, not a parameter); gradients flow only to ``dense``.
    """
    dense = as_tensor(dense)
    out_data = np.asarray(matrix @ dense.data)
    transposed = matrix.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        dense.accumulate_grad(np.asarray(transposed @ grad))

    return Tensor.from_op(out_data, (dense,), backward, name="spmm")


def dropout_mask(a, mask: np.ndarray) -> Tensor:
    """Apply a precomputed (already scaled) dropout mask."""
    a = as_tensor(a)
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward, name="dropout")
