"""Primitive differentiable operations on :class:`~repro.tensor.Tensor`.

Every function here takes tensors (or values coercible to tensors), computes
the forward result with numpy, and registers a backward closure via
``Tensor.from_op``.  Broadcasting in elementwise ops is handled by
:func:`_unbroadcast`, which sums a gradient back down to a parent's shape.
"""

from __future__ import annotations

import builtins
import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.tensor.tensor import Tensor, as_tensor

# Backend crossover points for the scatter-add backward of the batched
# gather kernels.  The defaults were measured on one reference machine, so
# they are tunable: ``REPRO_SCATTER_SPARSE_MIN_ROWS`` /
# ``REPRO_SCATTER_DENSE_MAX_CELLS`` in the environment at import time, or
# :func:`set_scatter_thresholds` at runtime (e.g. after a quick sweep on the
# deployment host).
#
# - ``sparse_min_rows``: below this many gathered rows the bincount/one-hot
#   construction overhead outweighs the ``ufunc.at`` cost; measured
#   crossover is a few dozen rows.
# - ``dense_max_cells``: up to this many one-hot entries the scatter runs as
#   a dense gemm — for a small destination (the edge-type table) BLAS beats
#   CSR by another 4x.
_SCATTER_DEFAULTS = {"sparse_min_rows": 64, "dense_max_cells": 65536}


def _scatter_thresholds_from_env() -> tuple:
    thresholds = dict(_SCATTER_DEFAULTS)
    env_keys = set()
    for key, var in (
        ("sparse_min_rows", "REPRO_SCATTER_SPARSE_MIN_ROWS"),
        ("dense_max_cells", "REPRO_SCATTER_DENSE_MAX_CELLS"),
    ):
        raw = os.environ.get(var)
        if raw is None:
            continue
        try:
            value = int(raw)
        except ValueError as exc:
            raise ValueError(f"{var} must be an integer, got {raw!r}") from exc
        if value < 0:
            raise ValueError(f"{var} must be >= 0, got {value}")
        thresholds[key] = value
        env_keys.add(key)
    return thresholds, env_keys


_SCATTER_THRESHOLDS, _SCATTER_ENV_KEYS = _scatter_thresholds_from_env()


def get_scatter_env_keys() -> set:
    """Threshold keys pinned by ``REPRO_SCATTER_*`` environment variables.

    The per-host kernel-selection table (:mod:`repro.tensor.kernels`) must
    not override values the operator set explicitly — env wins over table.
    """
    return set(_SCATTER_ENV_KEYS)


def set_scatter_thresholds(
    sparse_min_rows: Optional[int] = None, dense_max_cells: Optional[int] = None
) -> Dict[str, int]:
    """Override the scatter-add backend crossovers; returns the active values.

    Pass only the thresholds to change; ``None`` leaves a value untouched.
    ``sparse_min_rows=0`` forces the vectorized backends for every size;
    a very large value forces ``np.add.at`` everywhere (the reference
    backend — useful for A/B timing on a new machine).
    """
    if sparse_min_rows is not None:
        if sparse_min_rows < 0:
            raise ValueError(f"sparse_min_rows must be >= 0, got {sparse_min_rows}")
        _SCATTER_THRESHOLDS["sparse_min_rows"] = int(sparse_min_rows)
    if dense_max_cells is not None:
        if dense_max_cells < 0:
            raise ValueError(f"dense_max_cells must be >= 0, got {dense_max_cells}")
        _SCATTER_THRESHOLDS["dense_max_cells"] = int(dense_max_cells)
    return dict(_SCATTER_THRESHOLDS)


def get_scatter_thresholds() -> Dict[str, int]:
    """The active scatter-add backend crossover thresholds (a copy)."""
    return dict(_SCATTER_THRESHOLDS)


def _scatter_add_rows(
    num_rows: int,
    index: np.ndarray,
    grad: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sum rows of ``grad`` into a zeroed ``(num_rows, d)`` matrix.

    ``index`` may have any shape; ``grad`` must be ``index.shape + (d,)``.
    Duplicate indices accumulate.  ``weights`` (same shape as ``index``)
    scales each scattered row.  ``np.ufunc.at`` is an order of magnitude
    slower than either vectorized formulation for the backward of the
    batched gather kernels, so large scatters run as ``onehot^T @ grad``
    when the one-hot selector is small (embedding-table backward) and as a
    flat element-level ``np.bincount`` otherwise — bincount's single C pass
    beats building a CSR selector by ~25% at the hot-path shapes.
    """
    flat_index = np.ascontiguousarray(index).ravel()
    flat_grad = grad.reshape(flat_index.size, -1)
    m = flat_index.size
    flat_weights = (
        np.ones(m) if weights is None
        else np.ascontiguousarray(weights, dtype=np.float64).ravel()
    )
    if m >= _SCATTER_THRESHOLDS["sparse_min_rows"]:
        if num_rows * m <= _SCATTER_THRESHOLDS["dense_max_cells"]:
            onehot = np.zeros((m, num_rows))
            onehot[np.arange(m), flat_index] = flat_weights
            return onehot.T @ flat_grad
        d = flat_grad.shape[1]
        weighted = (
            flat_grad if weights is None
            else flat_grad * flat_weights[:, np.newaxis]
        )
        element_index = (flat_index[:, np.newaxis] * d + np.arange(d)).ravel()
        return np.bincount(
            element_index, weights=weighted.ravel(), minlength=num_rows * d
        ).reshape(num_rows, d)
    if weights is not None:
        flat_grad = flat_grad * flat_weights[:, np.newaxis]
    out = np.zeros((num_rows, flat_grad.shape[1]), dtype=flat_grad.dtype)
    np.add.at(out, flat_index, flat_grad)
    return out


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad, a.data.shape))
        b.accumulate_grad(_unbroadcast(grad, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="add")


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad, a.data.shape))
        b.accumulate_grad(_unbroadcast(-grad, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="sub")


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad * b.data, a.data.shape))
        b.accumulate_grad(_unbroadcast(grad * a.data, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="mul")


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad / b.data, a.data.shape))
        b.accumulate_grad(_unbroadcast(-grad * a.data / (b.data**2), b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="div")


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(-grad)

    return Tensor.from_op(-a.data, (a,), backward, name="neg")


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * exponent * a.data ** (exponent - 1.0))

    return Tensor.from_op(out_data, (a,), backward, name="power")


def exp(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out_data)

    return Tensor.from_op(out_data, (a,), backward, name="exp")


def log(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad / a.data)

    return Tensor.from_op(out_data, (a,), backward, name="log")


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * 0.5 / out_data)

    return Tensor.from_op(out_data, (a,), backward, name="sqrt")


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * (1.0 - out_data**2))

    return Tensor.from_op(out_data, (a,), backward, name="tanh")


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Numerically stable split on the sign of the input.
    out_data = np.where(
        a.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(a.data, 0, None))),
        np.exp(np.clip(a.data, None, 0)) / (1.0 + np.exp(np.clip(a.data, None, 0))),
    )

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor.from_op(out_data, (a,), backward, name="sigmoid")


def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward, name="relu")


def leaky_relu(a, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU, used by the GAT baseline's attention logits."""
    a = as_tensor(a)
    mask = a.data > 0
    slope = float(negative_slope)
    out_data = np.where(mask, a.data, slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * np.where(mask, 1.0, slope))

    return Tensor.from_op(out_data, (a,), backward, name="leaky_relu")


def maximum(a, b) -> Tensor:
    """Elementwise max of two tensors (relay-edge maxpool, Eq. 8 in paper).

    Ties route the gradient to the first argument, matching numpy's
    ``np.maximum`` forward tie-breaking being irrelevant for values but
    needing a deterministic choice for gradients.
    """
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_unbroadcast(grad * take_a, a.data.shape))
        b.accumulate_grad(_unbroadcast(grad * ~take_a, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="maximum")


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------


def _expand_reduced(grad: np.ndarray, shape: tuple, axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape).copy() if keepdims or grad.shape != shape else grad
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % len(shape) for ax in axes)
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape).copy()


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_expand_reduced(grad, a.data.shape, axis, keepdims))

    return Tensor.from_op(out_data, (a,), backward, name="sum")


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(_expand_reduced(grad, a.data.shape, axis, keepdims) / count)

    return Tensor.from_op(out_data, (a,), backward, name="mean")


def max(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    expanded = a.data.max(axis=axis, keepdims=True)
    mask = a.data == expanded
    # Split ties evenly so the gradient check stays exact.
    counts = mask.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        grad_full = _expand_reduced(grad, a.data.shape, axis, keepdims)
        a.accumulate_grad(grad_full * mask / counts)

    return Tensor.from_op(out_data, (a,), backward, name="max")


# ----------------------------------------------------------------------
# Linear algebra & shape manipulation
# ----------------------------------------------------------------------


def matmul(a, b, transpose_b: bool = False) -> Tensor:
    """Matrix product with numpy's ``@`` semantics, including batching.

    Leading dimensions broadcast exactly as ``np.matmul``: ``(B, m, k) @
    (k, n)`` and ``(B, m, k) @ (B, k, n)`` both work, and the backward
    reduces broadcast gradients down to each operand's shape — one batched
    kernel instead of B small ones on the vectorized forward path.

    ``transpose_b=True`` computes ``a @ swapaxes(b, -1, -2)`` without
    materializing the transpose as a separate op — the gemm consumes the
    strided view directly (the attention-score pattern ``Q @ K^T``).
    """
    a, b = as_tensor(a), as_tensor(b)
    if transpose_b:
        if b.data.ndim < 2:
            raise ValueError("transpose_b requires b with at least 2 dims")
        b_data = np.swapaxes(b.data, -1, -2)
    else:
        b_data = b.data
    # Batched activations against one 2-D weight collapse to a single flat
    # gemm — one big BLAS call instead of a gufunc loop over the batch, and
    # the weight gradient below needs no broadcast-reduction temp.
    flatten = a.data.ndim > 2 and b_data.ndim == 2
    if flatten:
        k = a.data.shape[-1]
        out_data = (a.data.reshape(-1, k) @ b_data).reshape(
            a.data.shape[:-1] + (b_data.shape[-1],)
        )
    else:
        out_data = a.data @ b_data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            if b_data.ndim == 1:
                # out = a @ b with vector b: grad_a[..., i, j] = grad[..., i] * b[j]
                grad_a = (
                    grad * b_data
                    if a.data.ndim == 1
                    else np.expand_dims(grad, -1) * b_data
                )
            elif flatten:
                n = b_data.shape[-1]
                grad_a = (grad.reshape(-1, n) @ b_data.T).reshape(a.data.shape)
            else:
                grad_a = grad @ np.swapaxes(b_data, -1, -2)
            if a.data.ndim == 1 and grad_a.ndim > 1:
                grad_a = grad_a.sum(axis=tuple(range(grad_a.ndim - 1)))
            a.accumulate_grad(_unbroadcast(grad_a, a.data.shape))
        if b.requires_grad:
            if a.data.ndim == 1:
                grad_b = np.outer(a.data, grad) if b_data.ndim == 2 else a.data * grad
            elif b_data.ndim == 1:
                # grad_b[j] = sum over leading dims of a[..., j] * grad[...]
                grad_b = (a.data * np.expand_dims(grad, -1)).reshape(-1, b_data.shape[0]).sum(axis=0)
            elif flatten:
                grad_b = a.data.reshape(-1, a.data.shape[-1]).T @ grad.reshape(
                    -1, b_data.shape[-1]
                )
            else:
                grad_b = np.swapaxes(a.data, -1, -2) @ grad
            if transpose_b:
                grad_b = np.swapaxes(grad_b, -1, -2)
            b.accumulate_grad(_unbroadcast(grad_b, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward, name="matmul")


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(np.transpose(grad, inverse))

    return Tensor.from_op(out_data, (a,), backward, name="transpose")


def reshape(a, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad.reshape(a.data.shape))

    return Tensor.from_op(out_data, (a,), backward, name="reshape")


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (the paper's ``[·;·]`` and ``∥``)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [builtins.slice(None)] * grad.ndim
            index[axis] = builtins.slice(start, stop)
            tensor.accumulate_grad(grad[tuple(index)])

    return Tensor.from_op(out_data, tuple(tensors), backward, name="concat")


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            # np.ascontiguousarray promotes 0-d slabs to 1-d; reshape instead.
            tensor.accumulate_grad(np.array(slab).reshape(tensor.data.shape))

    return Tensor.from_op(out_data, tuple(tensors), backward, name="stack")


def take(a, index) -> Tensor:
    """Differentiable indexing/slicing (``a[index]``).

    Supports anything numpy's basic and integer-array indexing supports; the
    backward pass scatter-adds the gradient into the indexed positions, which
    correctly handles repeated indices (embedding lookups).
    """
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        grad_full = np.zeros_like(a.data)
        np.add.at(grad_full, index, grad)
        a.accumulate_grad(grad_full)

    return Tensor.from_op(out_data, (a,), backward, name="take")


def embedding_lookup(weight, indices: np.ndarray) -> Tensor:
    """Gather rows ``weight[indices]`` with scatter-add backward.

    ``indices`` is a plain integer ndarray (it is data, never differentiated).
    """
    weight = as_tensor(weight)
    indices = np.asarray(indices)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        weight.accumulate_grad(
            _scatter_add_rows(weight.data.shape[0], indices, grad)
        )

    return Tensor.from_op(out_data, (weight,), backward, name="embedding_lookup")


def pad_gather(a, index: np.ndarray, mask: np.ndarray) -> Tensor:
    """Gather rows of ``a`` into a padded batch and zero the padding — fused.

    ``a`` is a flat ``(n, d)`` row matrix; ``index`` an integer ndarray of
    shape ``(..., L)`` selecting one row per slot (padding slots may point
    anywhere, conventionally 0); ``mask`` a ``(..., L)`` array of 1.0 for
    valid slots and 0.0 for padding.  The output has shape ``(..., L, d)``
    with padded rows exactly zero, which is what keeps padded packs inert
    through attention (zero values, masked scores).

    One fused kernel replaces a ``take`` + broadcast ``mul`` pair on the
    batched hot path; the backward scatter-adds ``grad * mask`` so repeated
    row indices (shared neighbors across targets) accumulate correctly.
    """
    a = as_tensor(a)
    index = np.asarray(index)
    mask = np.asarray(mask, dtype=np.float64)
    if mask.shape != index.shape:
        raise ValueError(f"mask shape {mask.shape} != index shape {index.shape}")
    expanded = mask[..., np.newaxis]
    out_data = a.data[index] * expanded

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(
            _scatter_add_rows(a.data.shape[0], index, grad, weights=mask)
        )

    return Tensor.from_op(out_data, (a,), backward, name="pad_gather")


def pad_gather_mul(a, index: np.ndarray, mask: np.ndarray, edges,
                   dropout_mask: Optional[np.ndarray] = None) -> Tensor:
    """Fused message packaging: ``(a[index] * mask) ⊙ edges [⊙ dropout]``.

    The batched pack assembly of Eqs. 1-2 in one kernel: gather node rows
    into the padded grid, zero the padding, multiply by the edge-embedding
    grid and (in training) the precomputed inverted-dropout mask.  Operand
    shapes match :func:`pad_gather` plus ``edges`` broadcastable to the
    ``(..., L, d)`` output; ``dropout_mask`` is data, never differentiated.

    Keeps the same multiplication order as the unfused chain
    (``pad_gather`` → ``mul`` → ``dropout_mask``), so results are
    bit-identical while three op dispatches and two intermediates collapse
    into one.
    """
    a, edges = as_tensor(a), as_tensor(edges)
    index = np.asarray(index)
    mask = np.asarray(mask, dtype=np.float64)
    if mask.shape != index.shape:
        raise ValueError(f"mask shape {mask.shape} != index shape {index.shape}")
    expanded = mask[..., np.newaxis]
    gathered = a.data[index] * expanded
    product = gathered * edges.data
    out_data = product if dropout_mask is None else product * dropout_mask

    def backward(grad: np.ndarray) -> None:
        grad_eff = grad if dropout_mask is None else grad * dropout_mask
        if a.requires_grad:
            a.accumulate_grad(
                _scatter_add_rows(
                    a.data.shape[0], index, grad_eff * edges.data, weights=mask
                )
            )
        if edges.requires_grad:
            edges.accumulate_grad(
                _unbroadcast(grad_eff * gathered, edges.data.shape)
            )

    return Tensor.from_op(out_data, (a, edges), backward, name="pad_gather_mul")


# ----------------------------------------------------------------------
# CSR segment kernels (sparse message passing)
# ----------------------------------------------------------------------
#
# The padded path materializes [B, L_max, d] grids and pays for every zero
# slot; on skewed degree distributions most slots are padding.  These
# kernels work on flat CSR edge arrays instead: ``offsets`` is a
# ``(S + 1,)`` int array of segment boundaries into a flat axis of P
# entries (``offsets[0] == 0``, ``offsets[-1] == P``, every segment
# non-empty — WIDEN packs always contain at least the target/self row, and
# ``np.ufunc.reduceat`` needs strictly increasing boundaries).  Work is
# proportional to real (destination, neighbor) pairs, never to B * L_max.


def _segment_bounds(offsets, size: int) -> tuple:
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError(f"offsets must be 1-D and non-empty, got {offsets.shape}")
    if offsets[0] != 0 or offsets[-1] != size:
        raise ValueError(
            f"offsets must span [0, {size}], got [{offsets[0]}, {offsets[-1]}]"
        )
    lengths = np.diff(offsets)
    if lengths.size and lengths.min() <= 0:
        raise ValueError("every segment must be non-empty")
    return offsets, lengths


def gather_mul(a, index: np.ndarray, edges,
               dropout_mask: Optional[np.ndarray] = None) -> Tensor:
    """Sparse message packaging: ``a[index] ⊙ edges [⊙ dropout]`` — fused.

    The CSR counterpart of :func:`pad_gather_mul`: ``a`` is a flat
    ``(n, d)`` row matrix, ``index`` a 1-D ``(E,)`` array selecting one
    source row per edge, ``edges`` an ``(E, d)`` edge-embedding matrix.
    No validity mask — every entry is a real pair, so the output equals the
    padded kernel's valid slots bitwise (the padded path multiplies those
    slots by exactly 1.0).
    """
    a, edges = as_tensor(a), as_tensor(edges)
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-D, got shape {index.shape}")
    gathered = a.data[index]
    product = gathered * edges.data
    out_data = product if dropout_mask is None else product * dropout_mask

    def backward(grad: np.ndarray) -> None:
        grad_eff = grad if dropout_mask is None else grad * dropout_mask
        if a.requires_grad:
            a.accumulate_grad(
                _scatter_add_rows(a.data.shape[0], index, grad_eff * edges.data)
            )
        if edges.requires_grad:
            edges.accumulate_grad(
                _unbroadcast(grad_eff * gathered, edges.data.shape)
            )

    return Tensor.from_op(out_data, (a, edges), backward, name="gather_mul")


def sddmm(a, b, rows: np.ndarray, cols: Optional[np.ndarray] = None) -> Tensor:
    """Sampled dense-dense matmul: pairwise scores for real pairs only.

    ``out[p] = <a[rows[p]], b[cols[p]]>`` for ``(S_a, d)`` / ``(E, d)`` row
    matrices — the attention-logit kernel that replaces the dense
    ``query @ keys^T`` over padded grids.  ``cols=None`` means the identity
    pairing (``cols[p] == p``, requiring ``len(rows) == E``), which skips a
    fancy-gather of the whole key matrix on the common CSR-segment layout
    where every key participates exactly once.

    Backward reuses the measured scatter-add machinery: the gradient of
    each side is the other side's rows scaled by ``grad`` and scattered to
    the paired positions.
    """
    a, b = as_tensor(a), as_tensor(b)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1:
        raise ValueError(f"rows must be 1-D, got shape {rows.shape}")
    cols_arr = None if cols is None else np.asarray(cols, dtype=np.int64)
    if cols_arr is not None and cols_arr.shape != rows.shape:
        raise ValueError(f"cols shape {cols_arr.shape} != rows shape {rows.shape}")
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise ValueError("sddmm operands must be 2-D row matrices")
    if a.data.shape[1] != b.data.shape[1]:
        raise ValueError(
            f"inner dims differ: {a.data.shape[1]} vs {b.data.shape[1]}"
        )
    if cols_arr is None and rows.shape[0] != b.data.shape[0]:
        raise ValueError(
            f"identity pairing needs len(rows) == rows of b: "
            f"{rows.shape[0]} != {b.data.shape[0]}"
        )
    a_rows = a.data[rows]
    b_rows = b.data if cols_arr is None else b.data[cols_arr]
    out_data = np.einsum("pd,pd->p", a_rows, b_rows)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(
                _scatter_add_rows(a.data.shape[0], rows, b_rows, weights=grad)
            )
        if b.requires_grad:
            if cols_arr is None:
                b.accumulate_grad(a_rows * grad[:, np.newaxis])
            else:
                b.accumulate_grad(
                    _scatter_add_rows(
                        b.data.shape[0], cols_arr, a_rows, weights=grad
                    )
                )

    return Tensor.from_op(out_data, (a, b), backward, name="sddmm")


def segment_softmax(a, offsets, scale: Optional[float] = None) -> Tensor:
    """Numerically stable softmax over CSR segments of a flat score vector.

    Replaces :func:`~repro.tensor.functional.masked_softmax` over padded
    grids: each ``[offsets[s], offsets[s+1])`` slice of the 1-D input is
    one softmax.  ``scale`` divides the logits first (fused temperature,
    same semantics as the dense kernel).  Max-subtraction, exp and the
    normalizing sum all run segment-locally via ``np.ufunc.reduceat`` —
    work and memory are O(P), not O(S * L_max).
    """
    a = as_tensor(a)
    if a.data.ndim != 1:
        raise ValueError(f"segment_softmax input must be 1-D, got {a.data.shape}")
    offsets, lengths = _segment_bounds(offsets, a.data.shape[0])
    if lengths.size == 0:
        return Tensor.from_op(
            np.zeros(0), (a,), lambda grad: a.accumulate_grad(np.zeros(0)),
            name="segment_softmax",
        )
    starts = offsets[:-1]
    data = a.data if scale is None else a.data / scale
    seg_max = np.maximum.reduceat(data, starts)
    exp = np.exp(data - np.repeat(seg_max, lengths))
    denom = np.add.reduceat(exp, starts)
    out_data = exp / np.repeat(denom, lengths)

    def backward(grad: np.ndarray) -> None:
        inner = np.add.reduceat(grad * out_data, starts)
        grad_a = out_data * (grad - np.repeat(inner, lengths))
        a.accumulate_grad(grad_a if scale is None else grad_a / scale)

    return Tensor.from_op(out_data, (a,), backward, name="segment_softmax")


def segment_matmul(weights, values, cols: Optional[np.ndarray], offsets) -> Tensor:
    """Weighted segment-sum of gathered rows: the SpMM aggregation kernel.

    ``out[s] = Σ_{p ∈ segment s} weights[p] * values[cols[p]]`` — attention
    aggregation over real pairs only, replacing the dense
    ``weights @ values`` over padded grids.  ``weights`` is a flat ``(P,)``
    tensor (typically :func:`segment_softmax` output), ``values`` an
    ``(E, d)`` row matrix, ``cols=None`` the identity pairing (``P == E``).
    The backward for ``values`` scatter-adds ``weights``-scaled output
    gradients through the measured :func:`_scatter_add_rows` backends.
    """
    weights, values = as_tensor(weights), as_tensor(values)
    if weights.data.ndim != 1:
        raise ValueError(f"weights must be 1-D, got {weights.data.shape}")
    if values.data.ndim != 2:
        raise ValueError(f"values must be 2-D, got {values.data.shape}")
    cols_arr = None if cols is None else np.asarray(cols, dtype=np.int64)
    if cols_arr is not None and cols_arr.shape != weights.data.shape:
        raise ValueError(
            f"cols shape {cols_arr.shape} != weights shape {weights.data.shape}"
        )
    if cols_arr is None and weights.data.shape[0] != values.data.shape[0]:
        raise ValueError(
            f"identity pairing needs len(weights) == rows of values: "
            f"{weights.data.shape[0]} != {values.data.shape[0]}"
        )
    offsets, lengths = _segment_bounds(offsets, weights.data.shape[0])
    if lengths.size == 0:
        out_empty = np.zeros((0, values.data.shape[1]))
        return Tensor.from_op(
            out_empty, (weights, values), lambda grad: None,
            name="segment_matmul",
        )
    starts = offsets[:-1]
    v_rows = values.data if cols_arr is None else values.data[cols_arr]
    weighted = weights.data[:, np.newaxis] * v_rows
    out_data = np.add.reduceat(weighted, starts, axis=0)

    def backward(grad: np.ndarray) -> None:
        grad_rows = grad[np.repeat(np.arange(lengths.size), lengths)]
        if weights.requires_grad:
            weights.accumulate_grad(np.einsum("pd,pd->p", grad_rows, v_rows))
        if values.requires_grad:
            if cols_arr is None:
                values.accumulate_grad(weights.data[:, np.newaxis] * grad_rows)
            else:
                values.accumulate_grad(
                    _scatter_add_rows(
                        values.data.shape[0], cols_arr, grad_rows,
                        weights=weights.data,
                    )
                )

    return Tensor.from_op(
        out_data, (weights, values), backward, name="segment_matmul"
    )


def scatter_rows(base, index: np.ndarray, rows) -> Tensor:
    """Replace rows ``base[index]`` with the rows of ``rows`` (out-of-place).

    ``base`` is ``(n, d)``, ``index`` a 1-D integer array of **unique** row
    positions, ``rows`` a ``(len(index), d)`` tensor.  Gradients route to
    ``rows`` at the replaced positions and to ``base`` everywhere else —
    the splice used to overwrite relay-edge rows in a bulk-looked-up edge
    matrix without per-row slice/concat chains.
    """
    base, rows = as_tensor(base), as_tensor(rows)
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-D, got shape {index.shape}")
    if rows.data.shape != (index.shape[0],) + base.data.shape[1:]:
        raise ValueError(
            f"rows shape {rows.data.shape} incompatible with "
            f"{index.shape[0]} rows of base {base.data.shape}"
        )
    out_data = base.data.copy()
    out_data[index] = rows.data

    def backward(grad: np.ndarray) -> None:
        if base.requires_grad:
            grad_base = grad.copy()
            grad_base[index] = 0.0
            base.accumulate_grad(grad_base)
        if rows.requires_grad:
            rows.accumulate_grad(grad[index])

    return Tensor.from_op(out_data, (base, rows), backward, name="scatter_rows")


def slice(a, start: int, stop: int, axis: int = 0) -> Tensor:  # noqa: A001
    """Contiguous slice along one axis (cheaper backward than :func:`take`)."""
    a = as_tensor(a)
    index = [builtins.slice(None)] * a.data.ndim
    index[axis] = builtins.slice(start, stop)
    index = tuple(index)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        grad_full = np.zeros_like(a.data)
        grad_full[index] = grad
        a.accumulate_grad(grad_full)

    return Tensor.from_op(out_data, (a,), backward, name="slice")


def spmm(matrix, dense) -> Tensor:
    """Sparse-constant @ dense-tensor product (GCN-style propagation).

    ``matrix`` is a scipy sparse matrix treated as a constant (adjacency
    structure is data, not a parameter); gradients flow only to ``dense``.
    """
    dense = as_tensor(dense)
    out_data = np.asarray(matrix @ dense.data)
    transposed = matrix.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        dense.accumulate_grad(np.asarray(transposed @ grad))

    return Tensor.from_op(out_data, (dense,), backward, name="spmm")


def dropout_mask(a, mask: np.ndarray) -> Tensor:
    """Apply a precomputed (already scaled) dropout mask."""
    a = as_tensor(a)
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward, name="dropout")
