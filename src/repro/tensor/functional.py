"""Composite differentiable functions used across all models.

These are built either as fused primitives (softmax, cross-entropy — for
numerical stability and a compact backward) or as compositions of
:mod:`repro.tensor.ops`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor, as_tensor


def softmax(a, axis: int = -1, scale: Optional[float] = None) -> Tensor:
    """Numerically stable softmax along ``axis`` (fused forward/backward).

    ``scale`` divides the logits first — ``softmax(a / scale)`` as one op,
    absorbing the attention temperature ``sqrt(d)`` that would otherwise be
    a separate elementwise division on the hot path.
    """
    a = as_tensor(a)
    data = a.data if scale is None else a.data / scale
    shifted = data - data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # d softmax = s * (grad - sum(grad * s))
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        grad_a = out_data * (grad - inner)
        a.accumulate_grad(grad_a if scale is None else grad_a / scale)

    return Tensor.from_op(out_data, (a,), backward, name="softmax")


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor.from_op(out_data, (a,), backward, name="log_softmax")


def masked_softmax(a, mask: np.ndarray, axis: int = -1,
                   scale: Optional[float] = None) -> Tensor:
    """Softmax with an additive mask (``-inf`` entries get ~zero weight).

    ``mask`` is a plain ndarray broadcastable to ``a`` containing 0 for kept
    positions and ``-inf`` (or very negative values) for suppressed ones —
    exactly the attention mask Θ from Eq. (6) of the paper.  ``scale``
    divides the logits first (the fused attention temperature), as in
    :func:`softmax`.
    """
    a = as_tensor(a)
    data = a.data if scale is None else a.data / scale
    masked = data + mask
    shifted = masked - masked.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        grad_a = out_data * (grad - inner)
        a.accumulate_grad(grad_a if scale is None else grad_a / scale)

    return Tensor.from_op(out_data, (a,), backward, name="masked_softmax")


def cross_entropy(logits, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between row logits and integer class labels (Eq. 10).

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, c)``.
    labels:
        Integer ndarray of shape ``(n,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.data.shape}")
    if labels.shape != (logits.data.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.data.shape}"
        )
    n = logits.data.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_norm
    losses = -log_probs[np.arange(n), labels]
    probs = np.exp(log_probs)

    if reduction == "mean":
        out_data = np.asarray(losses.mean())
        scale = 1.0 / n
    elif reduction == "sum":
        out_data = np.asarray(losses.sum())
        scale = 1.0
    elif reduction == "none":
        out_data = losses
        scale = None
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        grad_logits = probs.copy()
        grad_logits[np.arange(n), labels] -= 1.0
        if scale is None:
            grad_logits *= grad[:, None]
        else:
            grad_logits *= float(grad) * scale
        logits.accumulate_grad(grad_logits)

    return Tensor.from_op(out_data, (logits,), backward, name="cross_entropy")


def l2_normalize(a, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Row-wise L2 normalization, ``v / ||v||`` (second line of Eq. 7).

    One fused op instead of the mul → sum → add → sqrt → div chain; the
    forward reproduces that chain's arithmetic exactly.
    """
    a = as_tensor(a)
    sq_sum = (a.data * a.data).sum(axis=axis, keepdims=True)
    norm = np.sqrt(sq_sum + eps)
    out_data = a.data / norm

    def backward(grad: np.ndarray) -> None:
        # d(a/||a||) = grad/||a|| - a * <grad, a> / ||a||^3
        inner = (grad * a.data).sum(axis=axis, keepdims=True)
        a.accumulate_grad(grad / norm - a.data * (inner / (norm * norm * norm)))

    return Tensor.from_op(out_data, (a,), backward, name="l2_normalize")


def attention(
    query,
    keys,
    values,
    mask: Optional[np.ndarray] = None,
    return_weights: bool = False,
):
    """Scaled dot-product attention, ``softmax(q k^T / sqrt(d)) v``.

    ``query`` may be ``(d,)`` (single query, as in PASS° / PASS▷ where only
    the target node's pack queries) or ``(m, d)`` (full self-attention, as in
    the successive self-attention of Eq. 4).  ``mask`` is an additive mask.

    Batched inputs are supported with one leading batch dimension: ``query``
    ``(B, q, d)``, ``keys``/``values`` ``(B, m, d)`` and a mask
    broadcastable to ``(B, q, m)`` run as single batched ops — the
    vectorized hot path packs B targets' pack matrices this way.

    Returns the attended values, plus the attention weights when
    ``return_weights`` is set (WIDEN's downsampling consumes the weights).
    """
    query, keys, values = as_tensor(query), as_tensor(keys), as_tensor(values)
    d = keys.data.shape[-1]
    # transpose_b folds k^T into the gemm itself (no separate transpose op
    # on the hot path; BLAS consumes the strided view directly), and the
    # 1/sqrt(d) temperature rides inside the softmax kernel.
    scores = ops.matmul(query, keys, transpose_b=True)
    if mask is not None:
        weights = masked_softmax(scores, mask, axis=-1, scale=np.sqrt(d))
    else:
        weights = softmax(scores, axis=-1, scale=np.sqrt(d))
    attended = ops.matmul(weights, values)
    if return_weights:
        return attended, weights
    return attended


def mse(prediction, target) -> Tensor:
    """Mean squared error."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = prediction - target
    return ops.mean(diff * diff)


def binary_cross_entropy_with_logits(logits, targets: np.ndarray) -> Tensor:
    """Stable BCE on logits (used by the Node2Vec SGNS objective tests)."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.float64)
    x = logits.data
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    losses = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    out_data = np.asarray(losses.mean())
    sig = np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
        np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))),
    )

    def backward(grad: np.ndarray) -> None:
        logits.accumulate_grad(float(grad) * (sig - targets) / x.size)

    return Tensor.from_op(out_data, (logits,), backward, name="bce_with_logits")


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """KL(p ‖ q) between two discrete distributions (Eq. 9's building block).

    This is pure data-side math (no gradients flow through the downsampling
    trigger), so it takes and returns plain numpy values.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    p = np.clip(p, eps, None)
    q = np.clip(q, eps, None)
    return float(np.sum(p * np.log(p / q)))
