"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def xavier_uniform(shape: tuple, rng: SeedLike = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init for ``(fan_in, fan_out)``-shaped weights."""
    rng = new_rng(rng)
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple, rng: SeedLike = None, gain: float = 1.0) -> np.ndarray:
    rng = new_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple, rng: SeedLike = None) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU layers."""
    rng = new_rng(rng)
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple, rng: SeedLike = None, std: float = 0.02) -> np.ndarray:
    """Small-variance Gaussian init (embedding tables)."""
    rng = new_rng(rng)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple) -> tuple:
    if len(shape) < 1:
        raise ValueError("init requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    return fan_in, fan_out
