"""Core layers: linear projection, embedding table, dropout, containers."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng


class Linear(Module):
    """Affine map ``x W + b`` with row-vector convention (as in the paper)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng=rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table of ``num_embeddings`` vectors of size ``dim``.

    Used for edge-type embeddings (``G^edge`` in the paper) and for
    transductive node-ID embeddings in Node2Vec.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init.xavier_uniform((num_embeddings, dim), rng=rng), name="embedding"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return ops.embedding_lookup(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        mask = self.draw_mask(x.data.shape)
        if mask is None:
            return x
        return ops.dropout_mask(x, mask)

    def draw_mask(self, shape) -> "np.ndarray | None":
        """Draw one scaled keep-mask for ``shape``, or None in eval mode.

        Exposed so the batched forward path can consume the rng stream in
        exactly the per-target order the per-node path would (one draw per
        pack matrix), assemble the draws into a padded batch mask, and stay
        bit-identical with the reference implementation under training.
        """
        if not self.training or self.p == 0.0:
            return None
        keep = 1.0 - self.p
        return (self._rng.random(shape) < keep) / keep

    def rng_state(self) -> dict:
        """Serializable bit-generator state of the mask rng."""
        return self._rng.bit_generator.state

    def load_rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = self.register_modules("layers", list(modules))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
