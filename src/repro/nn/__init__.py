"""Neural-network building blocks on top of :mod:`repro.tensor`.

Provides a small ``Module``/``Parameter`` system (state collection, train/eval
mode, serialization) and the layers shared by WIDEN and every baseline:
linear projections, embeddings, dropout, and scaled dot-product attention
blocks with optional additive masks.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, Embedding, Dropout, Sequential, ReLU, Tanh
from repro.nn.attention import SelfAttention, QueryAttention, causal_mask
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "Sequential",
    "ReLU",
    "Tanh",
    "SelfAttention",
    "QueryAttention",
    "causal_mask",
    "init",
]
