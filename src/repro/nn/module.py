"""``Module`` and ``Parameter``: a minimal layer/state system.

``Parameter`` is a :class:`~repro.tensor.Tensor` that always requires grad.
``Module`` discovers parameters and submodules assigned as attributes (like
PyTorch's ``nn.Module``) and offers iteration, grad reset, train/eval mode
and a flat ``state_dict`` for (de)serialization.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; this base class finds them reflectively.  Lists of modules can
    be registered with :meth:`register_modules`.
    """

    def __init__(self) -> None:
        self._module_lists: Dict[str, List["Module"]] = {}
        self.training = True

    # -- discovery ------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            if attr.startswith("_") and attr != "_module_lists":
                continue
            full = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
        for list_name, modules in self._module_lists.items():
            for i, module in enumerate(modules):
                yield from module.named_parameters(prefix=f"{prefix}{list_name}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
        for children in self._module_lists.values():
            for child in children:
                yield from child.modules()

    def register_modules(self, name: str, modules: List["Module"]) -> List["Module"]:
        """Register a list of submodules under ``name`` (like ``ModuleList``)."""
        self._module_lists[name] = list(modules)
        return self._module_lists[name]

    # -- training state -------------------------------------------------

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def num_parameters(self) -> int:
        """Total scalar parameter count (used in efficiency reporting)."""
        return sum(param.data.size for param in self.parameters())

    # -- serialization ----------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def save(self, path) -> None:
        """Serialize all parameters to an ``.npz`` file."""
        state = self.state_dict()
        # npz keys cannot be empty; parameter names never are.
        np.savez(path, **state)

    def load(self, path) -> None:
        """Load parameters saved by :meth:`save` (strict name/shape match).

        Raises ``ValueError`` naming the missing/extra parameter keys when
        the file was saved from a different architecture, so a wrong-config
        restore fails with an actionable message instead of a bare
        ``KeyError``.
        """
        with np.load(path) as archive:
            own = [name for name, _ in self.named_parameters()]
            missing = sorted(set(own) - set(archive.files))
            unexpected = sorted(set(archive.files) - set(own))
            if missing or unexpected:
                raise ValueError(
                    f"checkpoint {path!r} does not match this architecture: "
                    f"missing parameters {missing}, "
                    f"unexpected parameters {unexpected}. "
                    "Rebuild the model with the hyperparameters it was "
                    "saved with (or use WidenClassifier.load, which "
                    "restores them from the checkpoint)."
                )
            self.load_state_dict({name: archive[name] for name in archive.files})

    # -- call protocol ----------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
