"""Scaled dot-product attention blocks.

Two flavours mirror the paper's two uses:

- :class:`QueryAttention` — a single query vector attends over a matrix of
  message packs (PASS° in Eq. 3 and PASS▷ in Eq. 5).
- :class:`SelfAttention` — every row attends over every row, optionally with
  an additive mask (the successive self-attention of Eq. 4 with the causal
  mask Θ of Eq. 6).

Both expose the attention weights because WIDEN's active downsampling and the
KL-divergence trigger consume them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, spawn_rngs


def causal_mask(length: int) -> np.ndarray:
    """Additive mask Θ (Eq. 6): row may attend to col only when row <= col.

    In WIDEN's deep message passing, information flows from the *end* of the
    random-walk sequence back toward the target node, so position ``row``
    aggregates from positions at or beyond itself.
    """
    mask = np.zeros((length, length))
    mask[np.tril_indices(length, k=-1)] = -np.inf
    return mask


class QueryAttention(Module):
    """One query vector attending over a pack matrix.

    Computes ``softmax(q W_Q (M W_K)^T / sqrt(d)) · M W_V`` and returns both
    the attended vector and the weight distribution.

    ``num_heads > 1`` splits the projections into parallel heads whose
    outputs are concatenated (multi-head attention, Vaswani et al. 2017) —
    an extension beyond the paper's single-head Eq. 3.  The returned weight
    distribution is the mean over heads, which keeps the downsampler's
    contract (one probability per pack) intact.
    """

    def __init__(self, dim: int, num_heads: int = 1, rng: SeedLike = None) -> None:
        super().__init__()
        if num_heads < 1 or dim % num_heads != 0:
            raise ValueError(
                f"num_heads must be >= 1 and divide dim, got {num_heads} for dim {dim}"
            )
        rngs = spawn_rngs(rng, 3)
        self.dim = dim
        self.num_heads = num_heads
        self.w_query = Parameter(init.xavier_uniform((dim, dim), rng=rngs[0]), name="w_q")
        self.w_key = Parameter(init.xavier_uniform((dim, dim), rng=rngs[1]), name="w_k")
        self.w_value = Parameter(init.xavier_uniform((dim, dim), rng=rngs[2]), name="w_v")

    def forward(
        self,
        query: Tensor,
        keys: Tensor,
        values: Optional[Tensor] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """``query``: (d,) or (1, d); ``keys``/``values``: (m, d).

        ``values`` defaults to ``keys`` (ordinary PASS°, Eq. 3).  PASS▷
        (Eq. 5) passes refined packs H▷ as keys but the raw packs M▷ as
        values.  Returns ``(attended, weights)`` with shapes matching the
        query's dimensionality.

        Batched form: ``query`` (B, d) with ``keys``/``values`` (B, m, d)
        attends each batch row's query over its own pack matrix in single
        batched ops, returning ``((B, d), (B, m))``.  ``mask`` is an
        additive array broadcastable to the score shape — ``-inf`` at
        padded pack slots gives them exactly zero weight, so a padded batch
        reproduces the per-target results.
        """
        if values is None:
            values = keys
        batched = keys.ndim == 3
        if batched and query.ndim == 2:
            query = ops.reshape(query, (keys.shape[0], 1, self.dim))
            if mask is not None and mask.ndim == 2:
                mask = mask[:, np.newaxis, :]
        q = ops.matmul(query, self.w_query)
        k = ops.matmul(keys, self.w_key)
        v = ops.matmul(values, self.w_value)
        if self.num_heads == 1:
            attended, weights = F.attention(q, k, v, mask=mask, return_weights=True)
        else:
            head_dim = self.dim // self.num_heads
            attended_heads = []
            weight_heads = []
            key_axis = k.ndim - 1
            for head in range(self.num_heads):
                lo, hi = head * head_dim, (head + 1) * head_dim
                q_h = ops.slice(q, lo, hi, axis=q.ndim - 1)
                k_h = ops.slice(k, lo, hi, axis=key_axis)
                v_h = ops.slice(v, lo, hi, axis=key_axis)
                head_out, weights = F.attention(
                    q_h, k_h, v_h, mask=mask, return_weights=True
                )
                attended_heads.append(head_out)
                weight_heads.append(weights)
            attended = ops.concat(attended_heads, axis=-1)
            weights = weight_heads[0]
            for head_weights in weight_heads[1:]:
                weights = weights + head_weights
            weights = weights / float(self.num_heads)
        if batched:
            batch = keys.shape[0]
            attended = ops.reshape(attended, (batch, self.dim))
            weights = ops.reshape(weights, (batch, keys.shape[1]))
        return attended, weights

    def forward_sparse(
        self,
        query: Tensor,
        keys: Tensor,
        values: Tensor,
        seg_ids: np.ndarray,
        offsets: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """CSR-segment form of the batched forward — no padded grids.

        ``query`` is ``(S, d)`` (one query row per segment), ``keys``/
        ``values`` flat ``(E, d)`` pack rows, ``seg_ids`` ``(E,)`` mapping
        each pack row to its query segment, ``offsets`` ``(S + 1,)`` the
        CSR segment bounds.  Scores exist only for real (query, pack)
        pairs (:func:`~repro.tensor.ops.sddmm`), the softmax is
        segment-local, and aggregation is a weighted segment-sum — work is
        proportional to E, not S * L_max.  Returns ``((S, d), (E,))``; the
        flat weight vector holds each segment's distribution contiguously,
        matching the padded kernel's valid slots.
        """
        q = ops.matmul(query, self.w_query)
        k = ops.matmul(keys, self.w_key)
        v = ops.matmul(values, self.w_value)
        if self.num_heads == 1:
            scores = ops.sddmm(q, k, seg_ids)
            weights = ops.segment_softmax(
                scores, offsets, scale=np.sqrt(self.dim)
            )
            attended = ops.segment_matmul(weights, v, None, offsets)
            return attended, weights
        head_dim = self.dim // self.num_heads
        scale = np.sqrt(head_dim)
        attended_heads = []
        weight_heads = []
        for head in range(self.num_heads):
            lo, hi = head * head_dim, (head + 1) * head_dim
            q_h = ops.slice(q, lo, hi, axis=1)
            k_h = ops.slice(k, lo, hi, axis=1)
            v_h = ops.slice(v, lo, hi, axis=1)
            scores = ops.sddmm(q_h, k_h, seg_ids)
            head_weights = ops.segment_softmax(scores, offsets, scale=scale)
            attended_heads.append(
                ops.segment_matmul(head_weights, v_h, None, offsets)
            )
            weight_heads.append(head_weights)
        attended = ops.concat(attended_heads, axis=-1)
        weights = weight_heads[0]
        for head_weights in weight_heads[1:]:
            weights = weights + head_weights
        weights = weights / float(self.num_heads)
        return attended, weights


class SelfAttention(Module):
    """Full self-attention over a pack matrix with optional additive mask."""

    def __init__(self, dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        rngs = spawn_rngs(rng, 3)
        self.dim = dim
        self.w_query = Parameter(init.xavier_uniform((dim, dim), rng=rngs[0]), name="w_q")
        self.w_key = Parameter(init.xavier_uniform((dim, dim), rng=rngs[1]), name="w_k")
        self.w_value = Parameter(init.xavier_uniform((dim, dim), rng=rngs[2]), name="w_v")

    def forward(
        self, packs: Tensor, mask: Optional[np.ndarray] = None
    ) -> Tuple[Tensor, Tensor]:
        """``packs``: (m, d); ``mask``: additive (m, m) or None.

        Returns ``(updated_packs, weights)`` of shapes ((m, d), (m, m)).

        Batched form: ``packs`` (B, m, d) with a mask broadcastable to
        (B, m, m) refines every batch row's pack matrix in single batched
        ops.  Every row of the mask must keep at least one finite entry —
        padded rows conventionally attend to themselves — or the softmax
        sees an all ``-inf`` row.
        """
        q = ops.matmul(packs, self.w_query)
        k = ops.matmul(packs, self.w_key)
        v = ops.matmul(packs, self.w_value)
        return F.attention(q, k, v, mask=mask, return_weights=True)

    def forward_sparse(
        self,
        packs: Tensor,
        pair_rows: np.ndarray,
        pair_cols: np.ndarray,
        pair_offsets: np.ndarray,
    ) -> Tensor:
        """Causal self-attention over CSR segments without the (m, m) grid.

        ``packs`` is the flat ``(E, d)`` pack-row matrix; the pair arrays
        (from :func:`repro.core.packing.causal_pairs`) enumerate exactly
        the (row, col) pairs the causal mask Θ keeps — row ``i`` attends
        to cols ``i..end-of-segment``.  ``pair_offsets`` groups the pairs
        by attending row, so each row's softmax is segment-local.  Returns
        the refined ``(E, d)`` pack rows (the padded forward's per-row
        attention-weight grid has no sparse consumer, so it is not built).
        """
        q = ops.matmul(packs, self.w_query)
        k = ops.matmul(packs, self.w_key)
        v = ops.matmul(packs, self.w_value)
        scores = ops.sddmm(q, k, pair_rows, pair_cols)
        weights = ops.segment_softmax(
            scores, pair_offsets, scale=np.sqrt(self.dim)
        )
        return ops.segment_matmul(weights, v, pair_cols, pair_offsets)
