"""Model registry: a directory of named, self-describing checkpoints.

The registry is deliberately thin — one checkpoint file per model name,
written and read through :meth:`WidenClassifier.save`/``load`` — so a
serving process can be pointed at a directory and restore any registered
model *without* knowing its hyperparameters, which travel inside the
checkpoint together with the dataset schema.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Type

from repro.core.classifier import WidenClassifier
from repro.graph import HeteroGraph

# Checkpoint ``class`` field -> restorer.  Extend as more model families
# grow first-class checkpoint support.
CHECKPOINT_CLASSES: Dict[str, Type[WidenClassifier]] = {
    WidenClassifier.name: WidenClassifier,
}


class ModelRegistry:
    """Named checkpoints under one root directory (``<root>/<name>.npz``)."""

    suffix = ".npz"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid model name {name!r}")
        return self.root / f"{name}{self.suffix}"

    def save(self, name: str, classifier: WidenClassifier) -> Path:
        """Checkpoint ``classifier`` under ``name``; returns the file path."""
        path = self.path(name)
        classifier.save(path)
        return path

    def load(
        self, name: str, graph: Optional[HeteroGraph] = None
    ) -> WidenClassifier:
        """Restore the named model, optionally binding a serving graph."""
        path = self.path(name)
        if not path.exists():
            raise FileNotFoundError(
                f"no checkpoint named {name!r} in {self.root} "
                f"(registered: {self.list() or 'none'})"
            )
        meta = WidenClassifier.read_checkpoint_metadata(path)
        cls = CHECKPOINT_CLASSES.get(meta.get("class"))
        if cls is None:
            raise ValueError(
                f"checkpoint {name!r} holds unsupported class "
                f"{meta.get('class')!r}; known: {sorted(CHECKPOINT_CLASSES)}"
            )
        return cls.load(path, graph=graph)

    def describe(self, name: str) -> dict:
        """Checkpoint metadata (config, seed, schema) without loading weights."""
        return WidenClassifier.read_checkpoint_metadata(self.path(name))

    def list(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob(f"*{self.suffix}"))

    def __contains__(self, name: str) -> bool:
        return self.path(name).exists()
