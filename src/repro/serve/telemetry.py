"""Serving telemetry: latency, queue depth, batch occupancy, cache hit-rate.

The recorder is a plain accumulator the server feeds as requests complete;
:meth:`Telemetry.summary` reduces it to the numbers a capacity planner
actually looks at — percentile latencies (p50/p95/p99, plus min/max/count so
the report is self-describing), throughput over the observed span, mean
batch occupancy and cache hit-rate.  Everything is deterministic given the
same request stream.

Percentiles come from the shared :class:`repro.obs.Histogram` (one
percentile implementation for training and serving); when a
:class:`~repro.obs.MetricsRegistry` is attached, every record also lands in
registry series (``serve_latency_seconds``, ``serve_requests_total``,
``serve_batch_size``, ``serve_queue_depth``), so training and serving report
through one pipeline and one ``metrics.jsonl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry, nearest_rank_percentile


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 for an empty series.

    Kept as a thin alias of the shared implementation in
    :func:`repro.obs.metrics.nearest_rank_percentile` — nearest-rank keeps
    the answer an *observed* latency (the convention of serving dashboards)
    instead of an interpolated value no request paid.
    """
    return nearest_rank_percentile(values, p)


#: Serving-ladder rungs, fastest first (see ``repro.obs.slo.RUNGS``).
RUNGS = ("cache", "store", "overlay", "recompute")


@dataclass
class RequestRecord:
    """One completed request, as the telemetry layer sees it.

    ``rung`` names the serving-ladder tier that produced the embedding;
    ``queue_wait`` is submit-to-flush time (0 for submit-time cache hits),
    so ``latency - queue_wait`` is the request's compute share.
    """

    node: int
    arrival: float
    completion: float
    cache_hit: bool
    batch_size: int
    rung: str = "recompute"
    queue_wait: float = 0.0

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def compute(self) -> float:
        return max(0.0, self.latency - self.queue_wait)


@dataclass
class Telemetry:
    """Accumulates per-request records and queue/batch samples."""

    requests: List[RequestRecord] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)
    compute_batch_sizes: List[int] = field(default_factory=list)
    queue_depths: List[int] = field(default_factory=list)
    # One record per mutation-triggered invalidation: the k-hop frontier
    # size, how many resident entries it dropped and how many stayed warm.
    invalidation_records: List[Dict[str, int]] = field(default_factory=list)
    # One record per store-consulted miss batch: how many nodes were served
    # from fresh store rows vs found stale vs absent (both of the latter
    # fall back to materialization).
    store_lookups: List[Dict[str, int]] = field(default_factory=list)
    max_batch_size: int = 1
    registry: Optional[MetricsRegistry] = None
    # Attached EmbeddingCache (duck-typed); lets summary() surface the
    # per-node hit distribution next to the request-level hit rate.
    cache: Optional[object] = None

    # -- recording ------------------------------------------------------

    def __post_init__(self) -> None:
        # Registry instruments are resolved once, not per record: the
        # labeled lookup (sort labels, hash, dict probe) costs more than a
        # counter increment and sits on the per-request hot path.
        registry = self.registry
        if registry is None:
            self._latency_hist = None
            return
        self._latency_hist = registry.histogram("serve_latency_seconds")
        self._requests_by_hit = {
            True: registry.counter("serve_requests_total", cache="hit"),
            False: registry.counter("serve_requests_total", cache="miss"),
        }
        self._batch_hist = registry.histogram("serve_batch_size")
        self._compute_batch_hist = registry.histogram("serve_compute_batch_size")
        self._queue_hist = registry.histogram("serve_queue_depth")
        self._store_outcomes = {
            outcome: registry.counter(
                "serve_store_requests_total", outcome=outcome
            )
            for outcome in ("hit", "stale", "absent")
        }
        self._rung_counters = {
            rung: registry.counter("serve_rung_total", rung=rung)
            for rung in RUNGS
        }

    def attach_cache(self, cache) -> None:
        """Expose an :class:`EmbeddingCache`'s per-node hit histogram in
        :meth:`summary` (the server attaches its cache at construction)."""
        self.cache = cache

    def record_request(self, record: RequestRecord) -> None:
        self.requests.append(record)
        if self._latency_hist is not None:
            self._latency_hist.observe(record.latency)
            self._requests_by_hit[record.cache_hit].inc()
            counter = self._rung_counters.get(record.rung)
            if counter is not None:
                counter.inc()

    def record_batch(self, size: int) -> None:
        self.batch_sizes.append(size)
        if self._latency_hist is not None:
            self._batch_hist.observe(size)

    def record_compute_batch(self, size: int) -> None:
        """One batched cache-miss computation of ``size`` embeddings.

        Distinct from :meth:`record_batch` (request coalescing): this counts
        how many embeddings actually went through one model forward, i.e.
        whether the vectorized compute path sees real batches or singletons.
        """
        self.compute_batch_sizes.append(size)
        if self._latency_hist is not None:
            self._compute_batch_hist.observe(size)

    def record_queue_depth(self, depth: int) -> None:
        self.queue_depths.append(depth)
        if self._latency_hist is not None:
            self._queue_hist.observe(depth)

    def record_invalidation(
        self, *, frontier_size: int, dropped: int, kept: int,
        reason: str = "full",
    ) -> None:
        """One mutation-triggered cache invalidation.

        ``frontier_size`` is how many nodes the mutation's k-hop frontier
        covered (the whole graph on the coarse fallback path), ``dropped``
        how many resident cache entries it removed, ``kept`` how many stayed
        warm — the audit trail that fine-grained invalidation actually kept
        the rest of the working set.  ``reason`` distinguishes the
        fine-grained reverse-BFS path (``"frontier"``) from a coarse
        whole-cache flush (``"full"``) in the registry series."""
        if reason not in ("frontier", "full"):
            raise ValueError(f"unknown invalidation reason {reason!r}")
        self.invalidation_records.append(
            {
                "frontier_size": int(frontier_size),
                "dropped": int(dropped),
                "kept": int(kept),
                "reason": reason,
            }
        )
        if self.registry is not None:
            self.registry.counter(
                "serve_invalidations_total", reason=reason
            ).inc()
            self.registry.counter(
                "serve_invalidated_entries_total", reason=reason
            ).inc(max(0, int(dropped)))
            self.registry.histogram("serve_invalidation_frontier").observe(
                frontier_size
            )

    def record_store_lookup(
        self, *, hit: int = 0, stale: int = 0, absent: int = 0
    ) -> None:
        """One miss batch's store consultation (store-backed servers only).

        ``hit`` nodes were served from fresh materialized rows, ``stale``
        had rows invalidated by a mutation frontier, ``absent`` had no row
        at all; stale + absent fall back to materialization (the full
        recompute, which also refreshes the row in the overlay)."""
        self.store_lookups.append(
            {"hit": int(hit), "stale": int(stale), "absent": int(absent)}
        )
        if self._latency_hist is not None:
            for outcome, count in (
                ("hit", hit), ("stale", stale), ("absent", absent)
            ):
                if count:
                    self._store_outcomes[outcome].inc(int(count))

    def reset(self) -> None:
        """Clear local records (e.g. between a warmup and a measured pass).

        Registry series are cumulative by design and left untouched.
        """
        self.requests.clear()
        self.batch_sizes.clear()
        self.compute_batch_sizes.clear()
        self.queue_depths.clear()
        self.invalidation_records.clear()
        self.store_lookups.clear()

    # -- message-boundary serialization ---------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Plain-data snapshot for crossing a shard/process boundary.

        Request records travel as parallel column lists (compact, picklable
        without class baggage); the cluster router reduces straight over
        the columns without rebuilding :class:`RequestRecord` objects.
        The registry and attached cache stay behind — they have their own
        serialized forms (``MetricsRegistry.to_payload``, cache size in the
        engine's telemetry reply).
        """
        return {
            "requests": {
                "node": [r.node for r in self.requests],
                "arrival": [r.arrival for r in self.requests],
                "completion": [r.completion for r in self.requests],
                "cache_hit": [r.cache_hit for r in self.requests],
                "batch_size": [r.batch_size for r in self.requests],
                "rung": [r.rung for r in self.requests],
                "queue_wait": [r.queue_wait for r in self.requests],
            },
            "batch_sizes": list(self.batch_sizes),
            "compute_batch_sizes": list(self.compute_batch_sizes),
            "queue_depths": list(self.queue_depths),
            "invalidation_records": [dict(r) for r in self.invalidation_records],
            "store_lookups": [dict(r) for r in self.store_lookups],
            "max_batch_size": self.max_batch_size,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Telemetry":
        """Rebuild a reducible :class:`Telemetry` from a snapshot payload."""
        requests = payload["requests"]
        telemetry = cls(max_batch_size=int(payload.get("max_batch_size", 1)))
        count = len(requests["node"])
        # Older payloads predate attribution; default to the coarse values.
        rungs = requests.get("rung", ["recompute"] * count)
        queue_waits = requests.get("queue_wait", [0.0] * count)
        telemetry.requests = [
            RequestRecord(
                node=int(node),
                arrival=float(arrival),
                completion=float(completion),
                cache_hit=bool(cache_hit),
                batch_size=int(batch_size),
                rung=str(rung),
                queue_wait=float(queue_wait),
            )
            for node, arrival, completion, cache_hit, batch_size, rung, queue_wait in zip(
                requests["node"],
                requests["arrival"],
                requests["completion"],
                requests["cache_hit"],
                requests["batch_size"],
                rungs,
                queue_waits,
            )
        ]
        telemetry.batch_sizes = [int(v) for v in payload["batch_sizes"]]
        telemetry.compute_batch_sizes = [
            int(v) for v in payload["compute_batch_sizes"]
        ]
        telemetry.queue_depths = [int(v) for v in payload["queue_depths"]]
        telemetry.invalidation_records = [
            dict(r) for r in payload["invalidation_records"]
        ]
        telemetry.store_lookups = [
            dict(r) for r in payload.get("store_lookups", [])
        ]
        return telemetry

    # -- reductions -----------------------------------------------------

    @property
    def latencies(self) -> List[float]:
        return [record.latency for record in self.requests]

    @property
    def cache_hits(self) -> int:
        return sum(record.cache_hit for record in self.requests)

    @property
    def cache_misses(self) -> int:
        return len(self.requests) - self.cache_hits

    def hit_rate(self) -> float:
        return self.cache_hits / len(self.requests) if self.requests else 0.0

    def throughput(self) -> float:
        """Completed requests per second over the observed span."""
        if not self.requests:
            return 0.0
        start = min(record.arrival for record in self.requests)
        stop = max(record.completion for record in self.requests)
        span = stop - start
        return len(self.requests) / span if span > 0 else float("inf")

    def mean_occupancy(self) -> float:
        """Mean batch fill fraction relative to the configured maximum."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / (len(self.batch_sizes) * self.max_batch_size)

    def latency_histogram(self) -> Histogram:
        """The current latencies as a shared :class:`Histogram`."""
        histogram = Histogram("serve_latency_seconds")
        histogram.observe_many(self.latencies)
        return histogram

    def summary(self) -> Dict[str, float]:
        latencies = self.latency_histogram()
        stats = {
            "requests": len(self.requests),
            "throughput_rps": self.throughput(),
            "latency_count": latencies.count,
            "latency_mean_s": latencies.mean,
            "latency_min_s": latencies.min,
            "latency_max_s": latencies.max,
            "latency_p50_s": latencies.percentile(50),
            "latency_p95_s": latencies.percentile(95),
            "latency_p99_s": latencies.percentile(99),
            "batches": len(self.batch_sizes),
            "batch_occupancy": self.mean_occupancy(),
            "mean_queue_depth": (
                sum(self.queue_depths) / len(self.queue_depths)
                if self.queue_depths
                else 0.0
            ),
            "cache_hit_rate": self.hit_rate(),
        }
        stats["compute_batches"] = len(self.compute_batch_sizes)
        stats["compute_batch_mean"] = (
            sum(self.compute_batch_sizes) / len(self.compute_batch_sizes)
            if self.compute_batch_sizes
            else 0.0
        )
        stats["compute_batch_max"] = (
            float(max(self.compute_batch_sizes)) if self.compute_batch_sizes else 0.0
        )
        if self.requests:
            count = len(self.requests)
            stats["queue_wait_mean_s"] = (
                sum(r.queue_wait for r in self.requests) / count
            )
            stats["compute_mean_s"] = (
                sum(r.compute for r in self.requests) / count
            )
            for rung in RUNGS:
                stats[f"rung_{rung}"] = float(
                    sum(1 for r in self.requests if r.rung == rung)
                )
        stats["invalidations"] = len(self.invalidation_records)
        stats["invalidated_entries"] = float(
            sum(r["dropped"] for r in self.invalidation_records)
        )
        stats["invalidation_kept_entries"] = float(
            sum(r["kept"] for r in self.invalidation_records)
        )
        if self.store_lookups:
            store_hits = sum(r["hit"] for r in self.store_lookups)
            store_stale = sum(r["stale"] for r in self.store_lookups)
            store_absent = sum(r["absent"] for r in self.store_lookups)
            store_total = store_hits + store_stale + store_absent
            stats["store_hits"] = float(store_hits)
            stats["store_stale"] = float(store_stale)
            stats["store_absent"] = float(store_absent)
            stats["store_hit_rate"] = (
                store_hits / store_total if store_total else 0.0
            )
        if self.cache is not None and hasattr(self.cache, "node_hit_histogram"):
            node_hits = self.cache.node_hit_histogram()
            stats["cache_nodes_with_hits"] = node_hits.count
            stats["cache_node_hits_mean"] = node_hits.mean
            stats["cache_node_hits_p50"] = node_hits.percentile(50)
            stats["cache_node_hits_p95"] = node_hits.percentile(95)
            stats["cache_node_hits_max"] = node_hits.max
        return stats

    def format_report(self, title: Optional[str] = None) -> str:
        """Human-readable report block (the serve-bench output)."""
        stats = self.summary()
        lines = []
        if title:
            lines += [title, "-" * len(title)]
        lines += [
            f"requests          {int(stats['requests'])}",
            f"throughput        {stats['throughput_rps']:.1f} req/s",
            f"latency mean      {stats['latency_mean_s'] * 1e3:.3f} ms",
            f"latency min/max   {stats['latency_min_s'] * 1e3:.3f} / "
            f"{stats['latency_max_s'] * 1e3:.3f} ms "
            f"(n={int(stats['latency_count'])})",
            f"latency p50       {stats['latency_p50_s'] * 1e3:.3f} ms",
            f"latency p95       {stats['latency_p95_s'] * 1e3:.3f} ms",
            f"latency p99       {stats['latency_p99_s'] * 1e3:.3f} ms",
            f"batches           {int(stats['batches'])}"
            f" (occupancy {stats['batch_occupancy'] * 100:.0f}%)",
            f"mean queue depth  {stats['mean_queue_depth']:.2f}",
            f"cache hit rate    {stats['cache_hit_rate'] * 100:.1f}%",
            f"compute batches   {int(stats['compute_batches'])}"
            f" (mean size {stats['compute_batch_mean']:.2f},"
            f" max {int(stats['compute_batch_max'])})",
        ]
        if "queue_wait_mean_s" in stats:
            lines.append(
                f"queue/compute     {stats['queue_wait_mean_s'] * 1e3:.3f} /"
                f" {stats['compute_mean_s'] * 1e3:.3f} ms (mean)"
            )
            lines.append(
                "rung mix          "
                + " / ".join(
                    f"{rung} {int(stats[f'rung_{rung}'])}" for rung in RUNGS
                )
            )
        if "store_hits" in stats:
            lines.append(
                f"store lookups     hit {int(stats['store_hits'])}"
                f" / stale {int(stats['store_stale'])}"
                f" / absent {int(stats['store_absent'])}"
                f" (hit rate {stats['store_hit_rate'] * 100:.1f}%)"
            )
        if "cache_nodes_with_hits" in stats:
            lines.append(
                f"cache node hits   {int(stats['cache_nodes_with_hits'])} nodes"
                f" (p50 {stats['cache_node_hits_p50']:.0f},"
                f" p95 {stats['cache_node_hits_p95']:.0f},"
                f" max {stats['cache_node_hits_max']:.0f})"
            )
        return "\n".join(lines)
