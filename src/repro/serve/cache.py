"""Capacity-bounded LRU embedding cache keyed on ``(node_id, graph_version)``.

Versioned keys make stale reads *structurally* impossible: a streaming
mutation bumps ``HeteroGraph.version``, so every subsequent lookup misses the
pre-mutation entries regardless of what is still resident.  The server
additionally drops dead-version entries eagerly from its mutation hook
(:meth:`EmbeddingCache.invalidate`) so they stop occupying capacity.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.obs.metrics import Histogram

Key = Tuple[int, int]  # (node_id, graph_version)


class EmbeddingCache:
    """LRU cache of per-node embeddings with hit/miss/eviction accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Key, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Per-node hit counts (across versions) — the skew signal capacity
        # planning reads: a heavy-tailed histogram means a few hot nodes
        # carry the hit rate and capacity can shrink; a flat one means the
        # working set really is this wide.
        self.node_hits: "Counter[int]" = Counter()
        # Per-node dropped-entry counts — the audit trail of fine-grained
        # invalidation: after a mutation, exactly the k-hop frontier should
        # appear here and nothing else.
        self.node_invalidations: "Counter[int]" = Counter()

    def get(self, node: int, version: int) -> Optional[np.ndarray]:
        """Embedding for ``node`` at graph ``version``; None on miss."""
        key = (int(node), int(version))
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.node_hits[key[0]] += 1
        return entry

    def node_hit_histogram(self) -> Histogram:
        """Distribution of per-node hit counts as a shared Histogram."""
        histogram = Histogram("cache_node_hits")
        histogram.observe_many(float(count) for count in self.node_hits.values())
        return histogram

    def put(self, node: int, version: int, embedding: np.ndarray) -> None:
        key = (int(node), int(version))
        self._entries[key] = np.asarray(embedding)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(
        self, nodes: Optional[Iterable[int]] = None, *, keep_version: Optional[int] = None
    ) -> int:
        """Drop entries; returns how many were removed.

        ``nodes=None`` drops everything (or, with ``keep_version``, every
        entry from *other* versions — the mutation-hook fast path).
        ``nodes`` drops all versions of the given ids.
        """
        if nodes is None:
            if keep_version is None:
                victims = list(self._entries)
            else:
                victims = [key for key in self._entries if key[1] != keep_version]
        else:
            ids = {int(node) for node in nodes}
            victims = [key for key in self._entries if key[0] in ids]
        for key in victims:
            del self._entries[key]
            self.node_invalidations[key[0]] += 1
        self.invalidations += len(victims)
        return len(victims)

    def invalidate_nodes(self, nodes: Iterable[int]) -> int:
        """Drop every resident entry of the given node ids; returns count.

        The fine-grained invalidation path: a mutation hook passes the k-hop
        frontier of the change and everything outside it stays warm.  Each
        dropped entry is recorded in :attr:`node_invalidations`.
        """
        return self.invalidate(nodes=nodes)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return (int(key[0]), int(key[1])) in self._entries

    def __repr__(self) -> str:
        return (
            f"EmbeddingCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
