"""``repro.serve`` — the inductive inference serving layer.

Turns a trained classifier into a long-lived service, the production half
of the paper's "heterogeneity + inductiveness + efficiency" claim:

- :class:`ModelRegistry` — named, self-describing checkpoints (parameters
  + hyperparameters + dataset schema) restored without a training graph;
- :class:`MicroBatcher` — request coalescing under size/deadline triggers;
- :class:`EmbeddingCache` — LRU memoization keyed ``(node, graph version)``
  so streaming mutations can never serve stale embeddings;
- :class:`InferenceServer` — ties the above over one serving graph, with
  streaming ingestion (``add_nodes``/``add_edges``) wired to the graph's
  mutation hooks;
- :class:`Telemetry` — per-request latency percentiles, queue depth, batch
  occupancy and cache hit-rate;
- :mod:`~repro.serve.loadgen` — deterministic Poisson/Zipf traces and the
  replay harness behind ``python -m repro serve-bench``.
"""

from repro.serve.batcher import MicroBatcher, ServeRequest
from repro.serve.cache import EmbeddingCache
from repro.serve.loadgen import TraceEvent, cold_single_requests, make_trace, replay
from repro.serve.registry import ModelRegistry
from repro.serve.server import InferenceServer, ServeResult
from repro.serve.telemetry import RequestRecord, Telemetry, percentile

__all__ = [
    "MicroBatcher",
    "ServeRequest",
    "EmbeddingCache",
    "ModelRegistry",
    "InferenceServer",
    "ServeResult",
    "Telemetry",
    "RequestRecord",
    "percentile",
    "TraceEvent",
    "make_trace",
    "replay",
    "cold_single_requests",
]
