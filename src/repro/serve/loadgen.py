"""Deterministic load generation and trace replay.

A synthetic arrival trace models the serving workload the paper motivates
WIDEN with: requests arrive as a Poisson process (exponential interarrival
gaps at a target rate) and target nodes follow a Zipf popularity law — a
few hot nodes dominate, a long tail trickles — which is precisely the
regime where an LRU embedding cache pays off.  Both draws come from one
seeded generator, so a trace is exactly reproducible.

:func:`replay` drives a server through a trace using the trace's *logical*
clock for arrivals/deadlines while batch compute time is measured for real;
:func:`cold_single_requests` runs the same trace one request at a time down
the uncached inductive path — the baseline the serve benchmark compares
against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.graph import HeteroGraph
from repro.serve.server import InferenceServer
from repro.serve.telemetry import percentile
from repro.utils.rng import SeedLike, new_rng


@dataclass
class TraceEvent:
    """One arrival: request ``node`` at logical time ``time`` (seconds)."""

    time: float
    node: int


def make_trace(
    nodes: Sequence[int],
    num_requests: int,
    *,
    rate: float = 500.0,
    zipf_exponent: float = 1.1,
    rng: SeedLike = None,
) -> List[TraceEvent]:
    """Deterministic Poisson/Zipf arrival trace over a node pool.

    ``rate`` is mean arrivals per second; ``zipf_exponent`` shapes the
    popularity skew (higher = hotter head).  Ranks are assigned over the
    pool in the order given, so the caller controls which nodes are hot.
    """
    pool = np.asarray(nodes, dtype=np.int64)
    if pool.size == 0:
        raise ValueError("node pool is empty")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = new_rng(rng)
    weights = 1.0 / np.arange(1, pool.size + 1, dtype=np.float64) ** zipf_exponent
    weights /= weights.sum()
    picks = rng.choice(pool.size, size=num_requests, p=weights)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    times = np.cumsum(gaps)
    return [TraceEvent(float(t), int(pool[i])) for t, i in zip(times, picks)]


def replay(server: InferenceServer, trace: Sequence[TraceEvent]) -> Dict[str, float]:
    """Replay ``trace`` against ``server``; returns the telemetry summary.

    The server's telemetry and busy-time watermark are reset first so
    back-to-back passes (cold then warm cache) report cleanly separated
    numbers on the same logical timeline.
    """
    server.telemetry.reset()
    server.reset_clock()
    ids: List[int] = []
    for event in trace:
        ids.append(server.submit(event.node, now=event.time))
    server.drain(trace[-1].time if trace else None)
    for request_id in ids:  # free completed results; replay keeps none
        server.result(request_id)
    return server.telemetry.summary()


def cold_single_requests(
    classifier,
    graph: HeteroGraph,
    trace: Sequence[TraceEvent],
    *,
    seed: int = 0,
) -> Dict[str, float]:
    """One-at-a-time, uncached inference over the same trace.

    Each request pays the full cold path — fresh neighborhood sampling plus
    a single-node forward pass — exactly what a server miss costs, with the
    same per-node deterministic seeding, so the comparison against the
    batched/cached server isolates what the serving layer buys.
    """
    latencies: List[float] = []
    for event in trace:
        start = time.perf_counter()
        if hasattr(classifier, "embed_for_serving"):
            rng = np.random.default_rng([seed, graph.version, event.node])
            embedding = classifier.embed_for_serving(
                np.array([event.node]), graph, rng=rng
            )
            classifier.predict_from_embeddings(embedding)
        else:
            classifier.predict(np.array([event.node]), graph=graph)
        latencies.append(time.perf_counter() - start)
    return {
        "requests": len(latencies),
        "latency_mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p95_s": percentile(latencies, 95),
        "latency_p99_s": percentile(latencies, 99),
        "throughput_rps": (
            len(latencies) / sum(latencies) if sum(latencies) > 0 else float("inf")
        ),
    }
