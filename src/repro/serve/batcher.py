"""Request queue + micro-batcher.

Single-node requests are cheap to issue but expensive to execute one by one;
the batcher coalesces them into batched forward passes under two triggers,
the standard serving trade-off (cf. DGL/TF-Serving batching queues):

- **size** — the queue reached ``max_batch_size``; flush immediately.
- **deadline** — the *oldest* queued request has waited ``max_wait``
  seconds; flush whatever is queued so tail latency stays bounded even at
  low arrival rates.

The batcher is purely logical: callers pass explicit ``now`` timestamps, so
the same component serves both wall-clock operation and deterministic
trace replay/tests (no hidden clock reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ServeRequest:
    """One enqueued unit of work."""

    request_id: int
    node: int
    arrival: float
    kind: str = "classify"  # or "embed"


@dataclass
class MicroBatcher:
    """Coalesces requests; flushes on the size or deadline trigger."""

    max_batch_size: int = 16
    max_wait: float = 0.002
    _queue: List[ServeRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")

    @property
    def depth(self) -> int:
        return len(self._queue)

    def submit(self, request: ServeRequest) -> Optional[List[ServeRequest]]:
        """Enqueue; returns a batch iff the size trigger fired."""
        self._queue.append(request)
        if len(self._queue) >= self.max_batch_size:
            return self._take(self.max_batch_size)
        return None

    def poll(self, now: float) -> Optional[List[ServeRequest]]:
        """Returns a batch iff the deadline trigger fired at time ``now``."""
        if self._queue and now - self._queue[0].arrival >= self.max_wait:
            return self._take(self.max_batch_size)
        return None

    def flush(self) -> Optional[List[ServeRequest]]:
        """Unconditionally drain up to ``max_batch_size`` oldest requests."""
        if not self._queue:
            return None
        return self._take(self.max_batch_size)

    def _take(self, count: int) -> List[ServeRequest]:
        batch, self._queue = self._queue[:count], self._queue[count:]
        return batch
