"""The long-lived inference server.

``InferenceServer`` turns a trained classifier into a service over one
*serving graph*.  The embedding cache sits **in front of** the micro-batcher:
a request whose embedding is resident (at the current graph version)
completes at submit time and never pays the batching deadline; only misses
are queued and coalesced into batched forward passes.  Streaming arrivals
(:meth:`add_nodes` / :meth:`add_edges`) mutate the graph in place — the
graph's mutation hooks then invalidate every cache layer, so a
post-mutation request can never observe pre-mutation state.

Determinism: for classifiers exposing ``embed_for_serving`` (WIDEN), each
cache miss is computed with an rng seeded by ``(server seed, node version,
node id)``, where the *node version* counts the mutations whose k-hop
frontier reached that node.  A response is therefore a pure function of the
model parameters, the graph mutation history and the server seed —
independent of request order, batching boundaries and cache history.  That
is what makes the "mutated server == cold server" test in
``tests/test_serve.py`` exact rather than statistical, and what lets a
sharded cluster (``repro.cluster``) reproduce single-server answers
bit-for-bit.

Invalidation is fine-grained when the classifier declares its sampling
reach (``WidenConfig.serving_reach``): a mutation's
:class:`~repro.graph.MutationEvent` names the adjacency lists that changed,
the reverse-BFS :func:`~repro.graph.halo.mutation_frontier` bounds which
embeddings could observe the change, and only those nodes are bumped and
dropped from the cache — the rest of the working set stays warm.  Mutations
without an event (or classifiers without a declared reach) fall back to the
original behavior: a global epoch bump that drops everything.

One server is single-threaded by design (the batcher amortizes per-call
overhead, it does not juggle OS threads); concurrency comes from running
one server per shard on worker threads — see ``repro.cluster``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.baselines.common import BaseClassifier
from repro.graph import HeteroGraph, mutation_frontier
from repro.obs import MetricsRegistry, get_registry
from repro.serve.batcher import MicroBatcher, ServeRequest
from repro.serve.cache import EmbeddingCache
from repro.serve.telemetry import RequestRecord, Telemetry


def load_checkpoint_classifier(path, graph: Optional[HeteroGraph] = None):
    """Load a checkpoint into the class its metadata names.

    The class is resolved through the serving registry's
    ``CHECKPOINT_CLASSES`` map, so this is the generic spawn path —
    a shard worker process rebuilds its classifier from exactly
    (checkpoint path, serving graph) and nothing else.
    """
    from repro.core.classifier import WidenClassifier
    from repro.serve.registry import CHECKPOINT_CLASSES

    meta = WidenClassifier.read_checkpoint_metadata(path)
    class_name = meta.get("class")
    if class_name not in CHECKPOINT_CLASSES:
        raise ValueError(
            f"checkpoint {path} names unknown class {class_name!r}; "
            f"known: {sorted(CHECKPOINT_CLASSES)}"
        )
    return CHECKPOINT_CLASSES[class_name].load(path, graph=graph)


def serving_reach_of(classifier) -> Optional[int]:
    """The classifier's declared sampling reach (out-hops), or ``None``.

    WIDEN declares it via :attr:`WidenConfig.serving_reach`; duck-typed
    classifiers may expose a plain ``serving_reach`` int attribute.  ``None``
    means the reach is unknown and consumers must assume whole-graph
    dependence (full invalidation, no sharding).
    """
    reach = getattr(getattr(classifier, "config", None), "serving_reach", None)
    if reach is None:
        reach = getattr(classifier, "serving_reach", None)
    if reach is None:
        return None
    reach = int(reach)
    return reach if reach >= 1 else None


@dataclass
class ServeResult:
    """Completed request: ``value`` is a class id (classify) or embedding.

    ``rung`` names the serving-ladder tier that produced the embedding
    (``cache`` / ``store`` / ``overlay`` / ``recompute``); ``queue_wait``
    is the time between submit and batch flush (0 for submit-time cache
    hits), so ``latency = queue_wait + compute`` decomposes exactly.
    """

    request_id: int
    node: int
    kind: str
    value: Union[int, np.ndarray]
    arrival: float
    completion: float
    cache_hit: bool
    rung: str = "recompute"
    queue_wait: float = 0.0

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def compute(self) -> float:
        return max(0.0, self.latency - self.queue_wait)


class InferenceServer:
    """Micro-batched, cached, mutation-aware inference over one graph."""

    def __init__(
        self,
        classifier: BaseClassifier,
        graph: HeteroGraph,
        *,
        max_batch_size: int = 16,
        max_wait: float = 0.002,
        cache_capacity: int = 1024,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        prometheus_path: Optional[str] = None,
        prometheus_interval: float = 10.0,
        store=None,
    ) -> None:
        if classifier.graph is None:
            # A freshly loaded checkpoint: bind the serving graph (schema
            # validated inside bind()).
            if not hasattr(classifier, "bind"):
                raise ValueError(
                    f"{classifier.name}: fit() it or give a classifier with "
                    "a bind() method before serving"
                )
            classifier.bind(graph)
        self.classifier = classifier
        self.graph = graph
        self.seed = int(seed)
        self.batcher = MicroBatcher(max_batch_size=max_batch_size, max_wait=max_wait)
        self.cache = EmbeddingCache(cache_capacity)
        # Serving reports into the shared metrics pipeline (repro.obs): the
        # per-replay reductions stay on this Telemetry object, while the
        # registry accumulates cross-cutting series next to training's.
        self.telemetry = Telemetry(
            max_batch_size=max_batch_size,
            registry=registry if registry is not None else get_registry(),
        )
        self.telemetry.attach_cache(self.cache)
        self._results: Dict[int, ServeResult] = {}
        self._next_id = 0
        # Single-worker service model: a batch cannot start before the
        # previous one finished, so completion times (and therefore the
        # reported throughput) reflect sequential execution even when a
        # logical replay clock drives the arrivals.
        self._busy_until = float("-inf")
        # WIDEN's serving path is identity-free (fresh neighborhood samples
        # every miss), so graph mutations need no classifier-side refresh;
        # generic classifiers fall back to embed() + cache rebuild.
        self._identity_free = hasattr(classifier, "embed_for_serving")
        # Per-node versioning: version_of(n) = base + epoch + bumps[n].
        # ``base`` absorbs the graph version at attach time (a server built
        # on an already-mutated graph seeds like the old global scheme did);
        # ``epoch`` counts coarse, whole-graph invalidations; ``bumps``
        # counts the fine-grained mutations whose frontier reached the node.
        self._version_base = graph.version
        self._epoch = 0
        self._node_bumps: Dict[int, int] = {}
        self._serving_reach = (
            serving_reach_of(classifier) if self._identity_free else None
        )
        # Optional Prometheus text exposition: rewritten atomically at most
        # once per ``prometheus_interval`` seconds of request-clock time
        # (textfile-collector convention; no HTTP listener in this repo).
        self._prometheus_path = prometheus_path
        self._prometheus_interval = float(prometheus_interval)
        self._prometheus_last_flush = float("-inf")
        # Optional materialized-aggregate tier (repro.store): consulted on
        # cache misses before any sampling happens.
        self.store = None
        if store is not None:
            self.attach_store(store)
        self._hook = graph.add_mutation_hook(self._on_graph_mutation)

    def attach_store(self, store) -> None:
        """Attach a materialized-aggregate store (``repro.store``).

        The store is validated against the classifier's geometry, its
        parameter digest and this server's seed — a mismatched store would
        silently serve aggregates of a different model or rng scheme, so
        incompatibility is a hard error, never a degraded mode.  Once
        attached, cache misses whose store row is *fresh* (row version ==
        the node's serving version) skip sampling and traversal entirely;
        stale or absent rows fall back to full materialization, which also
        refreshes the row in the store's overlay (lazy re-materialization).
        """
        if not self._identity_free:
            raise ValueError(
                "a materialized store needs an identity-free serving path "
                f"(embed_for_serving); {self.classifier.name!r} has none"
            )
        reason = store.compatible_with(self.classifier, self.seed)
        if reason is not None:
            raise ValueError(f"store incompatible with this server: {reason}")
        self.store = store

    @classmethod
    def from_checkpoint(
        cls, path, graph: HeteroGraph, **kwargs
    ) -> "InferenceServer":
        """Build a server from exactly (checkpoint path, serving graph).

        This is the spawn path of the cluster's ``mp`` transport: a worker
        process receives a path and a serialized shard payload, never a
        live classifier — construction is checkpoint-driven by design so
        it works identically on either side of a process boundary.
        """
        return cls(load_checkpoint_classifier(path), graph, **kwargs)

    # ------------------------------------------------------------------
    # Mutation/invalidation state across the pickle boundary
    # ------------------------------------------------------------------

    def export_serving_state(self) -> Dict[str, object]:
        """The state that makes responses reproducible, as plain data.

        ``(version_base, epoch, node_bumps)`` fully determine
        :meth:`_version_of` — the rng-seed component and cache key of every
        answer.  Two servers with equal parameters, equal graphs and equal
        serving state are bit-identical, which is how the transport tests
        compare an mp worker's invalidation state against an inline one's
        without reaching into a foreign process.
        """
        return {
            "version_base": int(self._version_base),
            "epoch": int(self._epoch),
            "node_bumps": {int(k): int(v) for k, v in self._node_bumps.items()},
            "graph_version": int(self.graph.version),
        }

    def restore_serving_state(self, state: Dict[str, object]) -> None:
        """Adopt exported mutation/invalidation counters (replayed server).

        Cached embeddings are dropped: the cache is a performance artifact,
        not part of the answer, and entries keyed by versions the restored
        counters no longer produce must not resurface.
        """
        self._version_base = int(state["version_base"])
        self._epoch = int(state["epoch"])
        self._node_bumps = {
            int(k): int(v) for k, v in dict(state["node_bumps"]).items()
        }
        self.cache.invalidate()

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def submit(self, node: int, *, kind: str = "classify", now: Optional[float] = None) -> int:
        """Enqueue one request; returns its id.  May flush a due batch."""
        if kind not in ("classify", "embed"):
            raise ValueError(f"unknown request kind {kind!r}")
        node = int(node)
        if not 0 <= node < self.graph.num_nodes:
            raise IndexError(
                f"node {node} out of range [0, {self.graph.num_nodes})"
            )
        now = self._now(now)
        self._poll_deadline(now)
        self._maybe_flush_prometheus(now)
        self.telemetry.record_queue_depth(self.batcher.depth)
        request = ServeRequest(self._next_id, node, now, kind)
        self._next_id += 1
        if self._try_complete_from_cache(request):
            return request.request_id
        batch = self.batcher.submit(request)
        if batch is not None:
            self._execute(batch, flush_time=now)
        return request.request_id

    def _try_complete_from_cache(self, request: ServeRequest) -> bool:
        """Cache-in-front fast path: a resident embedding (current version)
        completes the request at submit time, skipping the batch queue and
        its deadline entirely.  Classify hits additionally need the
        embeddings->classes head; classifiers without one queue normally."""
        if request.kind == "classify" and not hasattr(
            self.classifier, "predict_from_embeddings"
        ):
            return False
        cached = self.cache.get(request.node, self._version_of(request.node))
        if cached is None:
            return False
        start = time.perf_counter()
        if request.kind == "classify":
            value: Union[int, np.ndarray] = int(
                self.classifier.predict_from_embeddings(cached[np.newaxis])[0]
            )
        else:
            value = cached
        completion = request.arrival + (time.perf_counter() - start)
        self._finish(
            request, value, completion,
            cache_hit=True, batch_size=1, rung="cache", queue_wait=0.0,
        )
        return True

    def poll(self, now: Optional[float] = None) -> int:
        """Flush batches whose deadline has passed; returns batches executed."""
        return self._poll_deadline(self._now(now))

    def drain(self, now: Optional[float] = None) -> None:
        """Execute everything still queued (end-of-stream / shutdown)."""
        now = self._now(now)
        while True:
            batch = self.batcher.flush()
            if batch is None:
                return
            self._execute(batch, flush_time=max(now, batch[0].arrival))

    def result(self, request_id: int, *, pop: bool = True) -> ServeResult:
        """Completed result by id; raises ``KeyError`` while still queued."""
        if request_id not in self._results:
            raise KeyError(
                f"request {request_id} has no result yet; poll() or drain() "
                "to flush pending batches"
            )
        if pop:
            return self._results.pop(request_id)
        return self._results[request_id]

    # -- blocking conveniences ------------------------------------------

    def classify(self, nodes, now: Optional[float] = None) -> np.ndarray:
        """Submit + drain: class predictions for ``nodes`` (blocking)."""
        return self._run_now(nodes, "classify", now)

    def embed(self, nodes, now: Optional[float] = None) -> np.ndarray:
        """Submit + drain: embeddings for ``nodes`` (blocking)."""
        return self._run_now(nodes, "embed", now)

    def _run_now(self, nodes, kind: str, now: Optional[float]) -> np.ndarray:
        now = self._now(now)
        ids = [self.submit(node, kind=kind, now=now) for node in np.atleast_1d(nodes)]
        self.drain(now)
        values = [self.result(request_id).value for request_id in ids]
        return np.stack(values) if kind == "embed" else np.asarray(values)

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------

    def add_nodes(
        self,
        type_name: str,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Streaming node arrival; the new ids are immediately servable."""
        return self.graph.add_nodes(type_name, features=features, labels=labels, count=count)

    def add_edges(self, edge_type: str, src, dst, symmetric: bool = True) -> None:
        """Streaming edge arrival (fires invalidation like ``add_nodes``)."""
        self.graph.add_edges(edge_type, src, dst, symmetric=symmetric)

    def _version_of(self, node: int) -> int:
        """The node's serving version: rng seed component and cache key."""
        return self._version_base + self._epoch + self._node_bumps.get(int(node), 0)

    def metrics_registry_snapshot(self) -> MetricsRegistry:
        """The registry's series plus point-in-time serving state.

        Cumulative series are merged from the live registry *by payload*
        (never mutated), then the snapshot-only series are layered on: the
        :class:`EmbeddingCache` per-node hit distribution (a histogram the
        cache keeps as raw counters, so re-observing it into a live
        registry would double-count) and, when a store is attached, its
        row/overlay gauges.  This is what the ``/metrics`` HTTP endpoint
        and the textfile exposition both render.
        """
        merged = MetricsRegistry()
        merged.merge_payload(self.telemetry.registry.to_payload())
        merged.histogram("serve_cache_node_hits").observe_many(
            float(count) for count in self.cache.node_hits.values()
        )
        merged.gauge("serve_cache_entries").set(len(self.cache))
        if self.store is not None:
            merged.gauge("serve_store_rows").set(self.store.num_rows)
            merged.gauge("serve_store_row_bytes").set(self.store.row_nbytes)
            merged.gauge("serve_store_overlay_rows").set(
                self.store.overlay_size
            )
        return merged

    def render_prometheus(self) -> str:
        """Prometheus text exposition of :meth:`metrics_registry_snapshot`."""
        return self.metrics_registry_snapshot().render_prometheus()

    def flush_prometheus(self) -> Optional[int]:
        """Write the Prometheus rendering now (if a path is set).

        Returns the sample-line count, or ``None`` when no ``prometheus_path``
        was configured.  The periodic hook on the request path calls this at
        most once per ``prometheus_interval``; call it directly for an
        end-of-run flush.
        """
        if self._prometheus_path is None:
            return None
        return self.metrics_registry_snapshot().write_prometheus(
            self._prometheus_path
        )

    def _maybe_flush_prometheus(self, now: float) -> None:
        if self._prometheus_path is None:
            return
        if now - self._prometheus_last_flush < self._prometheus_interval:
            return
        self._prometheus_last_flush = now
        self.flush_prometheus()

    def _on_graph_mutation(self, graph: HeteroGraph) -> None:
        event = graph.last_mutation
        if self._identity_free and self._serving_reach is not None and event is not None:
            if event.kind == "add_nodes":
                # Appended nodes start isolated: no existing adjacency list
                # changed, so every resident entry is still exact.  Bump the
                # new ids (nothing is cached for them yet) and keep the
                # whole cache warm.
                frontier = event.nodes
            elif event.sources.size or event.kind == "add_edges":
                frontier = mutation_frontier(
                    graph, event.sources, self._serving_reach
                )
            else:
                frontier = None  # rewire of unknown extent
            if frontier is not None:
                for node in frontier:
                    node = int(node)
                    self._node_bumps[node] = self._node_bumps.get(node, 0) + 1
                dropped = self.cache.invalidate_nodes(frontier)
                self.telemetry.record_invalidation(
                    frontier_size=int(len(frontier)),
                    dropped=dropped,
                    kept=len(self.cache),
                    reason="frontier",
                )
                self._count_store_invalidations(frontier)
                return
        # Coarse fallback: unknown mutation extent or identity-carrying
        # classifier — bump every node at once and drop the whole cache.
        self._epoch += 1
        dropped = self.cache.invalidate()
        self.telemetry.record_invalidation(
            frontier_size=self.graph.num_nodes, dropped=dropped, kept=0,
            reason="full",
        )
        if self.store is not None:
            self.telemetry.registry.counter(
                "serve_store_invalidated_rows_total", reason="full"
            ).inc(self.store.num_rows)
        if not self._identity_free and self.classifier.graph is graph:
            self.classifier.refresh_graph_caches()

    def _count_store_invalidations(self, frontier) -> None:
        """Count frontier nodes whose store rows just went stale.

        The version bump *is* the invalidation (rows carry the version
        they were materialized at; freshness is an equality check), so
        this only keeps the books: how many materialized rows a mutation
        knocked out, by reason, next to the cache-entry counters.
        """
        if self.store is None:
            return
        stale = sum(1 for node in frontier if self.store.has(int(node)))
        if stale:
            self.telemetry.registry.counter(
                "serve_store_invalidated_rows_total", reason="frontier"
            ).inc(stale)

    def close(self) -> None:
        """Detach from the graph (stop receiving mutation hooks)."""
        try:
            self.graph.remove_mutation_hook(self._hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _poll_deadline(self, now: float) -> int:
        executed = 0
        while True:
            queue = self.batcher._queue
            deadline = queue[0].arrival + self.batcher.max_wait if queue else None
            batch = self.batcher.poll(now)
            if batch is None:
                return executed
            # The deadline fired at oldest-arrival + max_wait, which is when
            # a real event loop would have flushed; use it as the flush time
            # so replayed traces don't inflate queue waits to the next
            # arrival gap.
            self._execute(batch, flush_time=deadline)
            executed += 1

    def _compute_embedding(self, node: int) -> np.ndarray:
        return self._compute_embeddings([int(node)])[0][0]

    def _compute_embeddings(self, nodes: List[int]):
        """Cold-path embeddings for ``nodes`` — one batched model call.

        Returns ``(embeddings, rungs)`` where ``rungs[i]`` names the ladder
        tier that produced row ``i`` (``store`` / ``overlay`` /
        ``recompute``) — the per-node attribution the request records carry.

        Determinism is preserved under batching: each node gets its own rng
        seeded ``(server seed, node version, node id)``, so every row is
        identical to a single-node computation regardless of which other
        misses happened to share the batch.
        """
        if self._identity_free:
            if self.store is not None:
                return self._compute_embeddings_with_store(nodes)
            rngs = [
                np.random.default_rng([self.seed, self._version_of(node), int(node)])
                for node in nodes
            ]
            rungs = ["recompute"] * len(nodes)
            if hasattr(self.classifier, "embed_for_serving_batch"):
                return (
                    self.classifier.embed_for_serving_batch(
                        np.asarray(nodes, dtype=np.int64), self.graph, rngs
                    ),
                    rungs,
                )
            return (
                np.stack(
                    [
                        self.classifier.embed_for_serving(
                            np.array([node]), self.graph, rng=rng
                        )[0]
                        for node, rng in zip(nodes, rngs)
                    ]
                ),
                rungs,
            )
        return (
            self.classifier.embed(np.asarray(nodes), graph=self.graph),
            ["recompute"] * len(nodes),
        )

    def _compute_embeddings_with_store(self, nodes: List[int]):
        """Store-tier miss path: O(1) row lookups, attention + MLP only.

        Each node's store row is *fresh* when its recorded version equals
        the node's current serving version — the same counter that seeds
        the recompute rng, so fresh rows hold exactly the packs a fresh
        recompute would build and the answer is bit-identical.  Stale and
        absent nodes are re-materialized with their current ``(seed,
        version, node)`` rng (the full recompute, minus the attention that
        now runs jointly with the hits) and written back into the store's
        overlay, so the next miss on them is a hit again.
        """
        store = self.store
        nodes_arr = np.asarray(nodes, np.int64)
        want = np.array([self._version_of(node) for node in nodes], np.int64)
        have = store.versions_of(nodes_arr)
        fresh_mask = have == want
        hit = int(fresh_mask.sum())
        # Attribution before any refresh: a fresh row out of the overlay is
        # an "overlay" serve, out of the base blocks a "store" serve; a
        # stale/absent row is a recompute no matter where the refreshed row
        # lands afterwards.
        rungs = [
            ("overlay" if store.in_overlay(int(node)) else "store")
            if fresh
            else "recompute"
            for node, fresh in zip(nodes_arr, fresh_mask)
        ]
        if hit == nodes_arr.size:
            # All-hit fast path: one vectorized gather, no assembly buffer.
            blocks, lengths = store.blocks_for(nodes_arr)
        else:
            fallback_positions = np.nonzero(~fresh_mask)[0]
            total, dim = store.block_shape
            blocks = np.zeros((nodes_arr.size, total, dim))
            lengths = np.zeros(
                (nodes_arr.size, 1 + int(store.meta["num_walks"])), np.int64
            )
            if hit:
                hit_blocks, hit_lengths = store.blocks_for(
                    nodes_arr[fresh_mask]
                )
                blocks[fresh_mask] = hit_blocks
                lengths[fresh_mask] = hit_lengths
            rngs = [
                np.random.default_rng(
                    [self.seed, int(want[position]), int(nodes_arr[position])]
                )
                for position in fallback_positions
            ]
            fresh_rows = self.classifier.materialize_store_rows(
                nodes_arr[fallback_positions], self.graph, rngs
            )
            for position, row_set in zip(fallback_positions, fresh_rows):
                store.refresh(
                    int(nodes_arr[position]), int(want[position]), row_set
                )
                block, length_row = store.block_for(int(nodes_arr[position]))
                blocks[position] = block
                lengths[position] = length_row
        stale = int(((~fresh_mask) & (have >= 0)).sum())
        absent = int((have < 0).sum())
        self.telemetry.record_store_lookup(hit=hit, stale=stale, absent=absent)
        return self.classifier.embed_from_store_blocks(blocks, lengths), rungs

    def reset_clock(self) -> None:
        """Forget the busy-until watermark (between independent replays)."""
        self._busy_until = float("-inf")

    def _execute(self, batch: List[ServeRequest], flush_time: float) -> None:
        flush_time = max(flush_time, self._busy_until)
        start = time.perf_counter()
        embeddings: Dict[int, np.ndarray] = {}
        hit: Dict[int, bool] = {}
        rung: Dict[int, str] = {}
        miss_nodes: List[int] = []
        for node in dict.fromkeys(request.node for request in batch):
            cached = self.cache.get(node, self._version_of(node))
            if cached is not None:
                embeddings[node] = cached
                hit[node] = True
                rung[node] = "cache"
            else:
                miss_nodes.append(node)
                hit[node] = False
        if miss_nodes:
            # All of the batch's misses go through one vectorized forward.
            computed, miss_rungs = self._compute_embeddings(miss_nodes)
            self.telemetry.record_compute_batch(len(miss_nodes))
            for node, embedding, node_rung in zip(
                miss_nodes, computed, miss_rungs
            ):
                self.cache.put(node, self._version_of(node), embedding)
                embeddings[node] = embedding
                rung[node] = node_rung
        classify_requests = [r for r in batch if r.kind == "classify"]
        predictions: Dict[int, int] = {}
        if classify_requests:
            nodes = list(dict.fromkeys(r.node for r in classify_requests))
            stacked = np.stack([embeddings[node] for node in nodes])
            if hasattr(self.classifier, "predict_from_embeddings"):
                classes = self.classifier.predict_from_embeddings(stacked)
            else:
                classes = self.classifier.predict(
                    np.asarray(nodes), graph=self.graph
                )
            predictions = {node: int(cls) for node, cls in zip(nodes, classes)}
        completion = flush_time + (time.perf_counter() - start)
        self._busy_until = completion
        self.telemetry.record_batch(len(batch))
        for request in batch:
            value: Union[int, np.ndarray]
            if request.kind == "classify":
                value = predictions[request.node]
            else:
                value = embeddings[request.node]
            self._finish(
                request, value, completion,
                cache_hit=hit[request.node], batch_size=len(batch),
                rung=rung[request.node],
                queue_wait=max(0.0, flush_time - request.arrival),
            )

    def _finish(
        self,
        request: ServeRequest,
        value: Union[int, np.ndarray],
        completion: float,
        *,
        cache_hit: bool,
        batch_size: int,
        rung: str = "recompute",
        queue_wait: float = 0.0,
    ) -> None:
        self._results[request.request_id] = ServeResult(
            request_id=request.request_id,
            node=request.node,
            kind=request.kind,
            value=value,
            arrival=request.arrival,
            completion=completion,
            cache_hit=cache_hit,
            rung=rung,
            queue_wait=queue_wait,
        )
        self.telemetry.record_request(
            RequestRecord(
                node=request.node,
                arrival=request.arrival,
                completion=completion,
                cache_hit=cache_hit,
                batch_size=batch_size,
                rung=rung,
                queue_wait=queue_wait,
            )
        )

    @staticmethod
    def _now(now: Optional[float]) -> float:
        return time.perf_counter() if now is None else float(now)
