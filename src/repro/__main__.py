"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``stats [dataset]``
    Print Table-1-style statistics for one or all datasets.
``train [dataset] [--epochs N]``
    Train WIDEN on a dataset and report test micro-F1.
``compare [dataset] [--epochs N]``
    Train WIDEN and every baseline on a dataset; print a leaderboard.
``serve-bench [dataset] [--requests N] [--rate R] ...``
    Train WIDEN, checkpoint it through the model registry, restore it into
    an :class:`~repro.serve.InferenceServer`, replay a deterministic
    Poisson/Zipf arrival trace, and print a latency/throughput report:
    cold single-request baseline vs. the batched server (cold cache) vs.
    the batched server (warm cache).
``serve-cluster [dataset] [--shards K] [--transport T] [--smoke] ...``
    Train WIDEN, shard the serving graph into K halo-replicated shards
    (:mod:`repro.cluster`), replay the same deterministic trace through the
    scatter-gather router, and print the cluster report: per-shard
    ownership/halo/latency plus cluster throughput.  ``--transport``
    selects the shard boundary: ``inline`` (deterministic replay, default),
    ``thread`` (worker threads), ``mp`` (worker processes rebuilt from
    the checkpoint), or ``socket`` (TCP workers with heartbeats, respawn,
    and mutation-log catch-up; ``--workers host:port,...`` points at
    pre-started ``shard-worker`` processes, otherwise workers are spawned
    locally).  ``--prometheus-out`` writes the merged shard-labeled
    Prometheus exposition.
``shard-worker --listen HOST:PORT``
    Run one shard-engine server speaking the length-prefixed TCP framing
    of :mod:`repro.cluster.net`.  Port 0 picks a free port; the bound
    address is announced as ``LISTENING host port`` on stdout.  Point a
    ``serve-cluster --transport socket --workers`` fleet at one of these
    per shard to span hosts.
``store-build [dataset] [--out DIR] [--checkpoint F] [--epochs N]``
    Materialize every node's wide/deep aggregate rows into a versioned
    on-disk store (:mod:`repro.store`).  Loads ``--checkpoint`` when
    given, otherwise trains first (same seed/epochs defaults as
    ``serve-bench``, so the two line up without a checkpoint file).
    ``serve-bench --store DIR`` and ``serve-cluster --store DIR`` then
    serve cache misses from the store — attention + MLP only, no
    sampling — falling back to full recompute for stale/absent rows.
``trace [dataset] [--shards K] [--transport T] [--smoke] ...``
    Run a traced workload through the cluster's scatter-gather path with
    distributed tracing and SLO monitoring on (:mod:`repro.obs.dist` /
    :mod:`repro.obs.slo`): writes a stitched Chrome/Perfetto trace with
    router and per-shard process lanes (``--dist-trace-out``), a
    rolling-window SLO report with error budget and slow-request exemplars
    (``--slo-out``), and one attribution record per request — queue-wait
    vs compute, serving-ladder rung counts — as JSONL
    (``--attribution-out``).  Non-zero exit if any request's rung counts
    fail to sum to its node count.
``tune-scatter [--repeats N] [--tuning-out F]``
    Micro-sweep the scatter-add backend crossovers on this machine and
    print the ``REPRO_SCATTER_*`` environment settings they imply.
``tune-kernels [--repeats N] [--table-out F] [--tuning-out F]``
    Superset of ``tune-scatter``: sweep the scatter-add crossovers *and*
    the padded-vs-sparse forward crossover, persist the versioned
    per-host kernel-selection table (``~/.cache/repro/kernel_table.json``
    unless ``--table-out``/``REPRO_KERNEL_TABLE`` says otherwise), which
    every later ``repro.tensor`` import auto-applies.
``profile [dataset] [--epochs N] [--trace-out F] [--metrics-out F]``
    Train WIDEN under the :mod:`repro.obs` instrumentation: prints an
    op-level time/FLOP table and the per-epoch message-volume series, and
    writes a Chrome-loadable ``trace.json`` plus a ``metrics.jsonl`` with
    per-epoch loss/F1/message-volume/KL-trigger series.

``train`` and ``serve-bench`` additionally accept ``--metrics-out FILE`` to
dump the shared metrics registry as JSONL after the run.  ``serve-bench``
and ``serve-cluster`` accept ``--metrics-port P`` to expose a live
Prometheus ``/metrics`` endpoint for the duration of the run (port 0
picks a free port).  Every WIDEN run accepts ``--forward-mode
{batched,sparse,auto,per_node}`` to select the vectorized padded batch
path (default), the CSR sparse kernels, per-batch automatic selection
from the kernel table, or the per-node reference loop.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.datasets import DATASETS, make_dataset

    names = [args.dataset] if args.dataset else sorted(DATASETS)
    for name in names:
        stats = make_dataset(name, seed=args.seed, scale=args.scale).statistics()
        print(f"{name}: {stats['num_nodes']} nodes ({stats['num_node_types']} types), "
              f"{stats['num_edges']} edges ({stats['num_edge_types']} types), "
              f"{stats['num_features']} features, {stats['num_classes']} classes, "
              f"split {stats['train_nodes']}/{stats['val_nodes']}/{stats['test_nodes']}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.eval import micro_f1

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    if args.shards is not None or args.resume is not None:
        return _train_distributed(args, dataset)
    overrides = {} if args.dim is None else {"dim": args.dim}
    model = WidenClassifier(
        seed=args.seed, forward_mode=args.forward_mode, **overrides
    )
    model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)
    predictions = model.predict(dataset.split.test)
    score = micro_f1(dataset.graph.labels[dataset.split.test], predictions)
    print(f"widen on {dataset.name}: micro-F1 {score:.4f} "
          f"({np.mean(model.epoch_seconds):.3f} s/epoch, "
          f"{args.forward_mode} forward)")
    _maybe_dump_metrics(args)
    return 0


def _train_distributed(args: argparse.Namespace, dataset) -> int:
    """``train --shards K [--transport T] [--resume PATH]``: data-parallel
    training over the cluster substrate (same flag group serve-cluster
    parses — one partition/transport vocabulary for serving and training).
    """
    from pathlib import Path

    from repro.cluster.train import DistributedTrainer
    from repro.core import WidenClassifier
    from repro.eval import micro_f1

    graph, split = dataset.graph, dataset.split
    shards = args.shards if args.shards is not None else 2
    workers = (
        [w.strip() for w in args.workers.split(",") if w.strip()]
        if args.workers else None
    )
    fleet_kwargs = dict(transport=args.transport, workers=workers,
                        partition_seed=args.seed)
    resume = Path(args.resume) if args.resume else None
    if resume is not None and resume.is_dir():
        print(f"resuming fleet from {resume} ...")
        fleet_kwargs.pop("partition_seed")  # the manifest owns the partition
        trainer = DistributedTrainer.resume(resume, graph, **fleet_kwargs)
    elif resume is not None:
        print(f"spawning {shards} shard(s) from checkpoint {resume} ...")
        trainer = DistributedTrainer(resume, graph, shards, **fleet_kwargs)
    else:
        overrides = {} if args.dim is None else {"dim": args.dim}
        seed_model = WidenClassifier(
            seed=args.seed, forward_mode=args.forward_mode, **overrides
        )
        seed_model.fit(graph, split.train, epochs=0)  # build + bind only
        trainer = DistributedTrainer.from_classifier(
            seed_model, graph, shards, **fleet_kwargs
        )
    with trainer:
        history = trainer.fit(
            split.train, args.epochs, checkpoint_dir=args.checkpoint_out
        )
        model = trainer.classifier(graph=graph)
        if args.prometheus_out:
            text = trainer.render_prometheus()
            Path(args.prometheus_out).write_text(text)
            lines = sum(1 for l in text.splitlines() if l and not l.startswith("#"))
            print(f"wrote {lines} Prometheus samples to {args.prometheus_out}")
    predictions = model.predict(split.test)
    score = micro_f1(graph.labels[split.test], predictions)
    seconds = float(np.sum(history.epoch_seconds)) or 1e-12
    rate = history.epochs * split.train.size / seconds
    print(f"widen on {dataset.name}: micro-F1 {score:.4f} "
          f"({trainer.plan.num_shards} shards, {args.transport} transport, "
          f"{np.mean(history.epoch_seconds):.3f} s/epoch, "
          f"{rate:.0f} nodes/s, final loss {history.losses[-1]:.6f})")
    if args.checkpoint_out:
        print(f"fleet checkpoints in {args.checkpoint_out}")
    _maybe_dump_metrics(args)
    return 0


def _maybe_dump_metrics(args: argparse.Namespace) -> None:
    if getattr(args, "metrics_out", None):
        from repro.obs import get_registry

        count = get_registry().dump_jsonl(args.metrics_out)
        print(f"wrote {count} metric records to {args.metrics_out}")


def _maybe_serve_metrics(args: argparse.Namespace, render):
    """Start a live ``/metrics`` endpoint when ``--metrics-port`` is given.

    Returns the server (caller closes it) or ``None``.  ``render`` is a
    zero-argument callable producing the Prometheus text exposition, read
    per scrape.
    """
    if getattr(args, "metrics_port", None) is None:
        return None
    from repro.obs import MetricsHTTPServer

    server = MetricsHTTPServer(render, port=args.metrics_port)
    print(f"metrics endpoint live at {server.url}")
    return server


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.obs import (
        MetricsRegistry, OpProfiler, Tracer, set_registry, set_tracer,
    )

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    # Fresh registry + enabled tracer for the duration of the run, so the
    # dumps contain exactly this training run.
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    previous_registry = set_registry(registry)
    previous_tracer = set_tracer(tracer)
    profiler = OpProfiler()
    overrides = {} if args.dim is None else {"dim": args.dim}
    model = WidenClassifier(
        seed=args.seed, forward_mode=args.forward_mode, **overrides
    )
    print(f"profiling widen on {dataset.name} ({args.epochs} epochs, "
          f"{args.forward_mode} forward, dim={model.config.dim}) ...\n")
    try:
        with profiler:
            model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)
    finally:
        profiler.disable()
        set_registry(previous_registry)
        set_tracer(previous_tracer)
    profiler.export(registry)

    print("op-level profile (self-time, analytic FLOPs)")
    print(profiler.table())

    history = model.trainer.history
    print("\nper-epoch training series")
    header = (
        f"{'epoch':>5} {'loss':>8} {'microF1':>8} {'wide msgs':>10} "
        f"{'deep msgs':>10} {'drops':>6} {'KL fires':>9} {'sec':>7}"
    )
    print(header)
    print("-" * len(header))
    for epoch in range(history.epochs):
        print(
            f"{epoch:>5} {history.losses[epoch]:>8.4f} "
            f"{history.train_micro_f1[epoch]:>8.4f} "
            f"{history.wide_messages[epoch]:>10} "
            f"{history.deep_messages[epoch]:>10} "
            f"{history.wide_drops[epoch] + history.deep_drops[epoch]:>6} "
            f"{history.trigger_fires[epoch]:>9} "
            f"{history.epoch_seconds[epoch]:>7.3f}"
        )

    events = tracer.write_chrome_trace(args.trace_out)
    records = registry.dump_jsonl(args.metrics_out)
    print(f"\nwrote {events} trace events to {args.trace_out} "
          f"(load via chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {records} metric records to {args.metrics_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import BASELINES
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.eval import micro_f1

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    rows = []
    for name in list(BASELINES) + ["widen"]:
        if name == "gtn" and dataset.name == "yelp":
            continue  # matches the paper's skip
        if name == "widen":
            model = WidenClassifier(seed=args.seed, forward_mode=args.forward_mode)
        else:
            kwargs = {"seed": args.seed}
            if name == "han":
                kwargs["target_type"] = dataset.target_type
            model = BASELINES[name](**kwargs)
        epochs = max(1, args.epochs // 5) if name == "node2vec" else args.epochs
        model.fit(dataset.graph, dataset.split.train, epochs=epochs)
        predictions = model.predict(dataset.split.test)
        score = micro_f1(dataset.graph.labels[dataset.split.test], predictions)
        rows.append((score, name, float(np.mean(model.epoch_seconds))))
        print(f"  trained {name}: {score:.4f}")
    print(f"\nleaderboard on {dataset.name}:")
    for score, name, seconds in sorted(rows, reverse=True):
        print(f"  {name:<10} micro-F1 {score:.4f}   {seconds:.3f} s/epoch")
    return 0


def _cmd_store_build(args: argparse.Namespace) -> int:
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.obs import get_registry
    from repro.store import build_store

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    if args.checkpoint:
        print(f"loading checkpoint {args.checkpoint} ...")
        model = WidenClassifier.load(args.checkpoint, graph=dataset.graph)
    else:
        print(f"training widen on {dataset.name} ({args.epochs} epochs) ...")
        model = WidenClassifier(seed=args.seed, forward_mode=args.forward_mode)
        model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)

    store = build_store(
        model, dataset.graph, args.out,
        seed=args.seed, dataset=dataset.name, checkpoint=args.checkpoint,
    )
    registry = get_registry()
    seconds = registry.gauge("store_build_seconds").value
    print(f"materialized {store.num_rows} node rows "
          f"({store.nbytes / 1e6:.1f} MB, {store.row_nbytes} B/row) "
          f"in {seconds:.2f}s -> {args.out}")
    print(f"store keyed to params digest {store.meta['params_digest']}, "
          f"seed {store.meta['seed']}, graph version {store.meta['graph_version']}")
    _maybe_dump_metrics(args)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import tempfile

    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.serve import (
        InferenceServer, ModelRegistry, cold_single_requests, make_trace, replay,
    )

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    print(f"training widen on {dataset.name} ({args.epochs} epochs) ...")
    model = WidenClassifier(seed=args.seed, forward_mode=args.forward_mode)
    model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)

    # Round-trip through the registry: the served model is restored from its
    # checkpoint exactly as a real serving process would be.
    with tempfile.TemporaryDirectory(prefix="repro-registry-") as root:
        registry = ModelRegistry(root)
        registry.save(f"widen-{dataset.name}", model)
        served = registry.load(f"widen-{dataset.name}", graph=dataset.graph)

        pool = dataset.split.test
        trace = make_trace(
            pool, args.requests, rate=args.rate,
            zipf_exponent=args.zipf, rng=args.seed,
        )
        span = trace[-1].time
        print(f"trace: {len(trace)} requests over {span:.2f}s "
              f"({len(np.unique([e.node for e in trace]))} distinct of "
              f"{pool.size} servable nodes, zipf s={args.zipf})\n")

        cold = cold_single_requests(served, dataset.graph, trace, seed=args.seed)
        print("cold single-request baseline (no batching, no cache)")
        print("-" * 52)
        print(f"latency mean      {cold['latency_mean_s'] * 1e3:.3f} ms")
        print(f"latency p50/p95/p99   "
              f"{cold['latency_p50_s'] * 1e3:.3f} / "
              f"{cold['latency_p95_s'] * 1e3:.3f} / "
              f"{cold['latency_p99_s'] * 1e3:.3f} ms")
        print(f"throughput        {cold['throughput_rps']:.1f} req/s\n")

        store = None
        if args.store:
            from repro.store import AggregateStore

            store = AggregateStore.open(args.store)
            print(f"store: {store.num_rows} materialized rows from "
                  f"{args.store} (digest {store.meta['params_digest']})\n")
        server = InferenceServer(
            served, dataset.graph,
            max_batch_size=args.batch_size, max_wait=args.max_wait,
            cache_capacity=args.cache_capacity, seed=args.seed,
            store=store,
        )
        # The endpoint renders the server's snapshot — registry series
        # plus the cache node-hit histogram and store gauges.
        endpoint = _maybe_serve_metrics(args, server.render_prometheus)
        try:
            replay(server, trace)
            print(server.telemetry.format_report(
                "server, first pass (cold cache)"))
            warm = replay(server, trace)
            print()
            print(server.telemetry.format_report(
                "server, replayed pass (warm cache)"))
        finally:
            if endpoint is not None:
                endpoint.close()
        speedup = (
            cold["latency_mean_s"] / warm["latency_mean_s"]
            if warm["latency_mean_s"] > 0 else float("inf")
        )
        print(f"\nwarm-cache mean latency is {speedup:.1f}x lower than the "
              f"cold single-request baseline "
              f"({warm['latency_mean_s'] * 1e3:.3f} ms vs "
              f"{cold['latency_mean_s'] * 1e3:.3f} ms)")
    _maybe_dump_metrics(args)
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import tempfile

    from repro.cluster import ClusterRouter
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.serve import ModelRegistry, make_trace

    if args.smoke:
        # CI-sized run: tiny graph, short trace, one epoch.
        args.scale = min(args.scale, 0.3)
        args.epochs = min(args.epochs, 1)
        args.requests = min(args.requests, 60)
    if args.shards is None:
        args.shards = 2
    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    print(f"training widen on {dataset.name} ({args.epochs} epochs) ...")
    model = WidenClassifier(seed=args.seed, forward_mode=args.forward_mode)
    model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)

    with tempfile.TemporaryDirectory(prefix="repro-registry-") as root:
        registry = ModelRegistry(root)
        path = registry.save(f"widen-{dataset.name}", model)
        workers = (
            [w.strip() for w in args.workers.split(",") if w.strip()]
            if args.workers else None
        )
        router = ClusterRouter.from_checkpoint(
            path, dataset.graph, args.shards,
            transport=args.transport,
            workers=workers,
            max_batch_size=args.batch_size, max_wait=args.max_wait,
            cache_capacity=args.cache_capacity, seed=args.seed,
            partition_seed=args.seed,
            prometheus_path=args.prometheus_out,
            store_path=args.store or None,
        )
        if args.store:
            print(f"store: sliced {router.store.num_rows} rows from "
                  f"{args.store} across {args.shards} shards by ownership")
        endpoint = _maybe_serve_metrics(args, router.render_prometheus)
        plan = router.plan.summary()
        print(f"\nplan: {plan['num_shards']} shards over the "
              f"{args.transport} transport, reach {plan['reach']}, "
              f"edge cut {plan['edge_cut']}, "
              f"replication {plan['replication_factor']:.2f}x")
        for shard in plan["shards"]:
            print(f"  shard {shard['shard']}: {shard['owned']} owned, "
                  f"{shard['halo_only']} halo-replicated, "
                  f"{shard['edges']} edges, "
                  f"{shard['boundary_nodes']} boundary nodes")

        trace = make_trace(
            dataset.split.test, args.requests, rate=args.rate,
            zipf_exponent=args.zipf, rng=args.seed,
        )
        cold = router.replay(trace)
        warm = router.replay(trace)
        for title, stats in (("cold cache", cold), ("warm cache", warm)):
            print(f"\ncluster, {title}")
            print("-" * (9 + len(title)))
            print(f"requests          {stats['requests']}")
            print(f"throughput        {stats['throughput_rps']:.1f} req/s")
            print(f"latency p50/p95/p99   "
                  f"{stats['latency_p50_s'] * 1e3:.3f} / "
                  f"{stats['latency_p95_s'] * 1e3:.3f} / "
                  f"{stats['latency_p99_s'] * 1e3:.3f} ms")
            print(f"halo requests     {stats['halo_requests']} "
                  f"of {stats['requests']}")
            for shard in stats["shards"]:
                print(f"  shard {shard['shard']}: "
                      f"{shard['requests']} reqs, "
                      f"p95 {shard['latency_p95_s'] * 1e3:.3f} ms, "
                      f"occupancy {shard['batch_occupancy'] * 100:.0f}%, "
                      f"hit rate {shard['cache_hit_rate'] * 100:.0f}%")
        if args.prometheus_out:
            lines = router.flush_prometheus()
            print(f"\nwrote {lines} Prometheus samples to {args.prometheus_out}")
        if endpoint is not None:
            endpoint.close()
        router.close()
    _maybe_dump_metrics(args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.cluster import ClusterRouter
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.obs import SLOTarget
    from repro.serve import ModelRegistry, make_trace

    if args.smoke:
        args.scale = min(args.scale, 0.3)
        args.epochs = min(args.epochs, 1)
        args.requests = min(args.requests, 48)
    if args.shards is None:
        args.shards = 2
    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    print(f"training widen on {dataset.name} ({args.epochs} epochs) ...")
    model = WidenClassifier(seed=args.seed, forward_mode=args.forward_mode)
    model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)

    with tempfile.TemporaryDirectory(prefix="repro-registry-") as root:
        registry = ModelRegistry(root)
        path = registry.save(f"widen-{dataset.name}", model)
        router = ClusterRouter.from_checkpoint(
            path, dataset.graph, args.shards,
            transport=args.transport,
            max_batch_size=args.batch_size, max_wait=args.max_wait,
            cache_capacity=args.cache_capacity, seed=args.seed,
            partition_seed=args.seed,
            store_path=args.store or None,
            dist_tracing=True,
            slo_target=SLOTarget(
                latency_threshold=args.slo_threshold,
                objective=args.slo_objective,
            ),
        )
        endpoint = _maybe_serve_metrics(args, router.render_prometheus)
        print(f"tracing {args.requests} requests over {args.shards} shards "
              f"({args.transport} transport), scatter groups of {args.group}")

        # The workload goes through the traced request path (embed), not
        # replay: every scatter group becomes one trace id with router +
        # shard spans, and two passes show the cold->warm rung shift.
        trace = make_trace(
            dataset.split.test, args.requests, rate=args.rate,
            zipf_exponent=args.zipf, rng=args.seed,
        )
        nodes = np.asarray([event.node for event in trace], dtype=np.int64)
        for _ in range(2):
            for start in range(0, nodes.size, args.group):
                router.embed(nodes[start:start + args.group])

        records = router.attribution_records()
        mismatched = sum(
            1 for r in records if sum(r["rungs"].values()) != r["nodes"]
        )
        total_nodes = sum(r["nodes"] for r in records)
        rung_totals: dict = {}
        for record in records:
            for rung, count in record["rungs"].items():
                rung_totals[rung] = rung_totals.get(rung, 0) + count
        queue_mean = (
            sum(r["queue_wait_s"] for r in records) / len(records)
            if records else 0.0
        )
        compute_mean = (
            sum(r["compute_s"] for r in records) / len(records)
            if records else 0.0
        )
        print(f"\nattribution: {len(records)} requests, {total_nodes} nodes "
              f"({mismatched} rung-count mismatches)")
        print("rung mix          "
              + " / ".join(f"{k} {v}" for k, v in sorted(rung_totals.items())))
        print(f"queue/compute     {queue_mean * 1e3:.3f} / "
              f"{compute_mean * 1e3:.3f} ms (mean, critical path)")

        slo = router.slo_report()
        print(f"SLO               p50 {slo['p50_s'] * 1e3:.3f} ms, "
              f"p95 {slo['p95_s'] * 1e3:.3f} ms, "
              f"p99 {slo['p99_s'] * 1e3:.3f} ms")
        print(f"                  compliance {slo['compliance'] * 100:.1f}% "
              f"vs objective {slo['target']['objective'] * 100:.1f}% "
              f"(burn rate {slo['burn_rate']:.2f})")

        events = router.write_dist_trace(args.dist_trace_out)
        pids = {
            e["pid"] for e in json.load(open(args.dist_trace_out))["traceEvents"]
        }
        print(f"\nwrote {events} trace events ({len(pids)} process lanes) "
              f"to {args.dist_trace_out}")
        with open(args.slo_out, "w") as handle:
            json.dump(slo, handle, indent=2)
        print(f"wrote SLO report to {args.slo_out}")
        with open(args.attribution_out, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        print(f"wrote {len(records)} attribution records to "
              f"{args.attribution_out}")
        if endpoint is not None:
            endpoint.close()
        router.close()
    _maybe_dump_metrics(args)
    return 1 if mismatched else 0


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.cluster.net import DEFAULT_MAX_FRAME_BYTES, ShardWorkerServer

    listen = args.listen or "127.0.0.1:0"
    host, _, port = listen.rpartition(":")
    if not host:
        host, port = "127.0.0.1", listen
    server = ShardWorkerServer(
        host=host,
        port=int(port),
        max_frame_bytes=args.max_frame_bytes or DEFAULT_MAX_FRAME_BYTES,
    )
    return server.serve_forever()


def _cmd_tune_scatter(args: argparse.Namespace) -> int:
    import json

    from repro.tensor.tuning import format_report, run_tuning

    dim = args.dim if args.dim is not None else 64
    report = run_tuning(dim=dim, repeats=args.repeats)
    print(format_report(report))
    if args.tuning_out:
        with open(args.tuning_out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote sweep report to {args.tuning_out}")
    return 0


def _cmd_tune_kernels(args: argparse.Namespace) -> int:
    import json

    from repro.tensor.kernels import format_table_report, run_kernel_tuning

    dim = args.dim if args.dim is not None else 64
    report = run_kernel_tuning(
        dim=dim, repeats=args.repeats, path=args.table_out
    )
    print(format_table_report(report))
    if args.tuning_out:
        with open(args.tuning_out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote tuning report to {args.tuning_out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "command",
        choices=(
            "stats", "train", "compare", "serve-bench", "serve-cluster",
            "store-build", "profile", "tune-scatter", "tune-kernels",
            "trace", "shard-worker",
        ),
    )
    parser.add_argument("dataset", nargs="?", default=None,
                        help="acm | dblp | yelp (default: all for stats, acm otherwise)")
    parser.add_argument("--dataset", dest="dataset_flag", default=None,
                        help="flag spelling of the positional dataset argument")
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dim", type=int, default=None,
                        help="hidden dimension override (profile/train); the "
                             "paper-scale widths make the gemm share visible")
    parser.add_argument("--forward-mode",
                        choices=("batched", "sparse", "auto", "per_node"),
                        default="batched",
                        help="WIDEN forward path: vectorized padded batches "
                             "(default), CSR sparse kernels, per-batch "
                             "auto-selection from the kernel table, or the "
                             "per-node reference loop")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--metrics-out", default=None,
                     help="dump the metrics registry as JSONL to this path "
                          "(default for profile: metrics.jsonl)")
    obs.add_argument("--trace-out", default="trace.json",
                     help="profile: Chrome trace_event output path")
    serve = parser.add_argument_group("serve-bench")
    serve.add_argument("--requests", type=int, default=400,
                       help="trace length (arrivals to replay)")
    serve.add_argument("--rate", type=float, default=300.0,
                       help="mean arrival rate, requests/second")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf popularity exponent of the node pool")
    serve.add_argument("--batch-size", type=int, default=16,
                       help="micro-batcher max batch size")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="micro-batcher deadline, seconds")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="embedding cache entries")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="expose a live Prometheus /metrics endpoint on "
                            "this port for the run (0 picks a free port)")
    cluster = parser.add_argument_group("cluster (serve-cluster / trace / train)")
    cluster.add_argument("--shards", type=int, default=None,
                         help="number of halo-replicated shards (default 2 "
                              "for serve-cluster/trace; giving it to train "
                              "switches on data-parallel training)")
    cluster.add_argument("--transport",
                         choices=("inline", "thread", "mp", "socket"),
                         default="inline",
                         help="shard boundary: inline (deterministic "
                              "replay), thread workers, mp processes, or "
                              "socket TCP workers")
    cluster.add_argument("--workers", default=None,
                         help="socket transport: comma-separated "
                              "host:port list of pre-started shard-worker "
                              "processes, one per shard (default: spawn "
                              "local workers)")
    cluster.add_argument("--smoke", action="store_true",
                         help="CI-sized run: caps scale/epochs/requests")
    cluster.add_argument("--prometheus-out", default=None,
                         help="write the merged shard-labeled Prometheus "
                              "text exposition to this path")
    cluster.add_argument("--resume", default=None,
                         help="train: resume from a fleet checkpoint "
                              "directory (manifest.json + shard-K.npz) or a "
                              "single v3 checkpoint file")
    cluster.add_argument("--checkpoint-out", default=None,
                         help="train: snapshot every shard into this "
                              "directory at each epoch boundary (the "
                              "elastic-resume unit)")
    store = parser.add_argument_group("store")
    store.add_argument("--store", default=None,
                       help="serve-bench/serve-cluster: serve cache misses "
                            "from this materialized-aggregate store directory")
    store.add_argument("--out", default="store",
                       help="store-build: output directory for the store")
    store.add_argument("--checkpoint", default=None,
                       help="store-build: materialize from this checkpoint "
                            "instead of training fresh")
    dist = parser.add_argument_group("trace")
    dist.add_argument("--group", type=int, default=8,
                      help="trace: nodes per scatter-gather request")
    dist.add_argument("--slo-threshold", type=float, default=0.050,
                      help="trace: SLO latency threshold, seconds")
    dist.add_argument("--slo-objective", type=float, default=0.99,
                      help="trace: fraction of requests that must meet the "
                           "threshold")
    dist.add_argument("--dist-trace-out", default="dist_trace.json",
                      help="trace: stitched Chrome/Perfetto trace output path")
    dist.add_argument("--slo-out", default="slo_report.json",
                      help="trace: SLO report JSON output path")
    dist.add_argument("--attribution-out", default="attribution.jsonl",
                      help="trace: per-request attribution JSONL output path")
    tune = parser.add_argument_group("tune-scatter / tune-kernels")
    tune.add_argument("--repeats", type=int, default=30,
                      help="timing repeats per backend per shape (median)")
    tune.add_argument("--tuning-out", default=None,
                      help="write the sweep report as JSON to this path")
    tune.add_argument("--table-out", default=None,
                      help="tune-kernels: kernel-selection table path "
                           "(default: REPRO_KERNEL_TABLE or "
                           "~/.cache/repro/kernel_table.json)")
    net = parser.add_argument_group("shard-worker")
    net.add_argument("--listen", default=None,
                     help="shard-worker: host:port to listen on "
                          "(port 0 picks a free port; the bound address "
                          "is announced as 'LISTENING host port')")
    net.add_argument("--max-frame-bytes", type=int, default=None,
                     help="shard-worker: reject frames larger than this "
                          "many bytes (default 1 GiB)")
    args = parser.parse_args(argv)
    args.dataset = args.dataset or args.dataset_flag
    if args.command == "profile" and args.metrics_out is None:
        args.metrics_out = "metrics.jsonl"
    handlers = {
        "stats": _cmd_stats,
        "train": _cmd_train,
        "compare": _cmd_compare,
        "serve-bench": _cmd_serve_bench,
        "serve-cluster": _cmd_serve_cluster,
        "store-build": _cmd_store_build,
        "profile": _cmd_profile,
        "tune-scatter": _cmd_tune_scatter,
        "tune-kernels": _cmd_tune_kernels,
        "trace": _cmd_trace,
        "shard-worker": _cmd_shard_worker,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
