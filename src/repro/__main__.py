"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``stats [dataset]``
    Print Table-1-style statistics for one or all datasets.
``train [dataset] [--epochs N]``
    Train WIDEN on a dataset and report test micro-F1.
``compare [dataset] [--epochs N]``
    Train WIDEN and every baseline on a dataset; print a leaderboard.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.datasets import DATASETS, make_dataset

    names = [args.dataset] if args.dataset else sorted(DATASETS)
    for name in names:
        stats = make_dataset(name, seed=args.seed, scale=args.scale).statistics()
        print(f"{name}: {stats['num_nodes']} nodes ({stats['num_node_types']} types), "
              f"{stats['num_edges']} edges ({stats['num_edge_types']} types), "
              f"{stats['num_features']} features, {stats['num_classes']} classes, "
              f"split {stats['train_nodes']}/{stats['val_nodes']}/{stats['test_nodes']}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.eval import micro_f1

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    model = WidenClassifier(seed=args.seed)
    model.fit(dataset.graph, dataset.split.train, epochs=args.epochs)
    predictions = model.predict(dataset.split.test)
    score = micro_f1(dataset.graph.labels[dataset.split.test], predictions)
    print(f"widen on {dataset.name}: micro-F1 {score:.4f} "
          f"({np.mean(model.epoch_seconds):.3f} s/epoch)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import BASELINES
    from repro.core import WidenClassifier
    from repro.datasets import make_dataset
    from repro.eval import micro_f1

    dataset = make_dataset(args.dataset or "acm", seed=args.seed, scale=args.scale)
    rows = []
    for name in list(BASELINES) + ["widen"]:
        if name == "gtn" and dataset.name == "yelp":
            continue  # matches the paper's skip
        if name == "widen":
            model = WidenClassifier(seed=args.seed)
        else:
            kwargs = {"seed": args.seed}
            if name == "han":
                kwargs["target_type"] = dataset.target_type
            model = BASELINES[name](**kwargs)
        epochs = max(1, args.epochs // 5) if name == "node2vec" else args.epochs
        model.fit(dataset.graph, dataset.split.train, epochs=epochs)
        predictions = model.predict(dataset.split.test)
        score = micro_f1(dataset.graph.labels[dataset.split.test], predictions)
        rows.append((score, name, float(np.mean(model.epoch_seconds))))
        print(f"  trained {name}: {score:.4f}")
    print(f"\nleaderboard on {dataset.name}:")
    for score, name, seconds in sorted(rows, reverse=True):
        print(f"  {name:<10} micro-F1 {score:.4f}   {seconds:.3f} s/epoch")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("command", choices=("stats", "train", "compare"))
    parser.add_argument("dataset", nargs="?", default=None,
                        help="acm | dblp | yelp (default: all for stats, acm otherwise)")
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args(argv)
    handlers = {"stats": _cmd_stats, "train": _cmd_train, "compare": _cmd_compare}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
