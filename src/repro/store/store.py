"""The on-disk / in-memory materialized-aggregate store.

Layout: a directory holding three arrays plus JSON metadata —

- ``rows.npy`` — ``(K, R, d)`` float64 row blocks, one per stored node.
  Each block concatenates the wide pack matrix (capacity ``num_wide + 1``
  rows) and Φ deep pack matrices (capacity ``num_deep + 1`` rows each),
  zero-padded; trimming information lives in ``lengths.npy``.
- ``lengths.npy`` — ``(K, 1 + Φ)`` int64 true lengths (wide first).
- ``versions.npy`` — ``(K,)`` int64 serving version each block was
  materialized at.
- ``meta.json`` — format version, model geometry, builder seed, graph
  version and the parameter digest the rows were computed under.

``rows.npy`` is opened with ``mmap_mode="r"`` so a store larger than RAM
costs one page-fault per looked-up block, not a load.  Capacities are the
sampling caps (``num_wide``/``num_deep`` bound every neighborhood), so a
lazily re-materialized row after a mutation always fits the same block
shape — the in-memory overlay and the mmap share one geometry.

A store is only meaningful against the exact parameters and rng scheme
that built it; :meth:`AggregateStore.compatible_with` checks geometry,
parameter digest and server seed and returns the human-readable reason on
mismatch so callers refuse loudly instead of serving wrong aggregates.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.packing import PackRows

STORE_FORMAT_VERSION = 1

_META_FILE = "meta.json"
_ROWS_FILE = "rows.npy"
_LENGTHS_FILE = "lengths.npy"
_VERSIONS_FILE = "versions.npy"

# Meta keys that must match the serving classifier's geometry exactly.
_GEOMETRY_KEYS = (
    "dim", "num_wide", "num_deep", "num_walks", "use_wide", "use_deep",
)


def block_capacity(meta: Dict[str, object]) -> Tuple[int, int, int]:
    """``(wide_cap, deep_cap, total_rows)`` of one row block."""
    wide_cap = (int(meta["num_wide"]) + 1) if meta["use_wide"] else 0
    deep_cap = (int(meta["num_deep"]) + 1) if meta["use_deep"] else 0
    total = wide_cap + int(meta["num_walks"]) * deep_cap
    return wide_cap, deep_cap, total


def encode_block(
    rows: PackRows, meta: Dict[str, object]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack one node's trimmed matrices into a ``(R, d)`` block + lengths."""
    wide_cap, deep_cap, total = block_capacity(meta)
    num_walks = int(meta["num_walks"])
    block = np.zeros((total, int(meta["dim"])))
    lengths = np.zeros(1 + num_walks, np.int64)
    if wide_cap:
        if rows.wide is None:
            raise ValueError("use_wide store but PackRows.wide is None")
        lengths[0] = rows.wide.shape[0]
        block[: lengths[0]] = rows.wide
    if deep_cap:
        if len(rows.deep) != num_walks:
            raise ValueError(
                f"expected {num_walks} walks, got {len(rows.deep)}"
            )
        for j, walk in enumerate(rows.deep):
            offset = wide_cap + j * deep_cap
            lengths[1 + j] = walk.shape[0]
            block[offset : offset + walk.shape[0]] = walk
    return block, lengths


def decode_block(
    block: np.ndarray, lengths: np.ndarray, meta: Dict[str, object]
) -> PackRows:
    """Trim a row block back into :class:`PackRows` (views, no copies)."""
    wide_cap, deep_cap, _ = block_capacity(meta)
    wide = block[: int(lengths[0])] if wide_cap else None
    deep: List[np.ndarray] = []
    for j in range(int(meta["num_walks"]) if deep_cap else 0):
        offset = wide_cap + j * deep_cap
        deep.append(block[offset : offset + int(lengths[1 + j])])
    return PackRows(wide=wide, deep=deep)


class AggregateStore:
    """Versioned per-node pack-row store with a lazy refresh overlay.

    ``node_ids=None`` means the dense full-graph layout (block ``i`` holds
    node ``i``); a cluster shard's slice carries an explicit id array and
    resolves through a position map.  :meth:`refresh` never touches the
    (read-only, possibly mmap'd) base arrays — re-materialized rows live
    in an in-memory overlay consulted first by every lookup.
    """

    def __init__(
        self,
        meta: Dict[str, object],
        rows: np.ndarray,
        lengths: np.ndarray,
        versions: np.ndarray,
        node_ids: Optional[np.ndarray] = None,
    ) -> None:
        self.meta = dict(meta)
        self._rows = rows
        self._lengths = lengths
        self._versions = versions
        self._node_ids = (
            None if node_ids is None else np.asarray(node_ids, np.int64)
        )
        if self._node_ids is None:
            self._positions: Optional[Dict[int, int]] = None
        else:
            self._positions = {
                int(node): position
                for position, node in enumerate(self._node_ids)
            }
        # node -> (version, block, lengths): rows re-materialized since
        # open, kept in encoded block form so the serving hot path reads
        # overlay and base entries identically.
        self._overlay: Dict[int, Tuple[int, np.ndarray, np.ndarray]] = {}

    # -- lookups ---------------------------------------------------------

    def _position(self, node: int) -> Optional[int]:
        node = int(node)
        if self._positions is None:
            return node if 0 <= node < self._rows.shape[0] else None
        return self._positions.get(node)

    def has(self, node: int) -> bool:
        """Whether any row (base or overlay) exists for ``node``."""
        return int(node) in self._overlay or self._position(node) is not None

    def in_overlay(self, node: int) -> bool:
        """Whether the node's current row lives in the re-materialized
        overlay (vs the base blocks) — the serving-ladder attribution
        between the ``store`` and ``overlay`` rungs."""
        return int(node) in self._overlay

    def version_of(self, node: int) -> Optional[int]:
        """Serving version the node's row was materialized at, or None."""
        entry = self._overlay.get(int(node))
        if entry is not None:
            return entry[0]
        position = self._position(node)
        return None if position is None else int(self._versions[position])

    def fresh(self, node: int, version: int) -> bool:
        """Whether the stored row is exact for the node at ``version``."""
        return self.version_of(node) == int(version)

    def rows_for(self, node: int) -> PackRows:
        """The node's pack matrices (overlay first, then the base arrays)."""
        block, lengths = self.block_for(node)
        return decode_block(block, lengths, self.meta)

    def block_for(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """The node's raw ``(R, d)`` capacity-padded block + lengths row.

        This is the serving hot path: base entries are mmap views and
        overlay entries are already encoded, so a lookup is two dict/array
        probes with no decoding or re-padding work.
        """
        entry = self._overlay.get(int(node))
        if entry is not None:
            return entry[1], entry[2]
        position = self._position(node)
        if position is None:
            raise KeyError(f"node {node} has no store row")
        return self._rows[position], self._lengths[position]

    def versions_of(self, nodes) -> np.ndarray:
        """Vectorized :meth:`version_of` (``-1`` where no row exists)."""
        nodes = np.asarray(nodes, np.int64)
        if self._positions is None and not self._overlay:
            # Dense layout, no overlay: one fancy-indexed read.
            out = np.full(nodes.size, -1, np.int64)
            in_range = (nodes >= 0) & (nodes < self._rows.shape[0])
            out[in_range] = self._versions[nodes[in_range]]
            return out
        return np.array(
            [
                -1 if (version := self.version_of(int(node))) is None
                else version
                for node in nodes
            ],
            np.int64,
        )

    def blocks_for(self, nodes) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`block_for`: ``(B, R, d)`` blocks + ``(B, 1+Φ)``
        lengths, gathered with one fancy-indexed read for base entries.

        Every node must hold a row (callers classify freshness first);
        raises :class:`KeyError` otherwise.
        """
        nodes = np.asarray(nodes, np.int64)
        total, dim = self.block_shape
        blocks = np.empty((nodes.size, total, dim))
        lengths = np.empty((nodes.size, self._lengths.shape[1]), np.int64)
        if self._overlay:
            base_mask = np.array(
                [int(node) not in self._overlay for node in nodes], bool
            )
        else:
            base_mask = np.ones(nodes.size, bool)
        base_nodes = nodes[base_mask]
        if base_nodes.size:
            if self._positions is None:
                positions = base_nodes
                if ((positions < 0) | (positions >= self._rows.shape[0])).any():
                    raise KeyError("node outside the dense store range")
            else:
                try:
                    positions = np.array(
                        [self._positions[int(node)] for node in base_nodes],
                        np.int64,
                    )
                except KeyError as exc:
                    raise KeyError(f"node {exc} has no store row") from exc
            blocks[base_mask] = self._rows[positions]
            lengths[base_mask] = self._lengths[positions]
        for position in np.nonzero(~base_mask)[0]:
            _, block, length_row = self._overlay[int(nodes[position])]
            blocks[position] = block
            lengths[position] = length_row
        return blocks, lengths

    def refresh(self, node: int, version: int, rows: PackRows) -> None:
        """Write back a lazily re-materialized row (in-memory overlay)."""
        block, lengths = encode_block(rows, self.meta)
        self._overlay[int(node)] = (int(version), block, lengths)

    # -- accounting ------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(self._rows.shape[0])

    @property
    def block_shape(self) -> Tuple[int, int]:
        """``(R, d)`` of one row block (what a batch assembly allocates)."""
        _, _, total = block_capacity(self.meta)
        return total, int(self.meta["dim"])

    @property
    def row_nbytes(self) -> int:
        """Bytes of one row block (the gauge the capacity planner reads)."""
        return int(self._rows[0].nbytes) if self.num_rows else 0

    @property
    def nbytes(self) -> int:
        return int(self._rows.nbytes)

    @property
    def overlay_size(self) -> int:
        return len(self._overlay)

    def stale_count(self, nodes: Iterable[int], version_of) -> int:
        """How many of ``nodes`` hold rows now stale under ``version_of``."""
        return sum(
            1
            for node in nodes
            if self.has(node) and not self.fresh(node, version_of(int(node)))
        )

    # -- compatibility ---------------------------------------------------

    def compatible_with(self, classifier, seed: int) -> Optional[str]:
        """Reason this store cannot serve ``classifier`` at server ``seed``
        (``None`` when it can).  Checks the serving-path support flags, the
        model geometry, the parameter digest and the rng seed — everything
        that went into the materialized values."""
        supports = getattr(classifier, "supports_store", None)
        if supports is None or not hasattr(classifier, "embed_from_store_blocks"):
            return f"{getattr(classifier, 'name', classifier)!r} has no store hooks"
        reason = supports()
        if reason is not None:
            return reason
        config = classifier.config
        geometry = {
            "dim": int(config.dim),
            "num_wide": int(config.num_wide),
            "num_deep": int(config.num_deep),
            "num_walks": int(config.num_deep_walks),
            "use_wide": bool(config.use_wide),
            "use_deep": bool(config.use_deep),
        }
        for key in _GEOMETRY_KEYS:
            if geometry[key] != self.meta[key]:
                return (
                    f"geometry mismatch on {key}: store has "
                    f"{self.meta[key]!r}, classifier has {geometry[key]!r}"
                )
        digest = classifier.params_digest()
        if digest != self.meta["params_digest"]:
            return (
                f"parameter digest mismatch: store built against "
                f"{self.meta['params_digest']}, classifier is {digest}"
            )
        if int(seed) != int(self.meta["seed"]):
            return (
                f"seed mismatch: store sampled with seed {self.meta['seed']}, "
                f"server uses {seed}"
            )
        return None

    # -- persistence -----------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        *,
        meta: Dict[str, object],
        rows: np.ndarray,
        lengths: np.ndarray,
        versions: np.ndarray,
    ) -> "AggregateStore":
        """Write a dense full-graph store directory and return it (mmap'd)."""
        os.makedirs(path, exist_ok=True)
        meta = dict(meta)
        meta["format_version"] = STORE_FORMAT_VERSION
        np.save(os.path.join(path, _ROWS_FILE), rows)
        np.save(os.path.join(path, _LENGTHS_FILE), lengths)
        np.save(os.path.join(path, _VERSIONS_FILE), versions)
        with open(os.path.join(path, _META_FILE), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
        return cls.open(path)

    @classmethod
    def open(cls, path, mmap: bool = True) -> "AggregateStore":
        """Open a store directory; row blocks stay on disk via mmap."""
        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise FileNotFoundError(
                f"{path!r} is not a store directory (no {_META_FILE})"
            )
        with open(meta_path) as handle:
            meta = json.load(handle)
        version = int(meta.get("format_version", 0))
        if version > STORE_FORMAT_VERSION:
            raise ValueError(
                f"store {path!r} is format v{version}, newer than this "
                f"code's v{STORE_FORMAT_VERSION}"
            )
        rows = np.load(
            os.path.join(path, _ROWS_FILE), mmap_mode="r" if mmap else None
        )
        lengths = np.load(os.path.join(path, _LENGTHS_FILE))
        versions = np.load(os.path.join(path, _VERSIONS_FILE))
        return cls(meta, rows, lengths, versions)

    # -- shard slices ----------------------------------------------------

    def slice_payload(self, nodes: Iterable[int]) -> Dict[str, object]:
        """Plain-data slice of the store covering ``nodes`` (shard halo
        handling: a shard engine serves only its *owned* nodes, so its
        slice carries exactly those blocks — halo nodes contribute to
        other shards' rows at build time, never to local lookups).

        The payload crosses the ``mp`` transport's pickle boundary as-is;
        :meth:`from_payload` rebuilds a positioned in-memory store on the
        other side.  Overlay entries are folded in so a slice taken from a
        live store reflects its current effective rows.
        """
        present = sorted(
            {int(node) for node in nodes if self.has(int(node))}
        )
        _, _, total = block_capacity(self.meta)
        dim = int(self.meta["dim"])
        num_walks = int(self.meta["num_walks"])
        rows = np.zeros((len(present), total, dim))
        lengths = np.zeros((len(present), 1 + num_walks), np.int64)
        versions = np.zeros(len(present), np.int64)
        for position, node in enumerate(present):
            entry = self._overlay.get(node)
            if entry is not None:
                version, block, length_row = entry
            else:
                base = self._position(node)
                version = int(self._versions[base])
                block = np.asarray(self._rows[base])
                length_row = self._lengths[base]
            rows[position] = block
            lengths[position] = length_row
            versions[position] = version
        return {
            "meta": dict(self.meta),
            "node_ids": np.asarray(present, np.int64),
            "rows": rows,
            "lengths": lengths,
            "versions": versions,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AggregateStore":
        """Rebuild a (sliced) store from :meth:`slice_payload` output."""
        return cls(
            dict(payload["meta"]),
            np.asarray(payload["rows"]),
            np.asarray(payload["lengths"], np.int64),
            np.asarray(payload["versions"], np.int64),
            node_ids=np.asarray(payload["node_ids"], np.int64),
        )

    def __repr__(self) -> str:
        return (
            f"AggregateStore(rows={self.num_rows}, "
            f"overlay={self.overlay_size}, "
            f"graph_version={self.meta.get('graph_version')}, "
            f"digest={self.meta.get('params_digest')})"
        )
