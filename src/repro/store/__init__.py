"""repro.store — versioned materialized-aggregate tier for warm serving.

SeHGNN (arXiv 2207.02547) observes that a hetero-GNN's neighbor
aggregation can be computed *once* instead of per request; this package
applies that to WIDEN's serving path.  The offline builder
(:func:`build_store`) runs the batched packing machinery over every node
and persists the trimmed pack matrices ``M°``/``M▷`` (Eqs. 1-2) — the
post-projection, post-edge-multiply aggregates — into a compact,
mmap-friendly on-disk store keyed by graph version + parameter digest.
At serve time a cache miss with a fresh store row skips sampling,
feature projection and edge gathers entirely: the answer is attention +
MLP over the stored rows (:meth:`WidenClassifier.embed_from_store_rows`),
bit-identical to the full recompute because both halves run the same
code over the same pack values.

Versioning reuses the server's per-node mutation counters: a row built
at version ``v`` serves node ``n`` only while the server's
``_version_of(n)`` still equals ``v``.  A mutation whose reverse-BFS
frontier reaches ``n`` bumps that counter, the row goes stale, and the
next miss re-materializes it lazily (write-back into an in-memory
overlay) — the recompute path is always the exactness oracle.
"""

from repro.store.store import AggregateStore, STORE_FORMAT_VERSION
from repro.store.builder import build_store

__all__ = ["AggregateStore", "STORE_FORMAT_VERSION", "build_store"]
