"""Offline store builder: materialize every node's aggregates once.

The builder walks the graph in batches through
:meth:`WidenClassifier.materialize_store_rows` — the same sampling and
packing code the serving miss path runs — with each node's rng seeded
``(seed, graph.version, node)``, i.e. exactly the scheme
:class:`~repro.serve.server.InferenceServer` uses for a cache miss on an
unmutated graph.  A served store hit therefore returns the *same bits*
the recompute path would have produced; the store changes where the work
happens (offline, once) but never the answer.

Instrumentation lands in the shared obs pipeline: a ``store.build`` trace
span per batch, ``store_build_seconds`` / ``store_rows`` /
``store_row_bytes`` / ``store_bytes_total`` gauges on the registry.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

import numpy as np

from repro.obs import MetricsRegistry, get_registry
from repro.obs.tracing import span as trace_span
from repro.store.store import AggregateStore, block_capacity, encode_block


def build_store(
    classifier,
    graph,
    out_path,
    *,
    seed: int = 0,
    batch_size: int = 64,
    nodes: Optional[Iterable[int]] = None,
    dataset: Optional[str] = None,
    checkpoint: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> AggregateStore:
    """Materialize ``nodes`` (default: all) into a store at ``out_path``.

    ``seed`` must equal the serving server's seed — it is baked into every
    row's sampling rng and recorded in the metadata so
    :meth:`AggregateStore.compatible_with` can refuse a mismatched server.
    Returns the freshly opened (mmap'd) store.
    """
    reason = getattr(classifier, "supports_store", lambda: "no store hooks")()
    if reason is not None:
        raise ValueError(f"cannot build a store for this classifier: {reason}")
    config = classifier.config
    version = int(graph.version)
    node_list = (
        np.arange(graph.num_nodes, dtype=np.int64)
        if nodes is None
        else np.asarray(sorted({int(node) for node in nodes}), np.int64)
    )
    meta = {
        "dim": int(config.dim),
        "num_wide": int(config.num_wide),
        "num_deep": int(config.num_deep),
        "num_walks": int(config.num_deep_walks),
        "use_wide": bool(config.use_wide),
        "use_deep": bool(config.use_deep),
        "seed": int(seed),
        "graph_version": version,
        "num_nodes": int(node_list.size),
        "params_digest": classifier.params_digest(),
        "dataset": dataset,
        "checkpoint": None if checkpoint is None else str(checkpoint),
    }
    _, _, total_rows = block_capacity(meta)
    rows = np.zeros((node_list.size, total_rows, int(config.dim)))
    lengths = np.zeros((node_list.size, 1 + int(config.num_deep_walks)), np.int64)
    versions = np.full(node_list.size, version, np.int64)

    start = time.perf_counter()
    for begin in range(0, node_list.size, batch_size):
        chunk = node_list[begin : begin + batch_size]
        with trace_span("store.build", nodes=int(chunk.size)):
            rngs = [
                np.random.default_rng([int(seed), version, int(node)])
                for node in chunk
            ]
            pack_rows = classifier.materialize_store_rows(chunk, graph, rngs)
            for offset, row_set in enumerate(pack_rows):
                block, length_row = encode_block(row_set, meta)
                rows[begin + offset] = block
                lengths[begin + offset] = length_row
    elapsed = time.perf_counter() - start

    store = AggregateStore.create(
        out_path, meta=meta, rows=rows, lengths=lengths, versions=versions
    )
    registry = registry if registry is not None else get_registry()
    registry.gauge("store_build_seconds").set(elapsed)
    registry.gauge("store_rows").set(store.num_rows)
    registry.gauge("store_row_bytes").set(store.row_nbytes)
    registry.gauge("store_bytes_total").set(store.nbytes)
    return store
