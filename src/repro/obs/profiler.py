"""Op-level autograd profiler for the ``repro.tensor`` engine.

Three measurements per op name, aggregated over a profiled region:

- **calls / FLOPs** — recorded by a hook inside ``Tensor.from_op``, the one
  funnel every forward operation passes through.  FLOPs are analytic
  estimates from operand shapes (``2·m·n·k`` for matmul, per-element costs
  for elementwise/transcendental ops, zero for pure data movement); ``spmm``
  reports a dense lower bound because the sparse operand never enters the
  autograd graph.
- **forward self-time** — the op functions in ``repro.tensor.ops`` and the
  fused composites in ``repro.tensor.functional`` are wrapped at
  :meth:`OpProfiler.enable` time; a stack subtracts child time so nested
  calls (e.g. ``attention`` → ``matmul``) are never double-counted.
- **backward self-time** — ``Tensor.backward`` times each node's backward
  closure when a profiler is installed; closures only touch numpy, so the
  measurement is pure self-time by construction.

Disabled-profiler overhead is one ``is not None`` check per op creation and
one per ``backward()`` call — the wrappers are removed, not short-circuited,
by :meth:`OpProfiler.disable`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

# Functions wrapped for forward timing, keyed by the module attribute name.
# Values map the attribute name to the ``from_op`` op name so time, count and
# FLOP rows land under one key.
_OPS_FUNCTIONS = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div", "neg": "neg",
    "power": "power", "exp": "exp", "log": "log", "sqrt": "sqrt",
    "tanh": "tanh", "sigmoid": "sigmoid", "relu": "relu",
    "leaky_relu": "leaky_relu", "maximum": "maximum",
    "sum": "sum", "mean": "mean", "max": "max",
    "matmul": "matmul", "transpose": "transpose", "reshape": "reshape",
    "concat": "concat", "stack": "stack", "take": "take",
    "embedding_lookup": "embedding_lookup", "slice": "slice", "spmm": "spmm",
    "pad_gather": "pad_gather", "scatter_rows": "scatter_rows",
    "pad_gather_mul": "pad_gather_mul",
    "gather_mul": "gather_mul", "sddmm": "sddmm",
    "segment_softmax": "segment_softmax", "segment_matmul": "segment_matmul",
    "dropout_mask": "dropout",
}
_FUNCTIONAL_FUNCTIONS = {
    "softmax": "softmax",
    "log_softmax": "log_softmax",
    "masked_softmax": "masked_softmax",
    "l2_normalize": "l2_normalize",
    "cross_entropy": "cross_entropy",
    "binary_cross_entropy_with_logits": "bce_with_logits",
}

# Estimated FLOPs per output element (forward pass only); ops missing here
# use the fallback in _estimate_flops.
_PER_ELEMENT_FLOPS = {
    "add": 1, "sub": 1, "mul": 1, "div": 1, "neg": 1, "power": 2, "sqrt": 1,
    "relu": 1, "leaky_relu": 1, "maximum": 1, "dropout": 1,
    "exp": 4, "log": 4, "tanh": 4, "sigmoid": 4,
    "softmax": 5, "log_softmax": 5, "masked_softmax": 5,
    # gather (0 FLOP) fused with mask + edge + dropout multiplies
    "pad_gather_mul": 3,
    # sparse variant: no validity-mask multiply (every row is real)
    "gather_mul": 2,
    # segment-local max-subtract, exp, sum, divide — same cost model as
    # the dense softmax family, but only over real entries
    "segment_softmax": 5,
    "l2_normalize": 4,
}
_DATA_MOVEMENT = frozenset(
    {"transpose", "reshape", "concat", "stack", "take", "embedding_lookup",
     "slice", "pad_gather", "scatter_rows"}
)


@dataclass
class OpStat:
    """Aggregated measurements for one op name."""

    name: str
    calls: int = 0
    flops: float = 0.0
    forward_s: float = 0.0
    backward_calls: int = 0
    backward_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s


def _estimate_flops(name: str, out_data, parents) -> float:
    if name in _DATA_MOVEMENT:
        return 0.0
    if name == "matmul":
        # out = a @ b: 2 multiply-adds per output element per inner index.
        return 2.0 * out_data.size * parents[0].data.shape[-1]
    if name == "spmm":
        # The sparse operand is not a graph parent; dense-output lower bound.
        return 2.0 * out_data.size
    if name == "sddmm":
        # One length-d dot product per sampled (row, col) pair.
        return 2.0 * out_data.size * parents[0].data.shape[-1]
    if name == "segment_matmul":
        # One scale + add of a length-d row per (weight, value) pair —
        # parents[0] is the flat (P,) weight vector.
        return 2.0 * parents[0].data.size * out_data.shape[-1]
    if name in ("cross_entropy", "bce_with_logits"):
        return 8.0 * parents[0].data.size
    if name in ("sum", "mean", "max"):
        return float(parents[0].data.size)
    return float(_PER_ELEMENT_FLOPS.get(name, 1) * out_data.size)


class OpProfiler:
    """Collects per-op counts, FLOP estimates and forward/backward times.

    Usable as a context manager::

        with OpProfiler() as prof:
            trainer.fit(nodes, epochs=2)
        print(prof.table())
    """

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self._stack: List[float] = []  # accumulated child time per frame
        self._originals: List[tuple] = []
        self._enabled = False

    # -- hook targets (called from repro.tensor) -------------------------

    def record_op(self, name: Optional[str], out_data, parents) -> None:
        """Count one op creation (the ``Tensor.from_op`` hook)."""
        stat = self._stat(name or "unnamed")
        stat.calls += 1
        stat.flops += _estimate_flops(stat.name, out_data, parents)

    def record_backward(self, name: Optional[str], seconds: float) -> None:
        """Account one backward-closure invocation (``Tensor.backward``)."""
        stat = self._stat(name or "unnamed")
        stat.backward_calls += 1
        stat.backward_s += seconds

    def _stat(self, name: str) -> OpStat:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStat(name)
        return stat

    # -- forward-time wrapping -------------------------------------------

    def _timed(self, fn, op_name: str):
        stack = self._stack

        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            stack.append(0.0)
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                child_time = stack.pop()
                self._stat(op_name).forward_s += elapsed - child_time
                if stack:
                    stack[-1] += elapsed

        wrapper.__wrapped__ = fn
        wrapper.__name__ = getattr(fn, "__name__", op_name)
        return wrapper

    def enable(self) -> "OpProfiler":
        """Install the ``from_op`` hook and wrap op functions for timing."""
        if self._enabled:
            return self
        from repro.tensor import functional, ops, tensor as tensor_module

        for module, table in (
            (ops, _OPS_FUNCTIONS),
            (functional, _FUNCTIONAL_FUNCTIONS),
        ):
            for attr, op_name in table.items():
                original = getattr(module, attr)
                self._originals.append((module, attr, original))
                setattr(module, attr, self._timed(original, op_name))
        tensor_module.set_profiler(self)
        self._enabled = True
        return self

    def disable(self) -> "OpProfiler":
        """Remove every wrapper and hook (library code back to stock speed)."""
        if not self._enabled:
            return self
        from repro.tensor import tensor as tensor_module

        for module, attr, original in reversed(self._originals):
            setattr(module, attr, original)
        self._originals.clear()
        if tensor_module.get_profiler() is self:
            tensor_module.set_profiler(None)
        self._enabled = False
        return self

    def __enter__(self) -> "OpProfiler":
        return self.enable()

    def __exit__(self, *exc_info) -> None:
        self.disable()

    # -- reductions ------------------------------------------------------

    @property
    def total_calls(self) -> int:
        return sum(stat.calls for stat in self.stats.values())

    @property
    def total_flops(self) -> float:
        return sum(stat.flops for stat in self.stats.values())

    @property
    def total_seconds(self) -> float:
        return sum(stat.total_s for stat in self.stats.values())

    def summary(self) -> List[Dict[str, float]]:
        """Per-op records sorted by total (forward + backward) self-time."""
        rows = sorted(self.stats.values(), key=lambda s: s.total_s, reverse=True)
        return [
            {
                "op": stat.name,
                "calls": stat.calls,
                "flops": stat.flops,
                "forward_s": stat.forward_s,
                "backward_s": stat.backward_s,
                "total_s": stat.total_s,
            }
            for stat in rows
        ]

    def export(self, registry) -> None:
        """Mirror the per-op totals into a :class:`MetricsRegistry`."""
        for stat in self.stats.values():
            registry.counter("op_calls", op=stat.name).inc(stat.calls)
            registry.counter("op_flops", op=stat.name).inc(stat.flops)
            registry.counter("op_forward_seconds", op=stat.name).inc(stat.forward_s)
            registry.counter("op_backward_seconds", op=stat.name).inc(stat.backward_s)

    def table(self, limit: Optional[int] = None) -> str:
        """Human-readable op-time table (the ``repro profile`` output)."""
        rows = self.summary()
        if limit is not None:
            rows = rows[:limit]
        total = self.total_seconds or 1.0
        header = (
            f"{'op':<18} {'calls':>9} {'MFLOP':>10} "
            f"{'fwd ms':>10} {'bwd ms':>10} {'total ms':>10} {'%':>6}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['op']:<18} {row['calls']:>9} "
                f"{row['flops'] / 1e6:>10.2f} "
                f"{row['forward_s'] * 1e3:>10.2f} "
                f"{row['backward_s'] * 1e3:>10.2f} "
                f"{row['total_s'] * 1e3:>10.2f} "
                f"{100.0 * row['total_s'] / total:>5.1f}%"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<18} {self.total_calls:>9} "
            f"{self.total_flops / 1e6:>10.2f} "
            f"{sum(r['forward_s'] for r in rows) * 1e3:>10.2f} "
            f"{sum(r['backward_s'] for r in rows) * 1e3:>10.2f} "
            f"{self.total_seconds * 1e3:>10.2f} {'100.0%':>6}"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        self.stats.clear()
