"""A real ``/metrics`` HTTP endpoint over the Prometheus text exposition.

:class:`MetricsHTTPServer` wraps a *render callable* — anything returning
the exposition text (``MetricsRegistry.render_prometheus``,
``ClusterRouter.render_prometheus``, a closure over either) — in a stdlib
``ThreadingHTTPServer`` on a daemon thread.  The exposition is rendered
fresh per scrape, so a Prometheus scraper pointed at
``http://host:port/metrics`` always sees current counters without any
flush scheduling; the existing textfile-collector path
(``write_prometheus``) remains for push-style setups.

Scope on purpose: GET ``/metrics`` (and ``/``, for browsers) returns 200
with ``text/plain; version=0.0.4``; everything else is 404.  Callers may
register extra read-only JSON routes (``routes={"/slo": monitor.report}``)
for sibling observability surfaces like the SLO report.  No TLS, no auth —
this binds loopback by default and is an observability surface, not an API.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

__all__ = ["MetricsHTTPServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHTTPServer:
    """Serve a Prometheus exposition from ``/metrics`` on a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`) —
    the form tests use.  The server starts listening inside ``__init__``;
    call :meth:`close` (or use as a context manager) to release the socket.
    """

    def __init__(
        self,
        render: Callable[[], str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        routes: Optional[Dict[str, Callable[[], object]]] = None,
    ) -> None:
        self._render = render
        # Extra GET routes: path -> callable returning a JSON-serializable
        # object (rendered fresh per request, like the exposition).
        self._routes = dict(routes or {})

        outer = self

        class Handler(BaseHTTPRequestHandler):
            def _send(self, body: bytes, content_type: str) -> None:
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server convention)
                path = self.path.split("?", 1)[0]
                if path in outer._routes:
                    try:
                        body = json.dumps(outer._routes[path]()).encode("utf-8")
                    except Exception as exc:
                        self.send_error(500, f"route failed: {exc}")
                        return
                    self._send(body, "application/json; charset=utf-8")
                    return
                if path not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics lives here")
                    return
                try:
                    body = outer._render().encode("utf-8")
                except Exception as exc:  # a broken renderer must not kill the thread
                    self.send_error(500, f"render failed: {exc}")
                    return
                self._send(body, PROMETHEUS_CONTENT_TYPE)

            def log_message(self, *args) -> None:
                pass  # scrapes are not stdout events

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"metrics-http-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
