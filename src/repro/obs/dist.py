"""Distributed tracing across the cluster's shard boundary (``repro.obs.dist``).

A single-process :class:`~repro.obs.tracing.Tracer` dies at the
``Envelope``/``Reply`` wire: a scatter-gather request over the ``mp``
transport is a black box between router send and reply gather.  This module
closes that gap with three small pieces, none of which touch the disabled
hot path:

- **Trace context** — :func:`make_trace_ctx` builds the plain dict that
  rides ``Envelope.trace_ctx`` (trace id, parent span id, router send
  timestamp).  ``None`` means "not traced" and costs the engine exactly one
  attribute check.
- **Clock alignment** — :func:`clock_handshake` estimates each shard's
  ``perf_counter`` offset against the router's clock with an NTP-style
  probe (the sample with the smallest round trip bounds the error by its
  RTT).  ``perf_counter`` epochs are per-process, so this is what makes an
  ``mp`` (or future ``socket``) shard's timestamps commensurable with the
  router's.
- **Stitching** — :class:`DistTracer` owns the router-side span buffer,
  collects per-shard span buffers piggybacked on replies, and merges
  everything into one Chrome ``trace_event`` file: the router on its own
  ``pid``/``tid`` lane, each shard on its worker's real ``pid`` (distinct
  process lanes in Perfetto for ``mp``; distinct thread lanes for
  ``thread``/``inline``), with a synthetic ``queue+wire`` event bridging
  the router's send timestamp to the shard's first span so queue wait is
  visible as a block, not an inference.

Span buffers cross the wire as plain dicts with *absolute* shard-clock
timestamps (:func:`spans_to_wire`); the stitcher maps them onto the router
timeline with the handshake offset.  Everything here is data — no live
tracers, no callables — so it works identically over every transport.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "ShardClock",
    "DistTracer",
    "clock_handshake",
    "make_trace_ctx",
    "spans_to_wire",
]


def make_trace_ctx(trace_id: str, parent: Optional[str] = None) -> Dict[str, object]:
    """The wire form of one request's trace context.

    A plain dict on purpose: it rides ``Envelope.trace_ctx`` through pickle
    unchanged, and unknown keys added by future versions are ignored rather
    than fatal.  ``send_ts`` is the *router's* ``perf_counter`` at send
    time — the anchor the stitcher bridges to the shard's first span.
    """
    return {
        "trace_id": str(trace_id),
        "parent": parent,
        "send_ts": time.perf_counter(),
    }


def spans_to_wire(tracer: Tracer) -> List[Dict[str, object]]:
    """Serialize a tracer's spans with absolute (process-clock) starts.

    The tracer records run-relative starts; the wire form re-anchors them to
    the process's raw ``perf_counter`` timeline so the receiving side needs
    only a clock offset — not this tracer's epoch — to place them.
    """
    return [
        {
            "name": record.name,
            "start": tracer.epoch + record.start,
            "duration": record.duration,
            "depth": record.depth,
            "parent": record.parent,
            "args": record.args,
        }
        for record in tracer.spans
    ]


@dataclass
class ShardClock:
    """One shard's clock relationship to the router.

    ``offset`` is ``shard_perf_counter - router_perf_counter`` estimated at
    the midpoint of the best (lowest-RTT) probe; mapping a shard timestamp
    onto the router timeline is ``t_shard - offset``.  ``rtt`` bounds the
    estimation error: the true offset lies within ±rtt/2 of the estimate.
    """

    shard_id: int
    offset: float
    rtt: float
    pid: int

    def to_router_time(self, shard_ts: float) -> float:
        return shard_ts - self.offset


def clock_handshake(
    probe: Callable[[], Dict[str, object]],
    *,
    shard_id: int = 0,
    samples: int = 5,
) -> ShardClock:
    """Estimate one shard's clock offset from repeated round-trip probes.

    ``probe()`` must round-trip one ``clock`` envelope and return the
    engine's reply payload (``{"mono": perf_counter, "pid": ...}``).  Each
    sample brackets the engine's clock read between two router clock reads;
    the sample with the smallest round trip gives the tightest bound, so
    that one wins (the NTP convention).  Five samples over an in-host pipe
    put the error well under the microsecond scale of the spans being
    aligned.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    best: Optional[ShardClock] = None
    for _ in range(samples):
        t0 = time.perf_counter()
        payload = probe()
        t1 = time.perf_counter()
        rtt = t1 - t0
        offset = float(payload["mono"]) - (t0 + t1) / 2.0
        if best is None or rtt < best.rtt:
            best = ShardClock(
                shard_id=shard_id,
                offset=offset,
                rtt=rtt,
                pid=int(payload.get("pid", 0)),
            )
    return best


class DistTracer:
    """Router-side collector and stitcher for one distributed trace run.

    Owns three things: an always-enabled local :class:`Tracer` for the
    router's own spans (scatter, per-shard gather), the per-shard
    :class:`ShardClock` table from the alignment handshake, and the shard
    span buffers collected off replies.  :meth:`to_chrome_trace` merges the
    three into one ``trace_event`` payload on the router's timeline.
    """

    def __init__(self) -> None:
        self.tracer = Tracer(enabled=True)
        self.shard_clocks: Dict[int, ShardClock] = {}
        self.shard_spans: Dict[int, List[Dict[str, object]]] = {}
        self.shard_pids: Dict[int, int] = {}
        self._next_trace = 0

    # -- recording ------------------------------------------------------

    def new_trace_id(self) -> str:
        self._next_trace += 1
        return f"t{self._next_trace:06d}"

    @property
    def traces_started(self) -> int:
        return self._next_trace

    def register_clock(self, clock: ShardClock) -> None:
        self.shard_clocks[clock.shard_id] = clock
        self.shard_pids[clock.shard_id] = clock.pid

    def add_reply_trace(self, payload: Optional[Dict[str, object]]) -> None:
        """Fold one reply's piggybacked span buffer into the collection.

        Tolerates ``None`` (an untraced reply) so gather loops can call it
        unconditionally, and records the shard's pid from the payload — the
        authoritative source for ``mp`` workers, where the handshake may
        not have run yet.
        """
        if payload is None:
            return
        shard = int(payload.get("shard", -1))
        self.shard_spans.setdefault(shard, []).extend(payload.get("spans", []))
        if "pid" in payload:
            self.shard_pids[shard] = int(payload["pid"])

    def span_count(self) -> int:
        """Total spans collected (router + every shard)."""
        return len(self.tracer.spans) + sum(
            len(spans) for spans in self.shard_spans.values()
        )

    # -- stitching ------------------------------------------------------

    def _shard_offset(self, shard: int) -> float:
        clock = self.shard_clocks.get(shard)
        return clock.offset if clock is not None else 0.0

    def to_chrome_trace(self) -> Dict[str, object]:
        """One merged Chrome ``trace_event`` payload, router timeline.

        Lanes: the router's spans under its own pid / tid 0, each shard's
        spans under the worker's pid with ``tid = shard_id + 1`` (so
        in-process transports, where every shard shares the router's pid,
        still get distinct lanes).  ``process_name`` / ``thread_name``
        metadata events label the lanes; a synthetic ``queue+wire`` event
        fills the gap between the router's recorded send timestamp and the
        shard's root span.
        """
        router_pid = os.getpid()
        epoch = self.tracer.epoch
        events: List[Dict[str, object]] = []

        def meta(name: str, pid: int, tid: int, value: str) -> Dict[str, object]:
            return {
                "name": name,
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": value},
            }

        events.append(meta("process_name", router_pid, 0, "router"))
        events.append(meta("thread_name", router_pid, 0, "router"))
        for record in self.tracer.spans:
            event: Dict[str, object] = {
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": router_pid,
                "tid": 0,
            }
            if record.args:
                event["args"] = dict(record.args)
            events.append(event)

        for shard in sorted(self.shard_spans):
            pid = self.shard_pids.get(shard, router_pid)
            tid = shard + 1
            label = f"shard {shard}"
            if pid != router_pid:
                events.append(meta("process_name", pid, tid, f"{label} worker"))
            events.append(meta("thread_name", pid, tid, label))
            offset = self._shard_offset(shard)
            for wire in self.shard_spans[shard]:
                start = float(wire["start"]) - offset - epoch
                event = {
                    "name": wire["name"],
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": float(wire["duration"]) * 1e6,
                    "pid": pid,
                    "tid": tid,
                }
                args = wire.get("args")
                if args:
                    event["args"] = dict(args)
                    # Root spans echo the router's send timestamp; bridge
                    # the send → handle gap as a visible queue+wire block.
                    send_ts = args.get("send_ts")
                    if send_ts is not None and wire.get("depth", 0) == 0:
                        wait = start - (float(send_ts) - epoch)
                        if wait > 0:
                            events.append(
                                {
                                    "name": "queue+wire",
                                    "ph": "X",
                                    "ts": (float(send_ts) - epoch) * 1e6,
                                    "dur": wait * 1e6,
                                    "pid": pid,
                                    "tid": tid,
                                    "args": {
                                        "trace_id": args.get("trace_id")
                                    },
                                }
                            )
                events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write the stitched trace; returns the event count."""
        payload = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])


def _wire_to_records(spans: List[Dict[str, object]]) -> List[SpanRecord]:
    """Parse wire spans back into :class:`SpanRecord` (tests, analysis)."""
    return [
        SpanRecord(
            name=wire["name"],
            start=float(wire["start"]),
            duration=float(wire["duration"]),
            depth=int(wire.get("depth", 0)),
            parent=int(wire.get("parent", -1)),
            args=wire.get("args"),
        )
        for wire in spans
    ]
