"""``repro.obs`` — unified observability: metrics, tracing, profiling, timing.

One pipeline for everything the efficiency claims rest on:

- :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` labeled series plus a stepped event log — training
  (per-epoch loss, F1, message volume, KL-trigger activity) and serving
  (latency, occupancy, hit rate) report through the same registry and dump
  to one ``metrics.jsonl``.
- :class:`Tracer` — nested spans over the hot paths (epochs, batches,
  model forward, samplers), exportable as Chrome ``trace_event`` JSON and
  as a JSONL event log.
- :class:`OpProfiler` — op-level counts, FLOP estimates and
  forward/backward self-times hooked into the ``repro.tensor`` engine;
  near-zero overhead while disabled.
- :class:`Timer` / :func:`time_call` — the wall-clock helpers formerly in
  ``repro.utils.timing`` (that module remains as a deprecation alias).
- :class:`MetricsHTTPServer` — a stdlib ``/metrics`` HTTP endpoint serving
  any Prometheus render callable (single server or merged cluster view)
  for scrape-based collection; registries also serialize
  (``to_payload``/``merge_payload``) so per-process instances aggregate
  across the cluster's shard boundary.
- :class:`DistTracer` + :class:`SLOMonitor` (``repro.obs.dist`` /
  ``repro.obs.slo``) — cross-shard distributed tracing with clock-offset
  alignment and stitched Chrome traces, request-lifecycle attribution
  (queue-wait vs compute, serving-ladder rung counts), rolling-window SLO
  compliance with error budgets, and a bounded slow-request log.
"""

from repro.obs.dist import (
    DistTracer,
    ShardClock,
    clock_handshake,
    make_trace_ctx,
    spans_to_wire,
)
from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, MetricsHTTPServer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    nearest_rank_percentile,
    set_registry,
)
from repro.obs.profiler import OpProfiler, OpStat
from repro.obs.slo import (
    RUNGS,
    AttributionRecord,
    SLOMonitor,
    SLOTarget,
    SlowRequestLog,
)
from repro.obs.timing import Timer, time_call
from repro.obs.tracing import (
    SpanRecord,
    Tracer,
    get_tracer,
    set_thread_tracer,
    set_tracer,
    span,
)

__all__ = [
    "MetricsHTTPServer",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "nearest_rank_percentile",
    "OpProfiler",
    "OpStat",
    "Timer",
    "time_call",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "set_thread_tracer",
    "span",
    "DistTracer",
    "ShardClock",
    "clock_handshake",
    "make_trace_ctx",
    "spans_to_wire",
    "RUNGS",
    "AttributionRecord",
    "SLOMonitor",
    "SLOTarget",
    "SlowRequestLog",
]
