"""Metric primitives and the process-wide registry.

Three instrument kinds, modeled on the Prometheus data model but kept
in-process (this repo has no scrape endpoint — metrics are dumped to JSONL
at the end of a run):

- :class:`Counter` — monotonically increasing total (messages processed,
  trigger fires, cache hits).
- :class:`Gauge` — a value that can go up and down (queue depth, current
  neighbor-set size).
- :class:`Histogram` — a distribution of observations with exact quantiles
  (latencies, attention entropies, KL divergences).  Observations are kept
  raw; at this repo's scale (≤ millions of points) exactness beats the
  memory savings of bucketed sketches.

A :class:`MetricsRegistry` owns labeled *series* of instruments: asking for
``registry.counter("messages", path="wide")`` twice returns the same object,
while a different label set names a different series.  The registry also
keeps an append-only *event log* (:meth:`MetricsRegistry.emit`) for stepped
time series — per-epoch loss, F1, message volume — which is what makes a
``metrics.jsonl`` dump replayable into plots.

One process-wide default registry exists so training and serving report
through one pipeline; create private registries in tests.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

LabelKey = Tuple[Tuple[str, str], ...]

_PROM_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _prom_name(name: str) -> str:
    """Metric name sanitized to the Prometheus grammar (``/`` -> ``_`` etc.)."""
    if _PROM_NAME_OK.fullmatch(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not re.match(r"[a-zA-Z_:]", cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Dict[str, object], extra: Optional[Dict[str, str]] = None) -> str:
    """Rendered ``{k="v",...}`` block, empty string for a label-free series."""
    pairs = [(str(k), str(v)) for k, v in sorted(labels.items(), key=lambda kv: str(kv[0]))]
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    rendered = []
    for key, value in pairs:
        if not _PROM_LABEL_OK.fullmatch(key):
            key = re.sub(r"[^a-zA-Z0-9_]", "_", key)
            if not re.match(r"[a-zA-Z_]", key):
                key = "_" + key  # label names may not start with a digit
        # Exposition-format escaping; backslash first so the others stay literal.
        value = value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        rendered.append(f'{key}="{value}"')
    return "{" + ",".join(rendered) + "}"


def _prom_help(text: str) -> str:
    """HELP-line escaping: only backslash and newline (quotes stay literal)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


# Help text for well-known metric names, applied when a registry has no
# per-name override (MetricsRegistry.describe).  Kept here so every
# registry — router-scope, per-shard, test-private — exposes the same docs.
DEFAULT_HELP: Dict[str, str] = {
    "serve_latency_seconds": "End-to-end serve latency per request.",
    "serve_requests_total": "Serve requests by cache outcome.",
    "serve_batch_size": "Submitted batch sizes (including cache hits).",
    "serve_compute_batch_size": "Batch sizes that reached the model.",
    "serve_queue_depth": "Pending queue depth sampled at submit.",
    "serve_invalidation_frontier": "Nodes invalidated per mutation frontier.",
    "serve_cache_node_hits": "Per-node embedding-cache hit counts.",
    "serve_cache_entries": "Live embedding-cache entries.",
    "serve_rung_total": "Nodes served by ladder rung (cache/store/overlay/recompute).",
    "serve_queue_wait_seconds": "Queue wait (submit to flush) per computed request.",
    "serve_compute_seconds": "Compute time (flush to completion) per request.",
    "shard_errors_total": "Engine envelopes that became error replies, by kind.",
    "train_shard_step_seconds": "Per-shard local microbatch compute (forward+backward), per step.",
    "train_grad_reduce_seconds": "Coordinator gradient gather+weighted-reduce time, per global step.",
    "train_sync_bytes_total": "Gradient bytes moved per global step (gathered + broadcast).",
    "train_attention_entropy": "Wide/deep attention entropy observed during training, by path.",
    "train_kl_divergence": "KL divergence of attention profiles at downsampling checks.",
    "train_messages_total": "Neighbor messages aggregated during training, by path.",
    "cluster_requests_total": "Scatter-gather requests issued by the router.",
    "fleet_worker_connected": "1 while the shard's socket transport is up, 0 after WorkerDown.",
    "fleet_workers_connected": "Socket workers currently connected, fleet-wide.",
    "fleet_worker_down_total": "WorkerDown events by shard and reason.",
    "fleet_reconnects_total": "Workers respawned and readmitted after WorkerDown.",
    "fleet_rebuilds_total": "Recoveries forced past the mutation-log horizon (full replan).",
    "fleet_heartbeat_age_seconds": "Round-trip age of answered heartbeats, per shard.",
    "slo_window_requests": "Requests inside the rolling SLO window.",
    "slo_error_budget_remaining": "Fraction of the SLO error budget left (1 = untouched).",
    "slo_burn_rate": "Error-budget burn rate (1 = sustainable).",
    "trace_spans_total": "Spans collected by the distributed tracer.",
    "store_rows": "Materialized rows in the aggregate store.",
    "store_row_bytes": "Bytes per materialized store row.",
    "store_bytes_total": "Total bytes across store row blocks.",
    "store_build_seconds": "Wall-clock time of the last store build.",
    "op_calls": "Tensor-op invocations by op name.",
    "op_flops": "Estimated FLOPs by op name.",
}


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set (sorted by label name)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def nearest_rank_percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 for an empty series.

    Nearest-rank keeps the answer an *observed* value — the convention of
    serving dashboards — instead of an interpolated value no request paid.
    """
    if len(values) == 0:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil without floats
    return ordered[min(rank, len(ordered)) - 1]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "counter",
            "name": self.name,
            "labels": self.labels,
            "value": self._value,
        }


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "gauge",
            "name": self.name,
            "labels": self.labels,
            "value": self._value,
        }


class Histogram:
    """Distribution of observations with exact quantiles.

    Two quantile conventions are exposed because the repo needs both:

    - :meth:`quantile` — numpy's linear-interpolation convention
      (``np.quantile``), the statistics-textbook answer used in analyses.
    - :meth:`percentile` — nearest-rank, the serving-dashboard convention
      (every reported latency is one a real request paid).
    """

    __slots__ = ("name", "labels", "_values", "_sorted")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = False

    def observe_many(self, values: Iterable[float]) -> None:
        self._values.extend(float(v) for v in values)
        self._sorted = False

    def _ordered(self) -> List[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def min(self) -> float:
        return self._ordered()[0] if self._values else 0.0

    @property
    def max(self) -> float:
        return self._ordered()[-1] if self._values else 0.0

    @property
    def mean(self) -> float:
        return self.sum / len(self._values) if self._values else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, identical to ``np.quantile``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        return float(np.quantile(self._ordered(), q))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the observations so far."""
        return nearest_rank_percentile(self._ordered(), p)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        self._values.clear()
        self._sorted = True

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": self.labels,
            **self.summary(),
        }


class MetricsRegistry:
    """Labeled instrument series plus an append-only event log.

    Series identity is ``(name, labels)`` with labels canonicalized by name,
    so ``counter("m", a=1, b=2)`` and ``counter("m", b=2, a=1)`` are the same
    series.  Requesting an existing name with a different instrument kind is
    an error — one name means one kind, as in every metrics system.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelKey], object] = {}
        self._kinds: Dict[str, type] = {}
        self._help: Dict[str, str] = {}
        self.events: List[Dict[str, object]] = []

    # -- instruments ----------------------------------------------------

    def _get_or_create(self, cls: type, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind.__name__}, not {cls.__name__}"
                )
            instrument = self._series.get(key)
            if instrument is None:
                instrument = cls(name, labels)
                self._series[key] = instrument
                self._kinds[name] = cls
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def describe(self, name: str, help_text: str) -> None:
        """Attach ``# HELP`` text to a metric name (overrides DEFAULT_HELP)."""
        with self._lock:
            self._help[name] = str(help_text)

    def help_for(self, name: str) -> Optional[str]:
        """Effective help text for a name (explicit first, then defaults)."""
        return self._help.get(name, DEFAULT_HELP.get(name))

    def series(self) -> List[object]:
        """All registered instruments, in registration order."""
        return list(self._series.values())

    def get(self, name: str, **labels):
        """Existing instrument or ``None`` (never creates)."""
        return self._series.get((name, _label_key(labels)))

    # -- event log (stepped time series) --------------------------------

    def emit(
        self, name: str, value: float, step: Optional[int] = None, **labels
    ) -> None:
        """Append one point of a stepped series (e.g. a per-epoch scalar)."""
        record: Dict[str, object] = {"name": name, "value": float(value)}
        if step is not None:
            record["step"] = int(step)
        if labels:
            record["labels"] = {str(k): str(v) for k, v in labels.items()}
        self.events.append(record)

    def values(self, name: str, **labels) -> List[float]:
        """All emitted values of one stepped series, in emit order."""
        want = {str(k): str(v) for k, v in labels.items()} or None
        return [
            float(e["value"])
            for e in self.events
            if e["name"] == name and e.get("labels") == want
        ]

    # -- message-boundary serialization ---------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Lossless, picklable snapshot of every series and event.

        Unlike :meth:`snapshot` (which reduces histograms to summary
        stats), the payload keeps **raw histogram observations**, so a
        merged registry computes quantiles over the union of shards'
        observations — the same numbers one shared registry would have
        produced.  This is how per-process registries in the cluster's mp
        workers aggregate into one shard-labeled Prometheus exposition.
        """
        with self._lock:
            instruments = list(self._series.values())
            events = [dict(event) for event in self.events]
            help_texts = dict(self._help)
        series = []
        for instrument in instruments:
            entry: Dict[str, object] = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Counter):
                entry["kind"] = "counter"
                entry["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                entry["kind"] = "gauge"
                entry["value"] = instrument.value
            else:
                entry["kind"] = "histogram"
                entry["values"] = list(instrument._values)
            series.append(entry)
        return {"series": series, "events": events, "help": help_texts}

    def merge_payload(
        self,
        payload: Dict[str, object],
        extra_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold a :meth:`to_payload` snapshot into this registry.

        ``extra_labels`` (e.g. ``{"shard": "2"}``) are appended to every
        merged series and event, which is how identically named series from
        different shards stay distinct in one exposition.  Counters add,
        gauges take the incoming value, histograms extend with the raw
        observations.
        """
        extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
        for name, text in payload.get("help", {}).items():
            with self._lock:
                self._help.setdefault(name, text)
        for entry in payload["series"]:
            labels = {**entry["labels"], **extra}
            if entry["kind"] == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif entry["kind"] == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif entry["kind"] == "histogram":
                self.histogram(entry["name"], **labels).observe_many(
                    entry["values"]
                )
            else:
                raise ValueError(f"unknown series kind {entry['kind']!r}")
        for event in payload["events"]:
            labels = {**event.get("labels", {}), **extra}
            self.emit(
                event["name"], event["value"], step=event.get("step"), **labels
            )

    # -- export ---------------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        """Current state of every instrument (no events)."""
        return [instrument.snapshot() for instrument in self._series.values()]

    def to_records(self) -> List[Dict[str, object]]:
        """Event log followed by an instrument snapshot — the JSONL payload."""
        records = [{"kind": "event", **event} for event in self.events]
        records.extend(self.snapshot())
        return records

    def render_prometheus(self) -> str:
        """Prometheus text-exposition rendering of every instrument.

        The metrics-scrape surface for long-lived servers: counters and
        gauges render as one sample per labeled series, histograms as the
        summary convention (``{quantile="0.5|0.95|0.99"}`` samples plus
        ``_sum``/``_count``), each name preceded by ``# TYPE``.  Names and
        labels are sanitized to the Prometheus grammar (``serve/latency``
        becomes ``serve_latency``).  The event log is a replay artifact, not
        a scrape target, and is not rendered.

        The output ends with a newline, so it can be written verbatim as a
        textfile-collector file (see ``InferenceServer``'s
        ``prometheus_path``) or served from a ``/metrics`` handler.
        """
        by_name: Dict[str, List[object]] = {}
        with self._lock:
            instruments = list(self._series.values())
        for instrument in instruments:
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: List[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            prom = _prom_name(name)
            kind = type(group[0])
            help_text = self.help_for(name)
            if help_text:
                lines.append(f"# HELP {prom} {_prom_help(help_text)}")
            if kind is Counter:
                lines.append(f"# TYPE {prom} counter")
                for c in group:
                    lines.append(f"{prom}{_prom_labels(c.labels)} {c.value:g}")
            elif kind is Gauge:
                lines.append(f"# TYPE {prom} gauge")
                for g in group:
                    lines.append(f"{prom}{_prom_labels(g.labels)} {g.value:g}")
            else:  # Histogram -> summary exposition
                lines.append(f"# TYPE {prom} summary")
                for h in group:
                    for q in (0.5, 0.95, 0.99):
                        sample = h.quantile(q)
                        lines.append(
                            f"{prom}{_prom_labels(h.labels, {'quantile': f'{q:g}'})}"
                            f" {sample:g}"
                        )
                    lines.append(f"{prom}_sum{_prom_labels(h.labels)} {h.sum:g}")
                    lines.append(f"{prom}_count{_prom_labels(h.labels)} {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path) -> int:
        """Write :meth:`render_prometheus` to ``path``; returns sample lines.

        The write goes through a temp file + atomic replace, the textfile
        collector convention (a scraper never observes a half-written file).
        """
        import os
        import tempfile

        text = self.render_prometheus()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(prefix=".prom-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return sum(1 for line in text.splitlines() if not line.startswith("#"))

    def dump_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the record count."""
        records = self.to_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)

    def reset(self) -> None:
        """Drop every series and event (between independent runs)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()
            self._help.clear()
            self.events.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (training + serving share it)."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
