"""Request-lifecycle attribution and SLO monitoring (``repro.obs.slo``).

Three pieces, all plain data structures fed by the serving path:

- :class:`AttributionRecord` — one serve request decomposed into queue-wait
  vs compute plus a count of which ladder rung (cache / store / overlay /
  recompute) served each node.  Rung counts sum to the node count by
  construction, which is the invariant the tests pin.
- :class:`SLOMonitor` — a rolling time window of request outcomes scored
  against an :class:`SLOTarget` (latency threshold + objective): windowed
  p50/p95/p99, error-budget remaining, and burn rate (1.0 = spending the
  budget exactly as fast as the objective allows).
- :class:`SlowRequestLog` — a bounded worst-K log keeping exemplar
  attribution records for the slowest requests, so "p99 regressed" comes
  with the actual offending requests attached.

Nothing here touches the hot path unless explicitly installed: the router
holds ``slo=None`` by default and the guard is one ``is None`` check.
"""

from __future__ import annotations

import heapq
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "RUNGS",
    "AttributionRecord",
    "SLOTarget",
    "SLOMonitor",
    "SlowRequestLog",
]

# The serving ladder, fastest rung first (see repro.serve / repro.store).
RUNGS = ("cache", "store", "overlay", "recompute")


@dataclass
class AttributionRecord:
    """Where one serve request's time and nodes went.

    ``queue_wait`` / ``compute`` are critical-path seconds (the max across
    the shards the request touched — a scatter-gather request is as slow as
    its slowest shard, not the sum).  ``rungs`` counts nodes by the ladder
    rung that produced their embedding; the counts sum to ``nodes``.
    """

    trace_id: str
    nodes: int
    shards: int
    latency: float
    queue_wait: float
    compute: float
    rungs: Dict[str, int] = field(default_factory=dict)
    ok: bool = True
    error: Optional[str] = None

    def rung_total(self) -> int:
        return sum(self.rungs.values())

    def to_record(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "nodes": self.nodes,
            "shards": self.shards,
            "latency_s": self.latency,
            "queue_wait_s": self.queue_wait,
            "compute_s": self.compute,
            "rungs": dict(self.rungs),
            "ok": self.ok,
            **({"error": self.error} if self.error else {}),
        }


def _nearest_rank(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile — matches Telemetry's convention."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class SLOTarget:
    """A latency SLO: ``objective`` of requests under ``latency_threshold``.

    ``window`` is the rolling horizon in seconds over which compliance is
    judged; requests older than the window stop counting against (or for)
    the budget.
    """

    latency_threshold: float = 0.050
    objective: float = 0.99
    window: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.latency_threshold <= 0.0:
            raise ValueError(
                f"latency_threshold must be positive, got {self.latency_threshold}"
            )
        if self.window <= 0.0:
            raise ValueError(f"window must be positive, got {self.window}")


class SLOMonitor:
    """Rolling-window SLO compliance over a stream of request outcomes.

    ``observe(latency, ok)`` appends one request; ``report()`` evicts
    expired entries and scores the window.  A request is *good* when it
    succeeded **and** met the latency threshold — an error burns budget
    exactly like a slow success.  ``burn_rate`` is the classic ratio:
    bad-fraction / allowed-bad-fraction, so 1.0 means the error budget
    drains exactly at the sustainable rate and 2.0 means twice that.
    """

    def __init__(self, target: Optional[SLOTarget] = None, *, clock=time.monotonic):
        self.target = target if target is not None else SLOTarget()
        self._clock = clock
        # (timestamp, latency, ok) — appended in time order, evicted left.
        self._window: Deque[Tuple[float, float, bool]] = deque()
        self.total_observed = 0

    def observe(self, latency: float, ok: bool = True) -> None:
        self._window.append((self._clock(), float(latency), bool(ok)))
        self.total_observed += 1

    def _evict(self, now: float) -> None:
        horizon = now - self.target.window
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()

    def report(self) -> Dict[str, object]:
        now = self._clock()
        self._evict(now)
        latencies = sorted(entry[1] for entry in self._window)
        count = len(latencies)
        threshold = self.target.latency_threshold
        good = sum(
            1 for (_, latency, ok) in self._window if ok and latency <= threshold
        )
        bad = count - good
        allowed_bad = 1.0 - self.target.objective
        bad_frac = (bad / count) if count else 0.0
        # budget_remaining: 1.0 = untouched, 0.0 = exhausted, negative = blown.
        budget_remaining = 1.0 - (bad_frac / allowed_bad) if count else 1.0
        return {
            "target": {
                "latency_threshold_s": threshold,
                "objective": self.target.objective,
                "window_s": self.target.window,
            },
            "window_count": count,
            "good": good,
            "bad": bad,
            "compliance": (good / count) if count else 1.0,
            "error_budget_remaining": budget_remaining,
            "burn_rate": bad_frac / allowed_bad,
            "p50_s": _nearest_rank(latencies, 0.50),
            "p95_s": _nearest_rank(latencies, 0.95),
            "p99_s": _nearest_rank(latencies, 0.99),
            "total_observed": self.total_observed,
        }

    def healthy(self) -> bool:
        report = self.report()
        return report["compliance"] >= self.target.objective


class SlowRequestLog:
    """Bounded worst-K log of :class:`AttributionRecord` exemplars.

    A min-heap keyed on latency: the fastest of the kept requests sits at
    the root and is evicted first, so after N observations the log holds
    the K slowest seen.  The tie-break counter keeps heap pushes total even
    when latencies collide (AttributionRecord doesn't order).
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: List[Tuple[float, int, AttributionRecord]] = []
        self._pushed = 0

    def observe(self, record: AttributionRecord) -> None:
        entry = (record.latency, self._pushed, record)
        self._pushed += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def __len__(self) -> int:
        return len(self._heap)

    def worst(self) -> List[AttributionRecord]:
        """Kept records, slowest first."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (-e[0], e[1]))
        ]

    def to_records(self) -> List[Dict[str, object]]:
        return [record.to_record() for record in self.worst()]

    def write_jsonl(self, path) -> int:
        records = self.to_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)
