"""Nested-span tracing with Chrome ``trace_event`` and JSONL export.

A :class:`Tracer` records *complete* spans (name, start, duration, nesting
depth, optional attributes).  Spans nest through a plain stack, so the
recorded parent indices reconstruct the call tree exactly; the Chrome
exporter emits ``ph: "X"`` complete events that ``chrome://tracing`` /
Perfetto render as the familiar flame chart.

The disabled path is the hot path: ``span()`` on a disabled tracer returns
one shared no-op context manager, so instrumentation left in library code
(model forward, samplers, the training loop) costs a function call and an
attribute check per entry — nothing allocates, nothing records.  The module
level :func:`span` helper routes through the process-wide tracer the same
way, which is how library code stays decoupled from whoever enabled tracing.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SpanRecord:
    """One completed span: half-open interval ``[start, start + duration)``."""

    name: str
    start: float
    duration: float
    depth: int
    parent: int  # index into Tracer.spans, -1 for roots
    args: Optional[Dict[str, object]] = None


class _NullSpan:
    """Reusable, reentrant no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start", "_index")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[Dict[str, object]]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        # Reserve the slot now so children recorded before our exit still
        # point at a stable parent index.
        self._index = len(tracer.spans)
        tracer.spans.append(
            SpanRecord(
                name=self._name,
                start=0.0,
                duration=0.0,
                depth=len(tracer._stack),
                parent=tracer._stack[-1] if tracer._stack else -1,
                args=self._args,
            )
        )
        tracer._stack.append(self._index)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        record = tracer.spans[self._index]
        record.start = self._start - tracer.epoch
        record.duration = end - self._start
        tracer._stack.pop()


class Tracer:
    """Collects nested spans; disabled by default (and then near-free)."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()  # run-relative timestamps
        self.spans: List[SpanRecord] = []
        self._stack: List[int] = []

    def span(self, name: str, **args):
        """Context manager timing one nested span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, args or None)

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self.epoch = time.perf_counter()

    # -- export ---------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON (complete "X" events, microseconds)."""
        events = []
        for record in self.spans:
            event: Dict[str, object] = {
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": 0,
                "tid": 0,
            }
            if record.args:
                event["args"] = record.args
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write a ``chrome://tracing``-loadable file; returns event count."""
        payload = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])

    def to_records(self) -> List[Dict[str, object]]:
        return [
            {
                "name": record.name,
                "start_s": record.start,
                "duration_s": record.duration,
                "depth": record.depth,
                "parent": record.parent,
                **({"args": record.args} if record.args else {}),
            }
            for record in self.spans
        ]

    def write_jsonl(self, path) -> int:
        """One span per line (the grep-able flavor); returns span count."""
        records = self.to_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)

    @staticmethod
    def read_jsonl(path) -> List[SpanRecord]:
        """Parse a :meth:`write_jsonl` file back into span records."""
        spans = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                data = json.loads(line)
                spans.append(
                    SpanRecord(
                        name=data["name"],
                        start=data["start_s"],
                        duration=data["duration_s"],
                        depth=data["depth"],
                        parent=data["parent"],
                        args=data.get("args"),
                    )
                )
        return spans


_DEFAULT_TRACER = Tracer(enabled=False)

# Thread-local tracer override: a shard engine handling a *traced* envelope
# on a worker thread must not swap the process-wide tracer (concurrent
# shards would cross-contaminate span buffers), so library spans resolve
# the current thread's tracer first and fall back to the process-wide one.
_TLS = threading.local()


def get_tracer() -> Tracer:
    """The tracer instrumented library code reports to.

    The current thread's override (see :func:`set_thread_tracer`) wins;
    otherwise the process-wide default.
    """
    tracer = getattr(_TLS, "tracer", None)
    return tracer if tracer is not None else _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous


def set_thread_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install a tracer for *this thread only*; returns the previous override.

    ``None`` clears the override (library spans fall back to the process-wide
    tracer).  This is the span-capture hook of distributed tracing: one shard
    engine, one thread, one private span buffer — no matter how many shards
    share the process.
    """
    previous = getattr(_TLS, "tracer", None)
    _TLS.tracer = tracer
    return previous


def span(name: str, **args):
    """Span on the current tracer (the one-liner for library code)."""
    tracer = getattr(_TLS, "tracer", None)
    if tracer is None:
        tracer = _DEFAULT_TRACER
    if not tracer.enabled:
        return _NULL_SPAN
    return _ActiveSpan(tracer, name, args or None)
