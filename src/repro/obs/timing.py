"""Wall-clock timing helpers for the efficiency experiments (Figs. 4-5).

Moved here from ``repro.utils.timing`` so all observability primitives live
in one package; the old module remains as a deprecation alias.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple


class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            train_one_epoch()
        print(timer.total, timer.laps)
    """

    def __init__(self) -> None:
        self.laps: List[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entering")
        self.laps.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def mean(self) -> float:
        return self.total / len(self.laps) if self.laps else 0.0


def time_call(fn: Callable, *args, **kwargs) -> Tuple[float, object]:
    """Run ``fn(*args, **kwargs)`` returning ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result
