"""Sharded serving with halo replication — scale-out without drift.

The single ``InferenceServer`` owns one whole-graph copy; ``repro.cluster``
splits that graph into k balanced shards (``repro.graph.partition``), each
carrying an L-hop *halo* of replicated neighbors sized by WIDEN's declared
sampling reach, so every shard answers requests for its owned nodes
bit-identically to the whole-graph server.  This example demonstrates the
full contract:

1. scatter-gather requests through ``ClusterRouter`` and verify the
   responses equal a single server's byte for byte — including nodes whose
   neighborhood crosses shard boundaries;
2. stream a new paper in through the router (``add_nodes``/``add_edges``
   fan out as per-shard barriers) and verify the cluster still matches a
   single server that saw the same stream;
3. print the cluster telemetry: per-shard ownership/halo sizes, boundary
   request counters, and the shard-labeled Prometheus exposition.

Run:  python examples/sharded_serving.py
"""

import tempfile

import numpy as np

from repro.cluster import ClusterRouter
from repro.core import WidenClassifier
from repro.datasets import make_acm
from repro.serve import InferenceServer, ModelRegistry


def fresh_graph():
    return make_acm(seed=0, scale=0.5).graph


def stream_one_paper(target):
    """The same arrival applied to a server or a router."""
    dim = target.graph.features.shape[1]
    new = target.add_nodes("paper", features=np.full((1, dim), 0.3))
    node = int(new[0])
    target.add_edges("paper-author", [node, node], [1, 3])
    return node


def main() -> None:
    dataset = make_acm(seed=0, scale=0.5)
    model = WidenClassifier(seed=0, dim=16, num_wide=6, num_deep=5)
    model.fit(dataset.graph, dataset.split.train, epochs=3)

    with tempfile.TemporaryDirectory(prefix="repro-registry-") as root:
        registry = ModelRegistry(root)
        checkpoint = registry.save("widen-acm", model)

        graph = fresh_graph()
        single = InferenceServer(
            WidenClassifier.load(checkpoint, graph=graph), graph, seed=7
        )
        probe = np.random.default_rng(1).choice(
            graph.num_nodes, size=20, replace=False
        )

        print("-- 1. scatter-gather equals the single server --")
        reference = single.embed(probe)
        router = ClusterRouter.from_checkpoint(
            checkpoint, fresh_graph(), 4, transport="thread", seed=7
        )
        plan = router.plan.summary()
        print(f"4 shards, reach {plan['reach']}, edge cut {plan['edge_cut']}, "
              f"replication {plan['replication_factor']:.2f}x")
        embeddings = router.embed(probe)
        print(f"cluster == single server, bit for bit: "
              f"{np.array_equal(embeddings, reference)}")
        boundary = sum(worker.halo_requests for worker in router.workers)
        print(f"boundary-crossing requests: {boundary} of {probe.size}")

        print("\n-- 2. streaming mutations through the router --")
        node_single = stream_one_paper(single)
        node_cluster = stream_one_paper(router)
        assert node_cluster == node_single
        after = np.concatenate([probe, [node_cluster]])
        print(f"post-mutation cluster == single server: "
              f"{np.array_equal(router.embed(after), single.embed(after))}")
        for worker in router.workers:
            # Pulled through the transport protocol, so the same line works
            # whether the shard engine is inline, a thread, or a process.
            state = worker.pull_serving_state().result()["serving_state"]
            bumped = sum(state["node_bumps"].values())
            print(f"  shard {worker.spec.shard_id}: "
                  f"{bumped} node versions bumped")

        print("\n-- 3. cluster telemetry --")
        for shard in router.summary()["shards"]:
            print(f"  shard {shard['shard']}: {shard['owned']} owned, "
                  f"{shard['halo']} halo, {shard['requests_routed']} routed, "
                  f"{shard['halo_requests']} boundary, "
                  f"hit rate {shard['cache_hit_rate'] * 100:.0f}%")
        exposition = router.render_prometheus()
        print("\nPrometheus exposition (first lines):")
        for line in exposition.splitlines()[:6]:
            print(f"  {line}")
        router.close()


if __name__ == "__main__":
    main()
