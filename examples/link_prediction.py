"""Link prediction: predict missing edges with WIDEN embeddings.

The paper's second downstream task.  We hold out 10% of ACM edges, train
WIDEN against a bilinear edge objective with negative sampling, and rank
held-out true edges against sampled non-edges (ROC-AUC).  An unsupervised
walk-context model is trained as a comparison point, showing the same
embeddings serve multiple objectives.

Run:  python examples/link_prediction.py
"""

import numpy as np

from repro.core import WidenConfig, WidenModel
from repro.core.link_prediction import LinkPredictionTrainer, split_edges
from repro.core.unsupervised import UnsupervisedWidenTrainer
from repro.datasets import make_acm
from repro.eval.metrics import roc_auc


def main() -> None:
    dataset = make_acm(seed=0)
    split = split_edges(dataset.graph, holdout_fraction=0.1, rng=0)
    print(f"graph: {dataset.graph}")
    print(f"held-out edges: {len(split.positive_edges)} positives, "
          f"{len(split.negative_edges)} sampled non-edges")

    edges = np.vstack([split.positive_edges, split.negative_edges])
    labels = np.concatenate(
        [np.ones(len(split.positive_edges)), np.zeros(len(split.negative_edges))]
    )

    config = WidenConfig(dim=16, num_wide=6, num_deep=5, num_deep_walks=1,
                         learning_rate=1e-2, dropout=0.0)

    def fresh_model():
        return WidenModel(
            dataset.graph.features.shape[1],
            dataset.graph.num_edge_types_with_loops,
            dataset.graph.num_classes,
            config,
            seed=0,
        )

    print("\n-- WIDEN with the bilinear edge objective --")
    trainer = LinkPredictionTrainer(fresh_model(), split.train_graph, config, seed=0)
    auc_before = roc_auc(labels, trainer.score_edges(edges))
    trainer.fit(epochs=6, edges_per_epoch=512)
    auc_after = roc_auc(labels, trainer.score_edges(edges))
    print(f"ROC-AUC before training: {auc_before:.3f}")
    print(f"ROC-AUC after training:  {auc_after:.3f}")

    print("\n-- Unsupervised walk-context embeddings, dot-product scoring --")
    unsupervised = UnsupervisedWidenTrainer(
        fresh_model(), split.train_graph, config, seed=0
    )
    unsupervised.fit(epochs=4, anchors_per_epoch=256)
    nodes = np.unique(edges.reshape(-1))
    table = dict(zip(nodes.tolist(), unsupervised.embed(nodes)))
    scores = np.array([float(table[int(u)] @ table[int(v)]) for u, v in edges])
    print(f"ROC-AUC (unsupervised embeddings): {roc_auc(labels, scores):.3f}")


if __name__ == "__main__":
    main()
