"""Inductive serving of brand-new nodes — the streaming scenario, live.

The paper motivates inductiveness with "high-throughput, production machine
learning systems" that constantly encounter unseen nodes (new users, new
videos).  This example runs that scenario through the ``repro.serve`` stack:
WIDEN trains on a graph with 20% of businesses missing, is checkpointed
through the model registry, and restored into an ``InferenceServer``.  The
held-out businesses then *arrive as a stream* — ``server.add_nodes`` /
``add_edges`` graft each one (features + connections) into the live serving
graph, the embedding cache invalidates itself, and the very next request
classifies the newcomer with zero retraining.

For contrast, the same protocol is run through GCN, whose spectral
convolution was designed for a fixed graph, and Node2Vec, which cannot
handle unseen nodes at all.

Run:  python examples/streaming_inductive.py
"""

import tempfile

import numpy as np

from repro.baselines import GCN, Node2Vec
from repro.core import WidenClassifier
from repro.datasets import make_inductive_split, make_yelp
from repro.eval import micro_f1
from repro.serve import InferenceServer, ModelRegistry


def main() -> None:
    dataset = make_yelp(seed=0, scale=0.4)
    split = make_inductive_split(dataset, holdout_fraction=0.2, rng=0)
    print(f"full graph: {dataset.graph}")
    print(f"training graph (new businesses removed): {split.train_graph}")
    print(f"arriving nodes to stream in later: {split.holdout.size}")

    labels = dataset.graph.labels[split.holdout]

    print("\n-- WIDEN behind repro.serve (built for this) --")
    widen = WidenClassifier(seed=0)
    widen.fit(split.train_graph, split.train_nodes, epochs=15)

    with tempfile.TemporaryDirectory(prefix="repro-registry-") as root:
        # Checkpoint -> registry -> restore: the serving process never sees
        # the trainer, only the self-describing checkpoint.
        registry = ModelRegistry(root)
        registry.save("widen-yelp", widen)
        served = registry.load("widen-yelp", graph=split.train_graph)
        server = InferenceServer(
            served, split.train_graph, max_batch_size=16, seed=0
        )

        # The 'stream' arrives.  Each held-out business is grafted into the
        # live graph: its features via add_nodes, then every edge to a
        # neighbor that is already present.  old->serving id bookkeeping is
        # exactly what a production ingest pipeline would keep.
        full = dataset.graph
        old_to_serving = np.full(full.num_nodes, -1, dtype=np.int64)
        old_to_serving[split.train_mapping] = np.arange(split.train_mapping.size)
        type_name = {i: name for i, name in enumerate(full.node_type_names)}
        for old_id in split.holdout:
            new_id = server.add_nodes(
                type_name[int(full.node_types[old_id])],
                features=full.features[old_id].reshape(1, -1),
            )[0]
            old_to_serving[old_id] = new_id
            neighbors, edge_types = full.neighbors(int(old_id))
            present = old_to_serving[neighbors] >= 0
            for neighbor, etype in zip(neighbors[present], edge_types[present]):
                server.add_edges(
                    full.edge_type_names[int(etype)],
                    np.array([new_id]),
                    np.array([old_to_serving[int(neighbor)]]),
                )

        # Classify the newcomers the moment they are all in.
        serving_ids = old_to_serving[split.holdout]
        predictions = server.classify(serving_ids)
        print(f"streamed in {split.holdout.size} businesses "
              f"({server.graph.version} graph mutations)")
        print(f"micro-F1 on unseen businesses: {micro_f1(labels, predictions):.4f}")
        print()
        print(server.telemetry.format_report("serving telemetry"))

    print("\n-- GCN (transductive by design) --")
    gcn = GCN(seed=0)
    gcn.fit(split.train_graph, split.train_nodes, epochs=40)
    predictions = gcn.predict(split.holdout, graph=dataset.graph)
    print(f"micro-F1 on unseen businesses: {micro_f1(labels, predictions):.4f}")

    print("\n-- Node2Vec (cannot embed unseen nodes) --")
    node2vec = Node2Vec(seed=0)
    node2vec.fit(split.train_graph, split.train_nodes, epochs=1)
    try:
        node2vec.predict(split.holdout, graph=dataset.graph)
    except ValueError as error:
        print(f"rejected, as expected: {error}")


if __name__ == "__main__":
    main()
