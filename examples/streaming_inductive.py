"""Inductive embedding of brand-new nodes — the streaming scenario.

The paper motivates inductiveness with "high-throughput, production machine
learning systems" that constantly encounter unseen nodes (new users, new
videos).  This example simulates that: WIDEN trains on a graph with 20% of
businesses missing, then — without any retraining — embeds and classifies
the new nodes the moment they arrive with their features and connections.

For contrast, the same protocol is run through GCN, whose spectral
convolution was designed for a fixed graph, and Node2Vec, which cannot
handle unseen nodes at all.

Run:  python examples/streaming_inductive.py
"""

import numpy as np

from repro.baselines import GCN, Node2Vec
from repro.core import WidenClassifier
from repro.datasets import make_inductive_split, make_yelp
from repro.eval import micro_f1


def main() -> None:
    dataset = make_yelp(seed=0, scale=0.4)
    split = make_inductive_split(dataset, holdout_fraction=0.2, rng=0)
    print(f"full graph: {dataset.graph}")
    print(f"training graph (new businesses removed): {split.train_graph}")
    print(f"arriving nodes to embed later: {split.holdout.size}")

    labels = dataset.graph.labels[split.holdout]

    print("\n-- WIDEN (built for this) --")
    widen = WidenClassifier(seed=0)
    widen.fit(split.train_graph, split.train_nodes, epochs=15)
    # The 'stream' arrives: classify nodes the model has never seen, in the
    # restored full graph, with zero retraining.
    predictions = widen.predict(split.holdout, graph=dataset.graph)
    print(f"micro-F1 on unseen businesses: {micro_f1(labels, predictions):.4f}")

    print("\n-- GCN (transductive by design) --")
    gcn = GCN(seed=0)
    gcn.fit(split.train_graph, split.train_nodes, epochs=40)
    predictions = gcn.predict(split.holdout, graph=dataset.graph)
    print(f"micro-F1 on unseen businesses: {micro_f1(labels, predictions):.4f}")

    print("\n-- Node2Vec (cannot embed unseen nodes) --")
    node2vec = Node2Vec(seed=0)
    node2vec.fit(split.train_graph, split.train_nodes, epochs=1)
    try:
        node2vec.predict(split.holdout, graph=dataset.graph)
    except ValueError as error:
        print(f"rejected, as expected: {error}")


if __name__ == "__main__":
    main()
