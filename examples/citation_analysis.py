"""Academic-graph workload: classify authors by research area on DBLP.

Reproduces the paper's DBLP workload end to end and demonstrates the
introspection APIs a downstream user gets:

- attention distributions over a node's wide neighborhood (which neighbors
  drive its representation),
- active downsampling in action (how neighbor sets shrink during training,
  and where contextualized relay edges were installed),
- embedding-space structure via t-SNE coordinates.

Run:  python examples/citation_analysis.py
"""

import numpy as np

from repro.core import WidenClassifier
from repro.datasets import make_dblp
from repro.eval import micro_f1, silhouette_score, tsne


def main() -> None:
    dataset = make_dblp(seed=0)
    graph = dataset.graph
    print(f"DBLP-like graph: {graph}")

    model = WidenClassifier(seed=0, dim=32, num_wide=10, num_deep=8)
    model.fit(graph, dataset.split.train, epochs=25)
    predictions = model.predict(dataset.split.test)
    print(f"author classification micro-F1: "
          f"{micro_f1(graph.labels[dataset.split.test], predictions):.4f}")

    # Peek inside one author's message passing.
    author = int(dataset.split.train[0])
    state = model.trainer.store.get(author)
    import repro.tensor as T
    with T.no_grad():
        _, wide_attention, deep_attentions = model.model(
            author, state, graph, model.trainer.node_state
        )
    print(f"\nauthor node {author} (class {graph.labels[author]}):")
    print(f"  wide neighbors remaining after downsampling: {len(state.wide)}")
    for local, (node, weight) in enumerate(
        zip(state.wide.nodes, wide_attention[1:])
    ):
        node_type = graph.node_type_names[graph.node_types[node]]
        print(f"    neighbor {node} ({node_type}): attention {weight:.3f}")
    relays = sum(
        1 for deep in state.deep for relay in deep.relays if relay is not None
    )
    print(f"  relay edges installed across {len(state.deep)} deep walks: {relays}")

    # Embedding-space structure of test authors.
    embeddings = model.embed(dataset.split.test[:150])
    labels = graph.labels[dataset.split.test[:150]]
    coordinates = tsne(embeddings, perplexity=15, iterations=200, seed=0)
    print(f"\nt-SNE silhouette of test-author embeddings: "
          f"{silhouette_score(coordinates, labels):.3f}")
    for cls in np.unique(labels):
        centroid = coordinates[labels == cls].mean(axis=0)
        print(f"  class {cls} cluster centroid: "
              f"({centroid[0]:+.2f}, {centroid[1]:+.2f})")


if __name__ == "__main__":
    main()
