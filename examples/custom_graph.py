"""Bring your own heterogeneous graph.

Shows the full substrate API: build a custom typed graph with
``GraphBuilder`` (here, an e-commerce graph of users, products and brands),
attach features and labels, create a split, and train both WIDEN and a
baseline on it.  This is the path a downstream user takes for their own
data.

Run:  python examples/custom_graph.py
"""

import numpy as np

from repro.baselines import GraphSAGE
from repro.core import WidenClassifier
from repro.datasets.dataset import Dataset
from repro.datasets.splits import make_transductive_split
from repro.eval import micro_f1
from repro.graph import GraphBuilder


def build_ecommerce_graph(seed: int = 0):
    """A small user/product/brand graph with purchase and brand edges.

    Products are labeled by demand tier; the signal lives in (a) product
    features and (b) which users buy them (users have segments that
    correlate with demand).
    """
    rng = np.random.default_rng(seed)
    num_products, num_users, num_brands, num_classes = 300, 500, 20, 3

    builder = GraphBuilder()
    products = builder.add_nodes("product", num_products)
    users = builder.add_nodes("user", num_users)
    brands = builder.add_nodes("brand", num_brands)

    product_tier = rng.integers(0, num_classes, num_products)
    user_segment = rng.integers(0, num_classes, num_users)

    # Users buy mostly within their segment's demand tier.
    src, dst = [], []
    for product in range(num_products):
        for _ in range(rng.poisson(4) + 1):
            if rng.random() < 0.8:
                candidates = np.flatnonzero(user_segment == product_tier[product])
            else:
                candidates = np.arange(num_users)
            src.append(product)
            dst.append(users[rng.choice(candidates)])
    builder.add_edges("purchased", np.array(src), np.array(dst))

    # Brands are shared across tiers (weakly informative).
    builder.add_edges(
        "made-by",
        products,
        brands[rng.integers(0, num_brands, num_products)],
    )

    # Features: tier prototype + noise for products; segment prototype for
    # users; random for brands.
    dim = 24
    prototypes = rng.normal(size=(num_classes, dim)) * 2.0
    features = rng.normal(size=(builder.num_nodes, dim))
    features[products] += prototypes[product_tier] * 0.7
    features[users] += prototypes[user_segment] * 0.7

    labels = np.full(builder.num_nodes, -1, dtype=np.int64)
    labels[products] = product_tier
    return builder.finalize(features=features, labels=labels, num_classes=num_classes)


def main() -> None:
    graph = build_ecommerce_graph(seed=0)
    print(f"custom graph: {graph}")
    split = make_transductive_split(
        graph, "product", train_per_class=25, val_per_class=10, rng=1
    )
    dataset = Dataset("ecommerce", graph, "product", split)

    for model in (
        WidenClassifier(seed=0, dim=24, num_wide=8, num_deep=6),
        GraphSAGE(seed=0, hidden=24),
    ):
        model.fit(graph, split.train, epochs=15)
        predictions = model.predict(split.test)
        score = micro_f1(graph.labels[split.test], predictions)
        print(f"{model.name:<10} demand-tier micro-F1: {score:.4f}")


if __name__ == "__main__":
    main()
