"""Quickstart: train WIDEN on an ACM-like heterogeneous graph.

Demonstrates the three-step workflow every example follows:

1. build (or load) a heterogeneous graph dataset,
2. train WIDEN semi-supervised,
3. evaluate micro-F1 on held-out test nodes.

Run:  python examples/quickstart.py
"""

from repro.core import WidenClassifier
from repro.datasets import make_acm
from repro.eval import micro_f1


def main() -> None:
    # An ACM-like academic graph: papers (labeled by research area),
    # authors, and subjects, with typed edges.
    dataset = make_acm(seed=0)
    graph = dataset.graph
    print(f"dataset: {dataset.name}  {graph}")
    print(f"node types: {graph.node_type_names}")
    print(f"edge types: {graph.edge_type_names}")

    # WIDEN with reproduction-scale hyperparameters (see WidenConfig for the
    # full knob list: wide/deep sample sizes, downsampling thresholds, ...).
    model = WidenClassifier(seed=0, dim=32, num_wide=10, num_deep=8)
    model.fit(graph, dataset.split.train, epochs=20)
    print(f"trained {model.num_parameters()} parameters "
          f"in {sum(model.epoch_seconds):.1f}s")
    drops = model.trainer.history
    print(f"active downsampling dropped {sum(drops.wide_drops)} wide and "
          f"{sum(drops.deep_drops)} deep neighbors during training")

    predictions = model.predict(dataset.split.test)
    score = micro_f1(graph.labels[dataset.split.test], predictions)
    print(f"test micro-F1: {score:.4f}")


if __name__ == "__main__":
    main()
