"""The socket lane: framing, liveness, and kill -9 fault tolerance.

Four layers of coverage, cheapest first.  Framing is tested over plain
``socketpair`` — dribbled partial reads, oversized payload rejection on
both sides, EOF inside a frame vs. between frames.  The transport protocol
is tested against stub TCP servers — out-of-order replies matched by
sequence number, a mid-stream reset becoming a typed error ``Reply``
rather than a hang, a hung-but-connected server tripping the heartbeat
detector.  The :class:`MutationLog` is tested as a data structure —
bounding, per-shard horizons, loud refusal past them.  Finally the
integration layer runs real loopback fleets: 1/2/4-shard socket routers
must answer an interleaved mutation/serve stream bit-identically to a
whole-graph server, and a SIGKILL'd worker must come back — typed
:class:`WorkerDown` (never a generic timeout), respawn from checkpoint,
mutation-log replay to the current graph version — with every
post-recovery answer exact.
"""

import pickle
import socket
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterRouter
from repro.cluster.net import (
    ConnectionClosed,
    FrameTooLargeError,
    MutationLog,
    MutationLogHorizonError,
    ShardWorkerServer,
    SocketTransport,
    WorkerDown,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
)
from repro.cluster.transport import (
    READY_SEQ,
    Envelope,
    Reply,
    registered_transports,
    validate_transport,
)
from repro.core import WidenClassifier
from repro.datasets import make_acm
from repro.serve import InferenceServer


@pytest.fixture(scope="module")
def acm():
    return make_acm(seed=0, scale=0.5)


@pytest.fixture(scope="module")
def checkpoint(acm, tmp_path_factory):
    model = WidenClassifier(seed=0, dim=16, num_wide=6, num_deep=2)
    model.fit(acm.graph, acm.split.train[:40], epochs=1)
    path = tmp_path_factory.mktemp("net") / "widen.npz"
    model.save(path)
    return path


def fresh_graph():
    return make_acm(seed=0, scale=0.5).graph


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_round_trip_and_partial_reads(self):
        """A frame dribbled one byte at a time still reassembles exactly."""
        import struct

        left, right = socket.socketpair()
        try:
            payload = bytes(range(256)) * 37
            # Send the frame in 1-byte dribbles from a thread so the
            # reader's partial-read loop is actually exercised.
            wire = struct.pack("!Q", len(payload)) + payload

            def dribble():
                for i in range(len(wire)):
                    left.sendall(wire[i:i + 1])

            writer = threading.Thread(target=dribble)
            writer.start()
            assert recv_frame(right) == payload
            writer.join()
        finally:
            left.close()
            right.close()

    def test_oversized_payload_rejected_on_both_sides(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(FrameTooLargeError) as excinfo:
                send_frame(left, b"x" * 100, max_frame_bytes=64)
            assert excinfo.value.size == 100 and excinfo.value.limit == 64
            # Receiver-side: the cap is checked before any allocation.
            send_frame(left, b"y" * 100, max_frame_bytes=1000)
            with pytest.raises(FrameTooLargeError):
                recv_frame(right, max_frame_bytes=64)
        finally:
            left.close()
            right.close()

    def test_clean_eof_vs_mid_frame_eof(self):
        left, right = socket.socketpair()
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)  # EOF at a frame boundary: clean goodbye
        right.close()

        left, right = socket.socketpair()
        import struct

        left.sendall(struct.pack("!Q", 50) + b"only-part")
        left.close()
        with pytest.raises(ConnectionResetError):
            recv_frame(right)  # EOF inside a frame: torn connection
        right.close()

    def test_message_round_trip(self):
        left, right = socket.socketpair()
        try:
            env = Envelope(kind="serve", payload={"nodes": np.arange(4)}, seq=3)
            send_message(left, env)
            back = recv_message(right)
            assert back.kind == "serve" and back.seq == 3
            np.testing.assert_array_equal(back.payload["nodes"], np.arange(4))
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# Transport protocol against stub TCP servers
# ----------------------------------------------------------------------


class StubServer:
    """A scriptable far side: answers the spawn handshake, then runs
    ``script(conn, envelopes_iter)`` on its own thread."""

    def __init__(self, script):
        self.script = script
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.address = self.listener.getsockname()[:2]
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        conn, _ = self.listener.accept()
        try:
            spawn = recv_message(conn)
            assert spawn.kind == "spawn"
            send_message(conn, Reply(seq=READY_SEQ, ok=True, payload={"pid": 0}))
            self.script(conn)
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self.listener.close()
        self.thread.join(timeout=10)


def make_transport(address, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.0)  # most tests: no heartbeats
    return SocketTransport(0, address, {"stub": True}, **kwargs)


class TestSocketTransportProtocol:
    def test_interleaved_replies_match_by_seq(self):
        """Replies delivered in reverse order still pair with their seqs."""

        def script(conn):
            envelopes = [recv_message(conn) for _ in range(5)]
            for env in reversed(envelopes):
                send_message(
                    conn, Reply(seq=env.seq, ok=True, payload=dict(env.payload))
                )
            # Hold the connection open until the client hangs up.
            try:
                recv_message(conn)
            except (ConnectionError, OSError):
                pass

        stub = StubServer(script)
        transport = make_transport(stub.address).start()
        try:
            transport.wait_ready(10.0)
            pendings = [
                transport.send(Envelope(kind="serve", payload={"i": i}))
                for i in range(5)
            ]
            for i, pending in enumerate(pendings):
                assert pending.result(10.0)["i"] == i
        finally:
            transport._stopping = True
            transport._close_socket()
            stub.close()

    def test_mid_stream_reset_is_error_reply_not_hang(self):
        """A cut wire fails outstanding *and* later requests with a typed
        WorkerDown, immediately — a gather never blocks on a dead shard."""

        def script(conn):
            recv_message(conn)  # swallow one envelope, then die abruptly
            conn.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
            conn.close()

        downs = []
        stub = StubServer(script)
        transport = make_transport(
            stub.address, on_down=lambda s, r, d: downs.append((s, r))
        ).start()
        try:
            transport.wait_ready(10.0)
            pending = transport.send(Envelope(kind="serve", payload={"i": 0}))
            with pytest.raises(WorkerDown) as excinfo:
                pending.result(10.0)
            assert excinfo.value.reason in ("connection_reset", "send_failed")
            assert transport.is_down
            # Later sends fail fast with the same typed error.
            with pytest.raises(WorkerDown):
                transport.send(Envelope(kind="serve", payload={"i": 1})).result(1.0)
            assert downs and downs[0][0] == 0
        finally:
            transport._stopping = True
            transport._close_socket()
            stub.close()

    def test_hung_server_trips_heartbeat_detector(self):
        """A connected-but-silent far side is down, not slow: unanswered
        heartbeats produce WorkerDown(heartbeat_missed) in bounded time."""

        def script(conn):
            time.sleep(30)  # never reads, never replies

        downs = []
        stub = StubServer(script)
        transport = make_transport(
            stub.address,
            heartbeat_interval=0.05,
            heartbeat_misses=2,
            on_down=lambda s, r, d: downs.append(r),
        ).start()
        try:
            transport.wait_ready(10.0)
            deadline = time.perf_counter() + 10.0
            while not downs and time.perf_counter() < deadline:
                time.sleep(0.02)
            assert transport.is_down
            assert transport.down_exception.reason == "heartbeat_missed"
            assert downs == ["heartbeat_missed"]
        finally:
            transport._stopping = True
            transport._close_socket()
            stub.close()

    def test_spawn_failure_surfaces_at_wait_ready(self):
        """An engine that cannot build reports through the READY reply."""

        def run(listener):
            conn, _ = listener.accept()
            recv_message(conn)
            send_message(
                conn,
                Reply(
                    seq=READY_SEQ,
                    ok=False,
                    error={"type": "ValueError", "message": "bad checkpoint",
                           "traceback": ""},
                ),
            )
            conn.close()

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        thread = threading.Thread(target=run, args=(listener,), daemon=True)
        thread.start()
        transport = make_transport(listener.getsockname()[:2]).start()
        try:
            with pytest.raises(Exception, match="bad checkpoint"):
                transport.wait_ready(10.0)
        finally:
            transport._stopping = True
            transport._close_socket()
            listener.close()
            thread.join(timeout=10)

    def test_connect_failure_is_typed(self):
        """Nothing listening: WorkerDown(connect_failed), not ECONNREFUSED."""
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()[:2]
        probe.close()  # port now (very likely) unbound
        transport = make_transport(dead, connect_timeout=0.3)
        with pytest.raises(WorkerDown) as excinfo:
            transport.start()
        assert excinfo.value.reason == "connect_failed"


# ----------------------------------------------------------------------
# MutationLog
# ----------------------------------------------------------------------


class TestMutationLog:
    def test_bounded_with_per_shard_horizon(self):
        log = MutationLog(capacity=2)
        log.append(1, "add_nodes", {0: "c1", 1: "c1b"})
        log.append(2, "add_edges", {1: "c2"})
        log.append(3, "add_nodes", {0: "c3"})  # evicts v1 (shards 0 and 1)
        assert len(log) == 2
        # Shard 0's baseline at v0 predates its horizon (v1 was evicted).
        with pytest.raises(MutationLogHorizonError) as excinfo:
            log.commands_since(0, 0)
        assert excinfo.value.horizon == 1
        # A baseline at the horizon itself is fine: nothing missing.
        assert [(v, c) for v, _, c in log.commands_since(0, 1)] == [(3, "c3")]
        # Shard 2 never appeared in any entry: nothing to replay, no error.
        assert log.commands_since(2, 0) == []

    def test_commands_since_filters_by_shard_and_version(self):
        log = MutationLog(capacity=10)
        log.append(1, "add_nodes", {0: "a", 1: "b"})
        log.append(2, "add_edges", {1: "c"})
        log.append(3, "add_edges", {0: "d"})
        assert [c for _, _, c in log.commands_since(0, 0)] == ["a", "d"]
        assert [c for _, _, c in log.commands_since(0, 1)] == ["d"]
        assert [c for _, _, c in log.commands_since(1, 0)] == ["b", "c"]
        assert log.commands_since(1, 3) == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MutationLog(capacity=0)


# ----------------------------------------------------------------------
# Eager transport validation
# ----------------------------------------------------------------------


class TestTransportValidation:
    def test_unknown_transport_lists_the_menu(self, checkpoint):
        with pytest.raises(ValueError) as excinfo:
            ClusterRouter.from_checkpoint(
                checkpoint, fresh_graph(), 2, transport="tcp"
            )
        message = str(excinfo.value)
        for name in registered_transports():
            assert name in message
        assert "tcp" in message

    def test_unknown_mode_is_loud(self, checkpoint):
        with pytest.raises(ValueError, match="mode"):
            ClusterRouter.from_checkpoint(
                checkpoint, fresh_graph(), 2, mode="fancy"
            )

    def test_validate_transport_accepts_registered(self):
        for name in registered_transports():
            validate_transport(name)  # must not raise

    def test_workers_require_socket_transport(self, checkpoint):
        with pytest.raises(ValueError, match="socket"):
            ClusterRouter.from_checkpoint(
                checkpoint, fresh_graph(), 2, transport="inline",
                workers=["127.0.0.1:1", "127.0.0.1:2"],
            )


# ----------------------------------------------------------------------
# Integration: loopback fleets
# ----------------------------------------------------------------------


def run_stream(target):
    """Deterministic interleaving of mutations and serves (the exactness
    contract shared with test_transport.py)."""
    dim = target.graph.features.shape[1]
    probe = np.random.default_rng(11).choice(200, size=8, replace=False)
    outputs = [target.embed(probe)]
    first = target.add_nodes("paper", features=np.full((2, dim), 0.3))
    target.add_edges("paper-author", [int(first[0]), int(first[1])], [1, 3])
    outputs.append(target.embed(np.append(probe, first)))
    target.add_edges("paper-subject", [int(first[0]), 5], [7, 9])
    second = target.add_nodes("paper", features=np.full((1, dim), -0.2))
    target.add_edges("paper-author", [int(second[0])], [4])
    outputs.append(target.embed(np.append(probe, second)))
    outputs.append(target.classify(probe))
    return outputs


@pytest.fixture(scope="module")
def stream_reference(checkpoint):
    graph = fresh_graph()
    server = InferenceServer(
        WidenClassifier.load(checkpoint, graph=graph), graph, seed=7
    )
    return run_stream(server)


def loopback_fleet(checkpoint, num_shards, **kwargs):
    """A socket router over in-process background worker servers."""
    servers = [
        ShardWorkerServer(announce=False) for _ in range(num_shards)
    ]
    addresses = ["%s:%d" % server.start_background() for server in servers]
    router = ClusterRouter.from_checkpoint(
        checkpoint, fresh_graph(), num_shards,
        transport="socket", workers=addresses, seed=7, **kwargs
    )
    return router, servers


class TestSocketFleetExactness:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_interleaved_stream_bit_identical(
        self, checkpoint, stream_reference, num_shards
    ):
        router, servers = loopback_fleet(checkpoint, num_shards)
        try:
            got = run_stream(router)
        finally:
            router.close()
            for server in servers:
                server.close()
        assert len(got) == len(stream_reference)
        for ours, want in zip(got, stream_reference):
            np.testing.assert_array_equal(ours, want)

    def test_fleet_metrics_exposed(self, checkpoint):
        from repro.obs import SLOTarget

        router, servers = loopback_fleet(
            checkpoint, 2, slo_target=SLOTarget(latency_threshold=1.0)
        )
        try:
            run_stream(router)
            text = router.render_prometheus()
            assert "fleet_workers_connected 2" in text
            assert 'fleet_worker_connected{shard="0"} 1' in text
            report = router.slo_report()
            assert report["fleet"]["worker_down_events"] == []
            assert report["fleet"]["mutation_log"]["entries"] == 5
        finally:
            router.close()
            for server in servers:
                server.close()


# ----------------------------------------------------------------------
# Integration: kill -9 and recover
# ----------------------------------------------------------------------


class TestKillRecover:
    def test_sigkill_recovers_bit_identical(self, checkpoint):
        """The tentpole contract: SIGKILL a worker mid-stream; the fleet
        detects a typed WorkerDown, respawns from checkpoint + plan,
        replays the mutation log, and every later answer is exact."""
        graph = fresh_graph()
        single = InferenceServer(
            WidenClassifier.load(checkpoint, graph=graph), graph, seed=7
        )
        router = ClusterRouter.from_checkpoint(
            checkpoint, fresh_graph(), 2, transport="socket", seed=7
        )
        try:
            dim = router.graph.features.shape[1]
            probe = np.random.default_rng(11).choice(200, size=8, replace=False)
            np.testing.assert_array_equal(
                router.embed(probe), single.embed(probe)
            )
            for target in (router, single):
                first = target.add_nodes("paper", features=np.full((2, dim), 0.3))
                target.add_edges(
                    "paper-author", [int(first[0]), int(first[1])], [1, 3]
                )

            router.shard_registry.kill(0)
            time.sleep(0.05)
            nodes = np.append(probe, first)
            np.testing.assert_array_equal(
                router.embed(nodes), single.embed(nodes)
            )

            summary = router.fleet.summary()
            events = summary["worker_down_events"]
            assert events and events[0]["shard"] == 0
            assert events[0]["reason"] in ("connection_reset", "send_failed")
            recoveries = summary["recoveries"]
            assert [r["mode"] for r in recoveries] == ["replay"]
            assert recoveries[0]["replayed_commands"] == 2
            assert recoveries[0]["target_version"] == router.workers[0].spec.graph.version
            assert router.workers[0].respawns == 1

            # Mutations after recovery stay exact (mirror and engine agree).
            for target in (router, single):
                second = target.add_nodes(
                    "paper", features=np.full((1, dim), -0.2)
                )
            nodes = np.append(probe, second)
            np.testing.assert_array_equal(
                router.embed(nodes), single.embed(nodes)
            )

            text = router.render_prometheus()
            assert 'fleet_worker_down_total' in text
            assert 'fleet_reconnects_total{shard="0"} 1' in text
            assert 'shard_errors_total' in text
        finally:
            router.close()

    def test_kill_during_mutation_applies_exactly_once(self, checkpoint):
        """A worker killed before a mutation fan-out: the command is in the
        log before the send, so recovery replays it exactly once — no
        double-apply, no loss."""
        graph = fresh_graph()
        single = InferenceServer(
            WidenClassifier.load(checkpoint, graph=graph), graph, seed=7
        )
        router = ClusterRouter.from_checkpoint(
            checkpoint, fresh_graph(), 2, transport="socket", seed=7
        )
        try:
            dim = router.graph.features.shape[1]
            probe = np.random.default_rng(3).choice(150, size=6, replace=False)
            router.embed(probe), single.embed(probe)

            router.shard_registry.kill(1)
            time.sleep(0.05)
            for target in (router, single):
                added = target.add_nodes(
                    "paper", features=np.full((2, dim), 0.7)
                )
            nodes = np.append(probe, added)
            np.testing.assert_array_equal(
                router.embed(nodes), single.embed(nodes)
            )
            modes = [
                r["mode"] for r in router.fleet.summary()["recoveries"]
            ]
            assert modes == ["replay"]
        finally:
            router.close()

    def test_log_horizon_forces_loud_replan(self, checkpoint):
        """A worker behind the bounded log's horizon is never served stale:
        recovery refuses exact replay, warns, and rebuilds from the current
        plan — counted as a rebuild, flagged as mode=replan."""
        router = ClusterRouter.from_checkpoint(
            checkpoint, fresh_graph(), 2, transport="socket", seed=7,
            mutation_log_capacity=1,
        )
        try:
            dim = router.graph.features.shape[1]
            probe = np.random.default_rng(5).choice(150, size=6, replace=False)
            router.embed(probe)
            router.add_nodes("paper", features=np.full((2, dim), 0.3))
            router.shard_registry.kill(0)
            time.sleep(0.05)
            with pytest.warns(RuntimeWarning, match="horizon"):
                second = router.add_nodes(
                    "paper", features=np.full((1, dim), -0.2)
                )
            summary = router.fleet.summary()
            assert "replan" in [r["mode"] for r in summary["recoveries"]]
            text = router.render_prometheus()
            assert 'fleet_rebuilds_total' in text
            # Post-replan the shard serves the *current* graph,
            # deterministically.
            nodes = np.append(probe, second)
            first_pass = router.embed(nodes)
            np.testing.assert_array_equal(first_pass, router.embed(nodes))
            assert np.isfinite(np.asarray(first_pass)).all()
        finally:
            router.close()
