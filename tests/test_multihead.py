"""Tests for the multi-head attention extension."""

import numpy as np
import pytest

from repro.core import WidenConfig, WidenModel, WidenTrainer
from repro.datasets import make_acm
from repro.nn import QueryAttention
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def acm():
    return make_acm(seed=0)


class TestMultiHeadQueryAttention:
    def test_single_head_unchanged(self, rng):
        att = QueryAttention(8, num_heads=1, rng=0)
        packs = Tensor(rng.normal(size=(5, 8)))
        out, weights = att(packs[0], packs)
        assert out.shape == (8,)
        assert weights.data.sum() == pytest.approx(1.0)

    def test_multi_head_shapes(self, rng):
        att = QueryAttention(8, num_heads=4, rng=0)
        packs = Tensor(rng.normal(size=(5, 8)))
        out, weights = att(packs[0], packs)
        assert out.shape == (8,)
        assert weights.shape == (5,)
        # Mean over per-head simplex weights is still a simplex.
        assert weights.data.sum() == pytest.approx(1.0)
        assert (weights.data >= 0).all()

    def test_heads_differ_from_single(self, rng):
        packs = Tensor(rng.normal(size=(5, 8)))
        single, _ = QueryAttention(8, num_heads=1, rng=0)(packs[0], packs)
        multi, _ = QueryAttention(8, num_heads=2, rng=0)(packs[0], packs)
        assert not np.allclose(single.data, multi.data)

    def test_gradients_flow(self, rng):
        att = QueryAttention(8, num_heads=2, rng=0)
        packs = Tensor(rng.normal(size=(5, 8)), requires_grad=True)
        out, _ = att(packs[0], packs)
        out.sum().backward()
        assert att.w_query.grad is not None
        assert packs.grad is not None

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            QueryAttention(8, num_heads=3)
        with pytest.raises(ValueError):
            QueryAttention(8, num_heads=0)


class TestMultiHeadWiden:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WidenConfig(dim=32, num_heads=5)
        assert WidenConfig(dim=32, num_heads=4).num_heads == 4

    def test_multi_head_widen_trains(self, acm):
        config = WidenConfig(dim=16, num_wide=6, num_deep=5, num_deep_walks=1,
                             num_heads=2, learning_rate=1e-2)
        graph = acm.graph
        model = WidenModel(
            graph.features.shape[1], graph.num_edge_types_with_loops,
            graph.num_classes, config, seed=0,
        )
        trainer = WidenTrainer(model, graph, config, seed=0)
        history = trainer.fit(acm.split.train[:48], epochs=3)
        assert history.losses[-1] < history.losses[0]
        # Downsampler still receives one weight per pack.
        state = trainer.store.get(int(acm.split.train[0]))
        assert state.prev_wide_attention is None or (
            state.prev_wide_attention.shape == (len(state.wide) + 1,)
        )
