"""The transport boundary: envelopes, replies, and cross-transport exactness.

Two layers of coverage.  The protocol layer is tested with stub engines —
FIFO delivery, out-of-order gathers, error envelopes, timeouts, startup
failure.  The integration layer is the satellite contract: an interleaved
stream of mutations and embeds must produce bit-identical answers through
the ``inline``, ``thread``, and ``mp`` transports, and all three must match
a whole-graph :class:`InferenceServer` replaying the same stream.  Because
every mutation is a serializable planner command applied on both sides of
the wire, exactness here proves the router-side mirror and the engine-side
spec never drift.
"""

import pickle
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    Envelope,
    InlineTransport,
    MpTransport,
    Reply,
    ShardError,
    ShardTimeoutError,
    ThreadTransport,
)
from repro.cluster.transport import error_info
from repro.core import WidenClassifier
from repro.datasets import make_acm
from repro.serve import InferenceServer

TRANSPORTS = ["inline", "thread", "mp"]


@pytest.fixture(scope="module")
def acm():
    return make_acm(seed=0, scale=0.5)


@pytest.fixture(scope="module")
def checkpoint(acm, tmp_path_factory):
    """A reach-2 model: cheap enough to rebuild per mp worker process."""
    model = WidenClassifier(seed=0, dim=16, num_wide=6, num_deep=2)
    model.fit(acm.graph, acm.split.train[:40], epochs=1)
    path = tmp_path_factory.mktemp("transport") / "widen.npz"
    model.save(path)
    return path


def fresh_graph():
    return make_acm(seed=0, scale=0.5).graph


def fresh_single_server(checkpoint):
    graph = fresh_graph()
    classifier = WidenClassifier.load(checkpoint, graph=graph)
    return InferenceServer(classifier, graph, seed=7)


def fresh_router(checkpoint, num_shards, transport):
    return ClusterRouter.from_checkpoint(
        checkpoint, fresh_graph(), num_shards, transport=transport, seed=7
    )


# ----------------------------------------------------------------------
# Protocol layer: stub engines, no model involved
# ----------------------------------------------------------------------


class EchoEngine:
    """Replies with its envelope's payload; records the arrival order."""

    def __init__(self) -> None:
        self.seen = []

    def handle(self, envelope: Envelope) -> Reply:
        self.seen.append((envelope.kind, envelope.seq))
        if envelope.kind == "boom":
            raise KeyError("engine exploded")
        if envelope.kind == "nap":
            time.sleep(envelope.payload["seconds"])
        return Reply(seq=envelope.seq, ok=True, payload=dict(envelope.payload))


class TestProtocol:
    def test_envelope_and_reply_pickle_round_trip(self):
        env = Envelope(kind="serve", payload={"nodes": np.arange(3)}, seq=9)
        back = pickle.loads(pickle.dumps(env))
        assert back.kind == "serve" and back.seq == 9
        np.testing.assert_array_equal(back.payload["nodes"], np.arange(3))
        reply = Reply(seq=9, ok=False, error=error_info(ValueError("bad")))
        back = pickle.loads(pickle.dumps(reply))
        assert back.error["type"] == "ValueError"
        assert "bad" in back.error["message"]
        assert "Traceback" in back.error["traceback"] or back.error["traceback"]

    @pytest.mark.parametrize("make", [
        lambda: InlineTransport(0, EchoEngine),
        lambda: ThreadTransport(0, EchoEngine),
    ])
    def test_fifo_order_and_out_of_order_gather(self, make):
        transport = make()
        transport.start()
        try:
            transport.wait_ready(10.0)
            pendings = [
                transport.send(Envelope(kind="serve", payload={"i": i}))
                for i in range(6)
            ]
            # Gather in reverse — replies must still pair with their seqs.
            for i in reversed(range(6)):
                assert pendings[i].result(10.0)["i"] == i
        finally:
            transport.stop()

    def test_error_becomes_shard_error_with_remote_type(self):
        transport = ThreadTransport(3, EchoEngine)
        transport.start()
        try:
            transport.wait_ready(10.0)
            pending = transport.send(Envelope(kind="boom"))
            with pytest.raises(ShardError) as excinfo:
                pending.result(10.0)
            assert excinfo.value.shard_id == 3
            assert "KeyError" in str(excinfo.value)
            # The stream survives the error: the next envelope still works.
            assert transport.send(
                Envelope(kind="serve", payload={"i": 1})
            ).result(10.0)["i"] == 1
        finally:
            transport.stop()

    def test_slow_reply_times_out(self):
        transport = ThreadTransport(0, EchoEngine)
        transport.start()
        try:
            transport.wait_ready(10.0)
            pending = transport.send(
                Envelope(kind="nap", payload={"seconds": 0.5})
            )
            with pytest.raises(ShardTimeoutError):
                pending.result(0.01)
            # A patient gather afterwards still sees the reply.
            assert pending.result(10.0)["seconds"] == 0.5
        finally:
            transport.stop()

    def test_failing_engine_factory_surfaces_at_wait_ready(self):
        def factory():
            raise RuntimeError("no such shard")

        transport = ThreadTransport(0, factory)
        transport.start()
        with pytest.raises(RuntimeError, match="no such shard"):
            transport.wait_ready(10.0)
        transport.stop()

    def test_inline_round_trips_the_wire_format(self):
        """Inline is a *replay* of the wire protocol: anything unpicklable
        must fail on inline exactly as it would on mp."""
        transport = InlineTransport(0, EchoEngine)
        transport.start()
        transport.wait_ready()
        with pytest.raises(Exception):
            transport.send(
                Envelope(kind="serve", payload={"fn": lambda: None})
            )
        transport.stop()


# ----------------------------------------------------------------------
# Integration layer: interleaved mutation/embed streams, all transports
# ----------------------------------------------------------------------


def run_stream(target):
    """A deterministic interleaving of mutations and serves.

    Adds nodes and boundary-prone edges *between* embed calls so each
    serve observes a different graph version; collected outputs must be
    bit-identical however the stream is executed.
    """
    dim = target.graph.features.shape[1]
    probe = np.random.default_rng(11).choice(200, size=8, replace=False)
    outputs = [target.embed(probe)]
    first = target.add_nodes("paper", features=np.full((2, dim), 0.3))
    target.add_edges("paper-author", [int(first[0]), int(first[1])], [1, 3])
    outputs.append(target.embed(np.append(probe, first)))
    target.add_edges("paper-subject", [int(first[0]), 5], [7, 9])
    second = target.add_nodes("paper", features=np.full((1, dim), -0.2))
    target.add_edges("paper-author", [int(second[0])], [4])
    outputs.append(target.embed(np.append(probe, second)))
    outputs.append(target.classify(probe))
    return outputs


@pytest.fixture(scope="module")
def stream_reference(checkpoint):
    return run_stream(fresh_single_server(checkpoint))


class TestCrossTransportExactness:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_interleaved_stream_bit_identical(
        self, checkpoint, stream_reference, transport
    ):
        """The satellite contract: mutations and embeds interleaved through
        every transport answer exactly what one whole-graph server does."""
        with fresh_router(checkpoint, 2, transport) as router:
            got = run_stream(router)
        assert len(got) == len(stream_reference)
        for ours, want in zip(got, stream_reference):
            np.testing.assert_array_equal(ours, want)

    def test_thread_and_mp_agree_with_inline_post_mutation(self, checkpoint):
        """Three routers consume the same stream concurrently-shaped work;
        their final answers must agree bit-for-bit with each other."""
        finals = {}
        for transport in TRANSPORTS:
            with fresh_router(checkpoint, 2, transport) as router:
                run_stream(router)
                probe = np.arange(16)
                finals[transport] = router.embed(probe)
        np.testing.assert_array_equal(finals["thread"], finals["inline"])
        np.testing.assert_array_equal(finals["mp"], finals["inline"])

    def test_mp_four_shards_boundary_nodes_exact(self, checkpoint):
        single = fresh_single_server(checkpoint)
        with fresh_router(checkpoint, 4, "mp") as router:
            picked = []
            for worker in router.workers:
                spec = worker.spec
                crossers = spec.owned[spec.touches_halo[spec.owned]]
                picked.extend(int(n) for n in crossers[:2])
            probe = np.asarray(picked, dtype=np.int64)
            assert probe.size > 0, "partition produced no boundary nodes"
            np.testing.assert_array_equal(
                router.embed(probe), single.embed(probe)
            )

    def test_serving_state_pull_crosses_every_transport(self, checkpoint):
        for transport in TRANSPORTS:
            with fresh_router(checkpoint, 2, transport) as router:
                run_stream(router)
                for worker in router.workers:
                    state = worker.pull_serving_state().result(60.0)[
                        "serving_state"
                    ]
                    # Selective refresh: a shard outside an edge's closure
                    # never sees that bump, so it may lag the global graph.
                    assert 0 < state["graph_version"] <= router.graph.version
                    assert state["graph_version"] == worker.spec.graph.version
                    assert state["version_base"] >= 0

    def test_mp_error_envelope_keeps_worker_alive(self, checkpoint):
        with fresh_router(checkpoint, 1, "mp") as router:
            worker = router.workers[0]
            bad = worker.request(router.graph.num_nodes + 50, "embed")
            with pytest.raises(ShardError):
                bad.result(60.0)
            # The process survived; a good request still round-trips.
            value = worker.request(0, "embed").result(60.0)
            assert np.asarray(value).ndim == 1

    def test_mp_replay_matches_inline_summary_counts(self, checkpoint, acm):
        from repro.serve import make_trace

        trace = make_trace(acm.split.test[:20], 24, rate=5000.0, rng=2)
        counts = {}
        for transport in ("inline", "mp"):
            with fresh_router(checkpoint, 2, transport) as router:
                summary = router.replay(trace)
                counts[transport] = (
                    summary["requests"],
                    summary["halo_requests"],
                    tuple(s["requests"] for s in summary["shards"]),
                )
                assert summary["transport"] == transport
        assert counts["mp"] == counts["inline"]
