"""CSR segment kernels (``gather_mul``/``sddmm``/``segment_softmax``/
``segment_matmul``), the flat-layout helpers in ``repro.core.packing``, and
the per-host kernel-selection table (:mod:`repro.tensor.kernels`).

The kernels' contract is twofold: analytic backwards must match central
differences (every op, every pairing mode), and the segment formulation
must reproduce the padded ``masked_softmax`` grids bit-for-bit on the
valid slots — the sparse forward path's 1e-10 equivalence guarantee
(:mod:`tests.test_sparse_forward`) rests on these unit facts.
"""

import json

import numpy as np
import pytest

from repro.core.packing import (
    causal_pairs,
    flat_slot_indices,
    segment_ids,
    segment_offsets,
)
from repro.tensor import functional as F
from repro.tensor import kernels, ops
from repro.tensor.tensor import Tensor
from tests.helpers import check_gradients

OFFSETS = np.array([0, 3, 4, 7])  # three segments: lengths 3, 1, 3


# ----------------------------------------------------------------------
# Gradient checks: analytic backward vs central differences
# ----------------------------------------------------------------------


class TestKernelGradients:
    def test_gather_mul(self, rng):
        index = np.array([0, 2, 1, 2, 0])

        def fn(a, edges):
            out = ops.gather_mul(a, index, edges)
            return (out * out).sum()

        check_gradients(
            fn, [rng.normal(size=(3, 4)), rng.normal(size=(5, 4))]
        )

    def test_gather_mul_with_dropout_mask(self, rng):
        index = np.array([1, 1, 0])
        mask = rng.integers(0, 2, size=(3, 4)).astype(float) * 2.0

        def fn(a, edges):
            out = ops.gather_mul(a, index, edges, dropout_mask=mask)
            return (out * out).sum()

        check_gradients(
            fn, [rng.normal(size=(2, 4)), rng.normal(size=(3, 4))]
        )

    def test_sddmm_identity_pairing(self, rng):
        rows = np.array([0, 2, 1, 0, 2])

        def fn(a, b):
            return (ops.sddmm(a, b, rows) ** 2).sum()

        check_gradients(
            fn, [rng.normal(size=(3, 4)), rng.normal(size=(5, 4))]
        )

    def test_sddmm_explicit_cols(self, rng):
        rows = np.array([0, 0, 1, 2, 2, 2])
        cols = np.array([1, 3, 0, 2, 3, 1])

        def fn(a, b):
            return (ops.sddmm(a, b, rows, cols) ** 2).sum()

        check_gradients(
            fn, [rng.normal(size=(3, 4)), rng.normal(size=(4, 4))]
        )

    def test_segment_softmax(self, rng):
        def fn(a):
            out = ops.segment_softmax(a, OFFSETS)
            return (out * out).sum()

        check_gradients(fn, [rng.normal(size=7)])

    def test_segment_softmax_with_scale(self, rng):
        def fn(a):
            out = ops.segment_softmax(a, OFFSETS, scale=2.0)
            return (out * out).sum()

        check_gradients(fn, [rng.normal(size=7)])

    def test_segment_matmul_identity_pairing(self, rng):
        def fn(weights, values):
            out = ops.segment_matmul(weights, values, None, OFFSETS)
            return (out * out).sum()

        check_gradients(
            fn, [rng.normal(size=7), rng.normal(size=(7, 4))]
        )

    def test_segment_matmul_explicit_cols(self, rng):
        cols = np.array([0, 1, 2, 2, 0, 1, 2])

        def fn(weights, values):
            out = ops.segment_matmul(weights, values, cols, OFFSETS)
            return (out * out).sum()

        check_gradients(
            fn, [rng.normal(size=7), rng.normal(size=(3, 4))]
        )


# ----------------------------------------------------------------------
# Forward semantics vs the padded reference
# ----------------------------------------------------------------------


class TestKernelForward:
    def test_segment_softmax_sums_to_one_per_segment(self, rng):
        out = ops.segment_softmax(Tensor(rng.normal(size=7)), OFFSETS)
        starts = OFFSETS[:-1]
        sums = np.add.reduceat(out.data, starts)
        np.testing.assert_allclose(sums, np.ones(3), atol=1e-12)

    def test_segment_softmax_matches_masked_softmax(self, rng):
        lengths = np.diff(OFFSETS)
        width = int(lengths.max())
        flat = rng.normal(size=7)
        padded = np.zeros((3, width))
        mask = np.full((3, width), float("-inf"))
        for s in range(3):
            padded[s, : lengths[s]] = flat[OFFSETS[s] : OFFSETS[s + 1]]
            mask[s, : lengths[s]] = 0.0
        sparse = ops.segment_softmax(Tensor(flat), OFFSETS, scale=1.7)
        dense = F.masked_softmax(Tensor(padded), mask, scale=1.7)
        for s in range(3):
            np.testing.assert_array_equal(
                sparse.data[OFFSETS[s] : OFFSETS[s + 1]],
                dense.data[s, : lengths[s]],
            )
            np.testing.assert_array_equal(dense.data[s, lengths[s] :], 0.0)

    def test_sddmm_matches_dense_rowwise_dots(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(5, 4))
        rows = np.array([2, 0, 1, 2, 0])
        out = ops.sddmm(Tensor(a), Tensor(b), rows)
        np.testing.assert_allclose(
            out.data, np.einsum("pd,pd->p", a[rows], b), atol=1e-15
        )

    def test_segment_matmul_matches_per_segment_weighted_sum(self, rng):
        weights = rng.normal(size=7)
        values = rng.normal(size=(7, 4))
        out = ops.segment_matmul(Tensor(weights), Tensor(values), None, OFFSETS)
        for s in range(3):
            lo, hi = OFFSETS[s], OFFSETS[s + 1]
            np.testing.assert_allclose(
                out.data[s], weights[lo:hi] @ values[lo:hi], atol=1e-14
            )

    def test_empty_segments_rejected(self, rng):
        bad = np.array([0, 3, 3, 7])  # middle segment empty: reduceat breaks
        with pytest.raises(ValueError):
            ops.segment_softmax(Tensor(rng.normal(size=7)), bad)

    def test_gather_mul_is_gather_times_edges(self, rng):
        a = rng.normal(size=(3, 4))
        edges = rng.normal(size=(5, 4))
        index = np.array([0, 2, 2, 1, 0])
        out = ops.gather_mul(Tensor(a), index, Tensor(edges))
        np.testing.assert_array_equal(out.data, a[index] * edges)


class TestKernelProfiling:
    def test_profiler_counts_and_flops_for_segment_ops(self, rng):
        from repro.obs import OpProfiler

        a = Tensor(rng.normal(size=(3, 4)))
        edges = Tensor(rng.normal(size=(7, 4)))
        index = np.array([0, 1, 2, 0, 1, 2, 0])
        with OpProfiler() as prof:
            packs = ops.gather_mul(a, index, edges)
            scores = ops.sddmm(packs, packs, np.arange(7))
            weights = ops.segment_softmax(scores, OFFSETS, scale=2.0)
            ops.segment_matmul(weights, packs, None, OFFSETS)
        for name in ("gather_mul", "sddmm", "segment_softmax",
                     "segment_matmul"):
            stat = prof.stats[name]
            assert stat.calls == 1
            assert stat.flops > 0, f"{name} has no FLOP estimate"
        # sddmm: one length-d dot per pair; segment_matmul: scale+add of a
        # length-d row per pair.
        assert prof.stats["sddmm"].flops == 2.0 * 7 * 4
        assert prof.stats["segment_matmul"].flops == 2.0 * 7 * 4


# ----------------------------------------------------------------------
# Flat-layout helpers in repro.core.packing
# ----------------------------------------------------------------------


class TestPackingHelpers:
    def test_segment_offsets_and_ids_roundtrip(self):
        lengths = np.array([3, 1, 3])
        offsets = segment_offsets(lengths)
        np.testing.assert_array_equal(offsets, OFFSETS)
        np.testing.assert_array_equal(
            segment_ids(offsets), np.array([0, 0, 0, 1, 2, 2, 2])
        )

    def test_causal_pairs_match_tril_grid(self):
        # Padded reference: row i of a segment [lo, hi) attends cols i..hi-1
        # (Θ masks tril(k=-1); information flows from the walk's end back).
        rows, cols, pair_offsets = causal_pairs(np.array([0, 2, 5]))
        want = []  # (row, col) in flat coordinates, row-major
        for lo, hi in ((0, 2), (2, 5)):
            for i in range(lo, hi):
                for j in range(i, hi):
                    want.append((i, j))
        np.testing.assert_array_equal(rows, [p[0] for p in want])
        np.testing.assert_array_equal(cols, [p[1] for p in want])
        # One softmax segment per flat row, each of length (hi - i).
        np.testing.assert_array_equal(np.diff(pair_offsets), [2, 1, 3, 2, 1])

    def test_flat_slot_indices_pick_valid_block_slots(self):
        lengths = np.array([2, 3])
        starts = np.array([0, 4])  # capacity-4 blocks
        indices, offsets = flat_slot_indices(lengths, starts)
        np.testing.assert_array_equal(indices, [0, 1, 4, 5, 6])
        np.testing.assert_array_equal(offsets, [0, 2, 5])


# ----------------------------------------------------------------------
# Per-host kernel-selection table
# ----------------------------------------------------------------------


class TestKernelTable:
    def make_table(self, **forward):
        return {
            "version": kernels.KERNEL_TABLE_VERSION,
            "host": kernels.host_fingerprint(),
            "scatter": {"sparse_min_rows": 123, "dense_max_cells": 456},
            "forward": {"sparse_min_waste": 0.25, **forward},
        }

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "table.json"
        kernels.save_table(self.make_table(), path)
        assert kernels.load_table(path) == self.make_table()

    def test_version_mismatch_and_garbage_ignored(self, tmp_path):
        path = tmp_path / "table.json"
        stale = self.make_table()
        stale["version"] = kernels.KERNEL_TABLE_VERSION + 1
        kernels.save_table(stale, path)
        assert kernels.load_table(path) is None
        path.write_text("not json {")
        assert kernels.load_table(path) is None
        assert kernels.load_table(tmp_path / "absent.json") is None

    def test_apply_table_installs_thresholds(self):
        before_scatter = ops.get_scatter_thresholds()
        before_forward = kernels.get_forward_selection()
        try:
            applied = kernels.apply_table(self.make_table())
            assert applied["scatter"] == {
                "sparse_min_rows": 123, "dense_max_cells": 456
            }
            assert applied["forward"] == {"sparse_min_waste": 0.25}
            assert ops.get_scatter_thresholds()["sparse_min_rows"] == 123
            assert kernels.get_forward_selection()["sparse_min_waste"] == 0.25
        finally:
            ops.set_scatter_thresholds(**before_scatter)
            kernels.set_forward_selection(**before_forward)

    def test_env_pinned_values_win_over_table(self, monkeypatch):
        monkeypatch.setattr(
            kernels, "_FORWARD_ENV_KEYS", {"sparse_min_waste"}
        )
        before = kernels.get_forward_selection()
        try:
            applied = kernels.apply_table(
                {"version": kernels.KERNEL_TABLE_VERSION,
                 "forward": {"sparse_min_waste": 0.9}}
            )
            assert "forward" not in applied
            assert kernels.get_forward_selection() == before
        finally:
            kernels.set_forward_selection(**before)

    def test_table_path_precedence(self, monkeypatch, tmp_path):
        monkeypatch.delenv(kernels.ENV_TABLE_PATH, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "cache"))
        assert kernels.table_path() == (
            tmp_path / "cache" / "repro" / "kernel_table.json"
        )
        monkeypatch.setenv(kernels.ENV_TABLE_PATH, str(tmp_path / "env.json"))
        assert kernels.table_path() == tmp_path / "env.json"
        assert kernels.table_path(tmp_path / "arg.json") == tmp_path / "arg.json"

    def test_auto_apply_survives_hand_edited_garbage(self, tmp_path):
        path = tmp_path / "table.json"
        broken = self.make_table()
        broken["forward"]["sparse_min_waste"] = 7.0  # out of [0, 1]
        path.write_text(json.dumps(broken))
        before = kernels.get_forward_selection()
        assert kernels.auto_apply(path) is None
        assert kernels.get_forward_selection() == before

    def test_set_forward_selection_validates_range(self):
        with pytest.raises(ValueError):
            kernels.set_forward_selection(sparse_min_waste=1.5)
