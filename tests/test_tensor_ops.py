"""Unit tests for the autograd engine's primitive operations.

Every op gets (a) a forward-value check against numpy and (b) a gradient
check against central differences via ``tests.helpers.check_gradients``.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor import ops
from tests.helpers import check_gradients


class TestElementwise:
    def test_add_forward(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        out = ops.add(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a + b)

    def test_add_grad(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        check_gradients(lambda x, y: (x + y).sum(), [a, b])

    def test_add_broadcast_grad(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        check_gradients(lambda x, y: (x + y).sum(), [a, b])

    def test_add_scalar_broadcast_grad(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(1, 1))
        check_gradients(lambda x, y: (x + y).sum(), [a, b])

    def test_sub_grad(self, rng):
        a, b = rng.normal(size=(2, 5)), rng.normal(size=(2, 5))
        check_gradients(lambda x, y: (x - y).sum(), [a, b])

    def test_mul_grad(self, rng):
        a, b = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        check_gradients(lambda x, y: (x * y).sum(), [a, b])

    def test_mul_broadcast_row(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(1, 4))
        check_gradients(lambda x, y: (x * y).sum(), [a, b])

    def test_div_grad(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.uniform(1.0, 2.0, size=(3, 4))
        check_gradients(lambda x, y: (x / y).sum(), [a, b])

    def test_neg_grad(self, rng):
        a = rng.normal(size=(4,))
        check_gradients(lambda x: (-x).sum(), [a])

    def test_power_grad(self, rng):
        a = rng.uniform(0.5, 2.0, size=(3, 3))
        check_gradients(lambda x: (x**3).sum(), [a])

    def test_exp_grad(self, rng):
        a = rng.normal(size=(3, 3))
        check_gradients(lambda x: ops.exp(x).sum(), [a])

    def test_log_grad(self, rng):
        a = rng.uniform(0.5, 3.0, size=(3, 3))
        check_gradients(lambda x: ops.log(x).sum(), [a])

    def test_sqrt_grad(self, rng):
        a = rng.uniform(0.5, 3.0, size=(4,))
        check_gradients(lambda x: ops.sqrt(x).sum(), [a])

    def test_tanh_grad(self, rng):
        a = rng.normal(size=(3, 3))
        check_gradients(lambda x: ops.tanh(x).sum(), [a])

    def test_sigmoid_forward_extremes(self):
        out = ops.sigmoid(Tensor(np.array([-1000.0, 0.0, 1000.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_sigmoid_grad(self, rng):
        a = rng.normal(size=(3, 3))
        check_gradients(lambda x: ops.sigmoid(x).sum(), [a])

    def test_relu_forward(self):
        out = ops.relu(Tensor(np.array([-2.0, 0.0, 3.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 3.0])

    def test_relu_grad(self, rng):
        # Keep values away from the kink so central differences are valid.
        a = rng.normal(size=(4, 4))
        a[np.abs(a) < 0.1] = 0.5
        check_gradients(lambda x: ops.relu(x).sum(), [a])

    def test_leaky_relu_grad(self, rng):
        a = rng.normal(size=(4, 4))
        a[np.abs(a) < 0.1] = 0.5
        check_gradients(lambda x: ops.leaky_relu(x, 0.2).sum(), [a])

    def test_maximum_forward(self):
        a = Tensor(np.array([1.0, 5.0, 2.0]))
        b = Tensor(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(ops.maximum(a, b).data, [3.0, 5.0, 2.0])

    def test_maximum_grad_routing(self, rng):
        a = rng.normal(size=(5,))
        b = rng.normal(size=(5,))
        # Avoid exact ties, where the subgradient is ambiguous.
        b = b + 0.321
        check_gradients(lambda x, y: ops.maximum(x, y).sum(), [a, b])


class TestReductions:
    def test_sum_all(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.sum(), [a])

    def test_sum_axis0(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.sum(axis=0).sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.sum(axis=1, keepdims=True).sum(), [a])

    def test_mean_all(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.mean(), [a])

    def test_mean_axis(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.mean(axis=1).sum(), [a])

    def test_max_forward(self, rng):
        a = rng.normal(size=(3, 4))
        out = ops.max(Tensor(a), axis=1)
        np.testing.assert_allclose(out.data, a.max(axis=1))

    def test_max_grad(self, rng):
        a = rng.normal(size=(3, 4))  # distinct values almost surely
        check_gradients(lambda x: ops.max(x, axis=1).sum(), [a])

    def test_max_grad_ties_split(self):
        a = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        ops.max(a, axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestLinearAlgebra:
    def test_matmul_forward(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        out = ops.matmul(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a @ b)

    def test_matmul_grad(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_vector_matrix(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4, 5))
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_matrix_vector(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_transpose_grad(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: (x.T * 2.0).sum(), [a])

    def test_transpose_axes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = ops.transpose(Tensor(a), (2, 0, 1))
        assert out.shape == (4, 2, 3)
        check_gradients(lambda x: ops.transpose(x, (2, 0, 1)).sum(), [a])

    def test_reshape_grad(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: (x.reshape(2, 6) * 3.0).sum(), [a])


class TestShapeOps:
    def test_concat_forward(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        out = ops.concat([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a, b]))

    def test_concat_grad(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        check_gradients(lambda x, y: (ops.concat([x, y], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1_grad(self, rng):
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(3, 5))
        check_gradients(lambda x, y: (ops.concat([x, y], axis=1) ** 2).sum(), [a, b])

    def test_stack_grad(self, rng):
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        check_gradients(lambda x, y: (ops.stack([x, y]) ** 2).sum(), [a, b])

    def test_take_row_grad(self, rng):
        a = rng.normal(size=(5, 3))
        check_gradients(lambda x: (x[2] ** 2).sum(), [a])

    def test_take_repeated_indices_accumulates(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        out = ops.take(a, np.array([0, 0, 1]))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[2.0, 2.0], [1.0, 1.0], [0.0, 0.0]])

    def test_embedding_lookup_grad(self, rng):
        weight = rng.normal(size=(6, 4))
        indices = np.array([1, 1, 3, 5])

        def fn(w):
            return (ops.embedding_lookup(w, indices) ** 2).sum()

        check_gradients(fn, [weight])

    def test_slice_grad(self, rng):
        a = rng.normal(size=(5, 3))
        check_gradients(lambda x: (ops.slice(x, 1, 4, axis=0) ** 2).sum(), [a])

    def test_slice_axis1(self, rng):
        a = rng.normal(size=(3, 6))
        out = ops.slice(Tensor(a), 2, 5, axis=1)
        np.testing.assert_allclose(out.data, a[:, 2:5])


class TestFusedGatherScatter:
    """The batched forward path's fused kernels (pad_gather / scatter_rows)."""

    def test_pad_gather_forward(self, rng):
        a = rng.normal(size=(5, 3))
        index = np.array([[0, 2, 0], [4, 1, 0]])
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        out = ops.pad_gather(Tensor(a), index, mask)
        assert out.shape == (2, 3, 3)
        np.testing.assert_allclose(out.data[0, 0], a[0])
        np.testing.assert_allclose(out.data[0, 2], 0.0)  # padded slot is zero
        np.testing.assert_allclose(out.data[1, 1], 0.0)

    def test_pad_gather_grad(self, rng):
        a = rng.normal(size=(6, 4))
        # Repeated indices must accumulate; padded slots must contribute 0.
        index = np.array([[0, 3, 3], [5, 0, 1]])
        mask = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 0.0]])
        check_gradients(
            lambda x: (ops.pad_gather(x, index, mask) ** 2).sum(), [a]
        )

    def test_pad_gather_padded_rows_get_no_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        index = np.array([[1, 2]])
        mask = np.array([[1.0, 0.0]])
        ops.pad_gather(a, index, mask).sum().backward()
        np.testing.assert_allclose(a.grad[2], 0.0)  # masked-out gather
        np.testing.assert_allclose(a.grad[1], 1.0)

    def test_scatter_rows_forward(self, rng):
        base = rng.normal(size=(5, 3))
        rows = rng.normal(size=(2, 3))
        index = np.array([1, 4])
        out = ops.scatter_rows(Tensor(base), index, Tensor(rows))
        np.testing.assert_allclose(out.data[1], rows[0])
        np.testing.assert_allclose(out.data[4], rows[1])
        np.testing.assert_allclose(out.data[0], base[0])
        np.testing.assert_allclose(base[1], base[1])  # base untouched

    def test_scatter_rows_grad(self, rng):
        base = rng.normal(size=(5, 3))
        rows = rng.normal(size=(2, 3))
        index = np.array([0, 3])
        check_gradients(
            lambda b, r: (ops.scatter_rows(b, index, r) ** 2).sum(),
            [base, rows],
        )

    def test_scatter_rows_replaced_base_rows_get_no_grad(self, rng):
        base = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        rows = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        ops.scatter_rows(base, np.array([2]), rows).sum().backward()
        np.testing.assert_allclose(base.grad[2], 0.0)  # overwritten row
        np.testing.assert_allclose(base.grad[0], 1.0)
        np.testing.assert_allclose(rows.grad, 1.0)

    def test_scatter_rows_shape_mismatch_rejected(self, rng):
        base = Tensor(rng.normal(size=(4, 3)))
        rows = Tensor(rng.normal(size=(2, 2)))
        with pytest.raises(ValueError):
            ops.scatter_rows(base, np.array([0, 1]), rows)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * 3.0 + a * 4.0
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [7.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        c = a + 1.0
        (b * c).backward(np.array([1.0]))
        # d/da (2a * (a+1)) = 4a + 2
        np.testing.assert_allclose(a.grad, [14.0])

    def test_no_grad_blocks_recording(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_on_non_scalar_needs_seed(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a * 2.0
        with pytest.raises(RuntimeError):
            out.backward()
        out.backward(np.ones((2, 2)))
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))

    def test_detach_cuts_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = (a.detach() * 3.0).sum()
        assert not out.requires_grad

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_deep_chain_no_recursion_error(self):
        # Topological sort is iterative; 5000-op chains must not blow the stack.
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(5000):
            out = out + 0.001
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [1.0])

    def test_zero_grad(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * 2.0).backward(np.array([1.0]))
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_item_and_shape_properties(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        assert a.shape == (2, 3)
        assert a.ndim == 2
        assert a.size == 6
        assert len(a) == 2
        scalar = Tensor(np.array(4.5))
        assert scalar.item() == pytest.approx(4.5)
        with pytest.raises(ValueError):
            a.item()

    def test_accumulate_grad_shape_mismatch_raises(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            a.accumulate_grad(np.ones((3, 3)))


class TestScatterThresholds:
    """Backend crossover tuning for the scatter-add backward."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        before = ops.get_scatter_thresholds()
        yield
        ops.set_scatter_thresholds(**before)

    def test_get_returns_a_copy(self):
        first = ops.get_scatter_thresholds()
        first["sparse_min_rows"] = -999
        assert ops.get_scatter_thresholds()["sparse_min_rows"] != -999

    def test_set_partial_updates_and_returns_active(self):
        active = ops.set_scatter_thresholds(sparse_min_rows=5)
        assert active["sparse_min_rows"] == 5
        active = ops.set_scatter_thresholds(dense_max_cells=100)
        assert active["sparse_min_rows"] == 5  # untouched by partial set
        assert active["dense_max_cells"] == 100

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ops.set_scatter_thresholds(sparse_min_rows=-1)
        with pytest.raises(ValueError):
            ops.set_scatter_thresholds(dense_max_cells=-1)

    def test_env_override_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCATTER_SPARSE_MIN_ROWS", "17")
        thresholds, env_keys = ops._scatter_thresholds_from_env()
        assert thresholds["sparse_min_rows"] == 17
        assert env_keys == {"sparse_min_rows"}
        monkeypatch.setenv("REPRO_SCATTER_SPARSE_MIN_ROWS", "many")
        with pytest.raises(ValueError, match="integer"):
            ops._scatter_thresholds_from_env()
        monkeypatch.setenv("REPRO_SCATTER_SPARSE_MIN_ROWS", "-3")
        with pytest.raises(ValueError, match=">= 0"):
            ops._scatter_thresholds_from_env()

    @pytest.mark.parametrize(
        "thresholds",
        [
            # Force np.add.at (the reference backend) for every size.
            dict(sparse_min_rows=10**9, dense_max_cells=0),
            # Force the dense one-hot gemm formulation.
            dict(sparse_min_rows=0, dense_max_cells=10**9),
            # Force the flat bincount formulation.
            dict(sparse_min_rows=0, dense_max_cells=0),
        ],
    )
    def test_backends_agree_with_reference(self, rng, thresholds):
        index = rng.integers(0, 6, size=(5, 4))
        grad = rng.normal(size=(5, 4, 3))
        weights = rng.normal(size=(5, 4))
        want = np.zeros((6, 3))
        np.add.at(
            want, index.ravel(),
            grad.reshape(-1, 3) * weights.ravel()[:, None],
        )
        ops.set_scatter_thresholds(**thresholds)
        got = ops._scatter_add_rows(6, index, grad, weights=weights)
        np.testing.assert_allclose(got, want, atol=1e-12)


class TestGradModeThreadLocal:
    """no_grad() scoping is per-thread (shard workers vs training loop)."""

    def test_no_grad_in_main_does_not_leak_to_worker(self):
        import threading

        from repro.tensor.tensor import is_grad_enabled

        seen = {}

        def worker():
            seen["enabled"] = is_grad_enabled()

        with no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["enabled"] is True

    def test_no_grad_in_worker_does_not_leak_to_main(self):
        import threading

        from repro.tensor.tensor import is_grad_enabled

        entered = threading.Event()
        release = threading.Event()

        def worker():
            with no_grad():
                entered.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5)
        try:
            assert is_grad_enabled() is True
            a = Tensor(np.ones(3), requires_grad=True)
            assert (a * 2).requires_grad  # main thread still records
        finally:
            release.set()
            thread.join()

    def test_no_grad_restores_on_exit(self):
        from repro.tensor.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
