"""Tests for WIDEN's message packaging and forward pass (Eqs. 1-7)."""

import numpy as np
import pytest

from repro.core import WidenConfig, WidenModel
from repro.core.relay import RelayRecipe
from repro.core.state import NeighborState, NeighborStateStore
from repro.datasets import make_acm
from repro.graph import sample_deep, sample_wide
from repro.graph.sampling import DeepNeighborSet


@pytest.fixture(scope="module")
def dataset():
    return make_acm(seed=0)


@pytest.fixture(scope="module")
def graph(dataset):
    return dataset.graph


def make_model(graph, **overrides):
    config = WidenConfig(dim=16, num_wide=5, num_deep=4, num_deep_walks=2, **overrides)
    return WidenModel(
        graph.features.shape[1],
        graph.num_edge_types_with_loops,
        graph.num_classes,
        config,
        seed=0,
    )


class TestPackWide:
    def test_shape_and_first_row_is_target(self, graph):
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        wide = sample_wide(graph, target, 5, rng=0)
        packs = model.pack_wide(target, wide, graph)
        assert packs.shape == (len(wide) + 1, 16)
        # Row 0 must be v_t ⊙ e_{t,t} with the self-loop edge embedding.
        v_t = graph.features[target] @ model.project.weight.data
        e_tt = model.edge_embedding.weight.data[graph.self_loop_type(target)]
        np.testing.assert_allclose(packs.data[0], v_t * e_tt, atol=1e-12)

    def test_neighbor_rows_use_connecting_edge_type(self, graph):
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        wide = sample_wide(graph, target, 4, rng=1)
        packs = model.pack_wide(target, wide, graph)
        for n in range(len(wide)):
            v_n = graph.features[wide.nodes[n]] @ model.project.weight.data
            e_nt = model.edge_embedding.weight.data[wide.etypes[n]]
            np.testing.assert_allclose(packs.data[n + 1], v_n * e_nt, atol=1e-12)

    def test_empty_wide_set_gives_target_only(self, graph):
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        wide = sample_wide(graph, target, 3, rng=0).drop(0).drop(0).drop(0)
        packs = model.pack_wide(target, wide, graph)
        assert packs.shape == (1, 16)

    def test_gradients_flow_to_projection_and_edges(self, graph):
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        wide = sample_wide(graph, target, 4, rng=0)
        packs = model.pack_wide(target, wide, graph)
        packs.sum().backward()
        assert model.project.weight.grad is not None
        assert model.edge_embedding.weight.grad is not None
        # Only the used edge-type rows receive gradient.
        used = set(wide.etypes.tolist()) | {graph.self_loop_type(target)}
        grad_rows = np.flatnonzero(np.abs(model.edge_embedding.weight.grad).sum(axis=1))
        assert set(grad_rows.tolist()) <= used


class TestPackDeep:
    def test_shape(self, graph):
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        deep = sample_deep(graph, target, 4, rng=0)
        packs = model.pack_deep(target, deep, graph)
        assert packs.shape == (len(deep) + 1, 16)

    def test_first_step_edge_links_to_target(self, graph):
        """e_{1,0} = e_{1,t}: the first pack uses the edge from the walk's
        first node back to the target."""
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        deep = sample_deep(graph, target, 4, rng=0)
        packs = model.pack_deep(target, deep, graph)
        v_1 = graph.features[deep.nodes[0]] @ model.project.weight.data
        e_1t = model.edge_embedding.weight.data[deep.etypes[0]]
        np.testing.assert_allclose(packs.data[1], v_1 * e_1t, atol=1e-12)

    def test_relay_recipe_evaluates_eq8(self, graph):
        """A relay edge must equal maxpool(e_outer, v_deleted ⊙ e_deleted)."""
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        deep = sample_deep(graph, target, 4, rng=0)
        deleted_node = int(deep.nodes[1])
        recipe = RelayRecipe(
            outer=int(deep.etypes[2]), deleted_node=deleted_node,
            deleted=int(deep.etypes[1]),
        )
        pruned = DeepNeighborSet(
            target,
            np.delete(deep.nodes, 1),
            np.delete(deep.etypes, 1),
            [deep.relays[0], recipe, deep.relays[3]],
        )
        packs = model.pack_deep(target, pruned, graph)
        e_outer = model.edge_embedding.weight.data[recipe.outer]
        v_del = graph.features[deleted_node] @ model.project.weight.data
        e_del = model.edge_embedding.weight.data[recipe.deleted]
        relay = np.maximum(e_outer, v_del * e_del)
        v_surv = graph.features[pruned.nodes[1]] @ model.project.weight.data
        np.testing.assert_allclose(packs.data[2], v_surv * relay, atol=1e-12)

    def test_nested_relay_depth(self):
        inner = RelayRecipe(outer=1, deleted_node=5, deleted=0)
        outer = RelayRecipe(outer=inner, deleted_node=7, deleted=2)
        assert inner.depth() == 1
        assert outer.depth() == 2

    def test_relay_gradients_flow_to_deleted_node_path(self, graph):
        """The deleted node's features still influence the loss via the relay."""
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        deep = sample_deep(graph, target, 4, rng=0)
        recipe = RelayRecipe(
            outer=int(deep.etypes[2]),
            deleted_node=int(deep.nodes[1]),
            deleted=int(deep.etypes[1]),
        )
        pruned = DeepNeighborSet(
            target,
            np.delete(deep.nodes, 1),
            np.delete(deep.etypes, 1),
            [deep.relays[0], recipe, deep.relays[3]],
        )
        packs = model.pack_deep(target, pruned, graph)
        packs.sum().backward()
        assert model.project.weight.grad is not None
        assert np.abs(model.project.weight.grad).sum() > 0


class TestForward:
    def test_output_is_unit_norm(self, graph):
        model = make_model(graph)
        store = NeighborStateStore(graph, 5, 4, 2, rng=0)
        target = int(graph.labeled_nodes()[0])
        embedding, _, _ = model(target, store.get(target), graph)
        assert embedding.shape == (16,)
        assert np.linalg.norm(embedding.data) == pytest.approx(1.0, abs=1e-6)

    def test_attention_outputs_shapes(self, graph):
        model = make_model(graph)
        store = NeighborStateStore(graph, 5, 4, 2, rng=0)
        target = int(graph.labeled_nodes()[0])
        state = store.get(target)
        _, wide_att, deep_atts = model(target, state, graph)
        assert wide_att.shape == (len(state.wide) + 1,)
        assert wide_att.sum() == pytest.approx(1.0)
        assert len(deep_atts) == 2
        for att, deep in zip(deep_atts, state.deep):
            assert att.shape == (len(deep) + 1,)
            assert att.sum() == pytest.approx(1.0)

    def test_no_wide_variant_returns_none_attention(self, graph):
        model = make_model(graph, use_wide=False)
        store = NeighborStateStore(graph, 5, 4, 2, rng=0)
        target = int(graph.labeled_nodes()[0])
        embedding, wide_att, deep_atts = model(target, store.get(target), graph)
        assert wide_att is None
        assert len(deep_atts) == 2
        assert np.isfinite(embedding.data).all()

    def test_no_deep_variant_returns_empty_deep(self, graph):
        model = make_model(graph, use_deep=False)
        store = NeighborStateStore(graph, 5, 4, 2, rng=0)
        target = int(graph.labeled_nodes()[0])
        embedding, wide_att, deep_atts = model(target, store.get(target), graph)
        assert deep_atts == []
        assert wide_att is not None

    def test_no_successive_variant_changes_output(self, graph):
        target = int(graph.labeled_nodes()[0])
        outputs = {}
        for use_successive in (True, False):
            model = make_model(graph, use_successive=use_successive)
            store = NeighborStateStore(graph, 5, 4, 2, rng=0)
            embedding, _, _ = model(target, store.get(target), graph)
            outputs[use_successive] = embedding.data
        assert not np.allclose(outputs[True], outputs[False])

    def test_deterministic_given_seed_and_state(self, graph):
        target = int(graph.labeled_nodes()[0])
        results = []
        for _ in range(2):
            model = make_model(graph)
            store = NeighborStateStore(graph, 5, 4, 2, rng=7)
            embedding, _, _ = model(target, store.get(target), graph)
            results.append(embedding.data)
        np.testing.assert_allclose(results[0], results[1])

    def test_isolated_node_still_embeds(self, graph):
        """A node with empty wide set and empty walk embeds from itself alone."""
        model = make_model(graph)
        target = int(graph.labeled_nodes()[0])
        state = NeighborState(
            wide=sample_wide(graph, target, 5, rng=0),
            deep=[sample_deep(graph, target, 4, rng=0)],
        )
        # Force-empty both sets.
        while len(state.wide):
            state.wide = state.wide.drop(0)
        state.deep[0] = DeepNeighborSet(
            target, np.empty(0, np.int64), np.empty(0, np.int64)
        )
        embedding, wide_att, deep_atts = model(target, state, graph)
        assert np.isfinite(embedding.data).all()
        assert wide_att.shape == (1,)
        assert deep_atts[0].shape == (1,)

    def test_logits_shape(self, graph):
        from repro.tensor import Tensor

        model = make_model(graph)
        logits = model.logits(Tensor(np.random.default_rng(0).normal(size=(7, 16))))
        assert logits.shape == (7, graph.num_classes)

    def test_classification_gradient_reaches_every_component(self, graph):
        from repro.tensor import functional as F, ops

        model = make_model(graph)
        store = NeighborStateStore(graph, 5, 4, 2, rng=0)
        targets = graph.labeled_nodes()[:4]
        embeddings = [model(int(t), store.get(int(t)), graph)[0] for t in targets]
        loss = F.cross_entropy(model.logits(ops.stack(embeddings)), graph.labels[targets])
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no gradient reached {name}"
